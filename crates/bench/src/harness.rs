//! A minimal Criterion-compatible bench harness.
//!
//! The container this repo builds in has no crate registry, so the
//! Criterion dependency was replaced by this shim exposing the exact API
//! surface the `benches/` targets use: `Criterion::benchmark_group`,
//! chainable `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros. Timing is
//! wall-clock mean over the configured sample count; output is one line
//! per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// A `function_name/parameter` benchmark identifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            function_name: name.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            function_name: name,
            parameter: String::new(),
        }
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `iters` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks with shared sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for Criterion compatibility; the shim's single warm-up
    /// call is not time-bounded.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut BenchmarkGroup {
        self
    }

    /// Accepted for Criterion compatibility; the shim always runs exactly
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut BenchmarkGroup {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
    }

    /// End the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iters.max(1));
        println!(
            "bench {}/{id}: {per_iter} ns/iter ({} iters)",
            self.name, b.iters
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Define a bench group function running each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_displays_name_and_parameter() {
        let id = BenchmarkId::new("fig10/rocket", "tc1");
        assert_eq!(id.to_string(), "fig10/rocket/tc1");
    }

    #[test]
    fn group_runs_the_closure_sample_size_times() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("test");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        // One warm-up call + 5 timed iterations.
        assert_eq!(calls, 6);
        group.finish();
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("test");
        group.sample_size(1);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("inp", 7), &21u64, |b, &x| {
            b.iter(|| seen = x * 2)
        });
        assert_eq!(seen, 42);
    }
}
