//! A minimal Criterion-compatible bench harness.
//!
//! The container this repo builds in has no crate registry, so the
//! Criterion dependency was replaced by this shim exposing the exact API
//! surface the `benches/` targets use: `Criterion::benchmark_group`,
//! chainable `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros. Timing is
//! wall-clock mean over the configured sample count; output is one line
//! per benchmark.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Declared per-iteration work, for throughput reporting (mirrors
/// `criterion::Throughput`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per timed iteration — here, page walks, so a
    /// benchmark that declares it gets a walks-per-second rate.
    Elements(u64),
}

/// One finished benchmark: `group/function/parameter` plus its mean timing
/// and, when the group declared throughput, its per-iteration element
/// (walk) count.
#[derive(Clone, Debug)]
struct BenchResult {
    name: String,
    ns_per_iter: u64,
    iters: u64,
    elements: Option<u64>,
}

/// Results accumulated across every group in the process, so
/// [`criterion_main!`] can emit one machine-readable report at exit.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Honours a `--bench-out <path>` argument by writing every recorded
/// benchmark as an [`hpmp_trace::BenchReport`] (`cycles` carries the mean
/// ns/iter), consumable by `hpmp-analyze gate`/`diff` exactly like the
/// reports the `repro` and `hpmpsim` binaries produce.
///
/// Called by the [`criterion_main!`] expansion after all groups have run;
/// without the flag it does nothing. Invoke as
/// `cargo bench --bench <target> -- --bench-out BENCH_<target>.json`.
pub fn write_bench_report_if_requested() {
    let mut args = std::env::args();
    let binary = args.next().unwrap_or_default();
    let mut out = None;
    while let Some(arg) = args.next() {
        if arg == "--bench-out" {
            out = args.next();
        }
    }
    let Some(path) = out else { return };

    // Bench executables are named `<target>-<16-hex-digit hash>`.
    let stem = std::path::Path::new(&binary)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    let name = match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base
        }
        _ => stem,
    };

    let mut report = hpmp_trace::BenchReport::new(name);
    report.set_config("suite", "criterion-shim");
    let results = RESULTS.lock().expect("bench results poisoned");
    for result in results.iter() {
        let mut reg = hpmp_trace::MetricsRegistry::new();
        reg.set("ns_per_iter", result.ns_per_iter);
        reg.set("iters", result.iters);
        let mut record = hpmp_trace::ExperimentRecord::from_snapshot(
            result.name.clone(),
            result.ns_per_iter,
            reg.snapshot(),
        );
        if let Some(elements) = result.elements {
            // Throughput benches carry their walk count and the measured
            // host-clock rate; both are wall-clock data and only ever
            // appear in bench reports, never in simulated artifacts.
            record.walks = elements;
            record.walks_per_sec = hpmp_trace::walks_per_sec(elements, result.ns_per_iter);
        }
        report.push(record);
    }
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("bench: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "bench: report: {} benchmarks -> {path}",
        report.experiments.len()
    );
}

/// Prints the walks-per-second headline to **stderr** — the aggregate over
/// every throughput-declaring benchmark that ran (total walks retired over
/// total timed host seconds). Silent when no benchmark declared
/// throughput. Called by the [`criterion_main!`] expansion; stderr keeps
/// the rate out of any byte-compared stdout stream.
pub fn print_walks_headline() {
    let results = RESULTS.lock().expect("bench results poisoned");
    let mut walks: u64 = 0;
    let mut wall_ns: u64 = 0;
    for result in results.iter() {
        if let Some(elements) = result.elements {
            walks = walks.saturating_add(elements.saturating_mul(result.iters));
            wall_ns = wall_ns.saturating_add(result.ns_per_iter.saturating_mul(result.iters));
        }
    }
    if walks > 0 {
        eprintln!(
            "bench: {walks} walks in {:.3} s host time -> {} walks/sec",
            wall_ns as f64 / 1e9,
            hpmp_trace::walks_per_sec(walks, wall_ns)
        );
    }
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parameter.is_empty() {
            write!(f, "{}", self.function_name)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            function_name: name.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            function_name: name,
            parameter: String::new(),
        }
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `iters` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks with shared sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declare how much work one timed iteration performs; subsequent
    /// benchmarks in the group report a walks-per-second rate alongside
    /// ns/iter, in console output and the `--bench-out` report.
    pub fn throughput(&mut self, t: Throughput) -> &mut BenchmarkGroup {
        self.throughput = Some(t);
        self
    }

    /// Accepted for Criterion compatibility; the shim's single warm-up
    /// call is not time-bounded.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut BenchmarkGroup {
        self
    }

    /// Accepted for Criterion compatibility; the shim always runs exactly
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut BenchmarkGroup {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
    }

    /// End the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iters.max(1));
        let elements = self.throughput.map(|Throughput::Elements(n)| n);
        match elements {
            Some(n) => println!(
                "bench {}/{id}: {per_iter} ns/iter ({} iters, {} walks/sec)",
                self.name,
                b.iters,
                hpmp_trace::walks_per_sec(n, per_iter as u64),
            ),
            None => println!(
                "bench {}/{id}: {per_iter} ns/iter ({} iters)",
                self.name, b.iters
            ),
        }
        if let Ok(mut results) = RESULTS.lock() {
            results.push(BenchResult {
                name: format!("{}/{id}", self.name),
                ns_per_iter: per_iter as u64,
                iters: b.iters,
                elements,
            });
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Define a bench group function running each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running each listed group, then honouring `--bench-out`
/// (pass it after `--`: `cargo bench --bench <t> -- --bench-out <path>`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_bench_report_if_requested();
            $crate::print_walks_headline();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_displays_name_and_parameter() {
        let id = BenchmarkId::new("fig10/rocket", "tc1");
        assert_eq!(id.to_string(), "fig10/rocket/tc1");
    }

    #[test]
    fn group_runs_the_closure_sample_size_times() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("test");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        // One warm-up call + 5 timed iterations.
        assert_eq!(calls, 6);
        group.finish();
    }

    #[test]
    fn results_are_recorded_for_the_report() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("recorded");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
        let results = RESULTS.lock().expect("bench results poisoned");
        // RESULTS is process-global and other tests may also record, so
        // check containment rather than the full contents.
        assert!(results
            .iter()
            .any(|r| r.name == "recorded/noop" && r.iters == 2));
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("test");
        group.sample_size(1);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("inp", 7), &21u64, |b, &x| {
            b.iter(|| seen = x * 2)
        });
        assert_eq!(seen, 42);
    }
}
