//! # hpmp-bench
//!
//! The reproduction harness: text-table formatting shared by the `repro`
//! binary (which regenerates every table and figure of the paper) and the
//! Criterion benches.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod harness;

pub use harness::{Bencher, BenchmarkGroup, BenchmarkId, Criterion};

use std::fmt::Write as _;

/// A simple left-aligned text table with a title, printed in the style of
/// the paper's tables.
#[derive(Clone, Debug)]
pub struct Report {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Starts a report with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Report {
        Report {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extras are kept.
    pub fn row(&mut self, cells: &[String]) -> &mut Report {
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a free-form note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Report {
        self.notes.push(note.into());
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<w$}  ");
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(100)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats `value` as a percentage of `baseline` (`"110.0%"`).
pub fn pct(value: u64, baseline: u64) -> String {
    format!("{:.1}%", value as f64 * 100.0 / baseline as f64)
}

/// Formats a ratio as a percentage string.
pub fn pct_f(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("T", &["a", "long-header", "c"]);
        r.row(&["x".into(), "y".into(), "zzz".into()]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("long-header"));
        assert!(s.contains("note: hello"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("a "));
        assert!(lines[3].starts_with("x "));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(110, 100), "110.0%");
        assert_eq!(pct_f(0.155), "15.5%");
    }
}
