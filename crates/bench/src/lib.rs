//! # hpmp-bench
//!
//! The reproduction harness: text-table formatting shared by the `repro`
//! binary (which regenerates every table and figure of the paper) and the
//! Criterion benches.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod harness;

pub use harness::{
    print_walks_headline, write_bench_report_if_requested, Bencher, BenchmarkGroup, BenchmarkId,
    Criterion, Throughput,
};

use std::cell::RefCell;
use std::fmt::Write as _;

thread_local! {
    /// Per-thread redirect target for [`Report::print`]. When set, rendered
    /// reports append here instead of going to stdout, so the multi-threaded
    /// experiment runner can emit them later in a deterministic order.
    static CAPTURE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Runs `f` with every [`Report::print`] on this thread redirected into a
/// buffer, returning `f`'s result together with the captured text.
///
/// Capture is per-thread, so worker threads running independent experiments
/// each collect their own output. Nesting is not supported: the inner call
/// would steal the outer buffer.
pub fn capture_reports<R>(f: impl FnOnce() -> R) -> (R, String) {
    CAPTURE.with(|slot| *slot.borrow_mut() = Some(String::new()));
    let result = f();
    let text = CAPTURE
        .with(|slot| slot.borrow_mut().take())
        .unwrap_or_default();
    (result, text)
}

/// Runs `count` independent jobs on up to `jobs` worker threads and returns
/// their outputs **in job-index order**, regardless of completion order.
///
/// Workers claim indices from a shared counter, so long jobs never leave a
/// thread idle while work remains. As soon as every job before index `i` has
/// finished, `emit` is called with job `i`'s output — callers use this to
/// stream per-job stdout buffers progressively while preserving a
/// deterministic order. With `jobs == 1` the single worker claims indices
/// sequentially, so the run *is* the serial run; with more workers only
/// wall-clock changes, never output.
pub fn run_ordered<T: Send>(
    count: usize,
    jobs: usize,
    run: impl Fn(usize) -> T + Sync,
    mut emit: impl FnMut(&T),
) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let jobs = jobs.max(1).min(count.max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(count, || None);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        let run = &run;
        let next = &next;
        for _ in 0..jobs {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                if tx.send((i, run(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut emitted = 0;
        for (i, out) in rx {
            results[i] = Some(out);
            while let Some(Some(out)) = results.get(emitted) {
                emit(out);
                emitted += 1;
            }
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every claimed job sends exactly one result"))
        .collect()
}

/// A simple left-aligned text table with a title, printed in the style of
/// the paper's tables.
#[derive(Clone, Debug)]
pub struct Report {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Starts a report with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Report {
        Report {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extras are kept.
    pub fn row(&mut self, cells: &[String]) -> &mut Report {
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a free-form note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Report {
        self.notes.push(note.into());
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<w$}  ");
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(100)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Prints the rendered table to stdout, or into the thread's capture
    /// buffer inside [`capture_reports`].
    pub fn print(&self) {
        let rendered = self.render();
        let captured = CAPTURE.with(|slot| {
            if let Some(buf) = slot.borrow_mut().as_mut() {
                buf.push_str(&rendered);
                buf.push('\n');
                true
            } else {
                false
            }
        });
        if !captured {
            println!("{rendered}");
        }
    }
}

/// Formats `value` as a percentage of `baseline` (`"110.0%"`).
pub fn pct(value: u64, baseline: u64) -> String {
    format!("{:.1}%", value as f64 * 100.0 / baseline as f64)
}

/// Formats a ratio as a percentage string.
pub fn pct_f(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("T", &["a", "long-header", "c"]);
        r.row(&["x".into(), "y".into(), "zzz".into()]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("long-header"));
        assert!(s.contains("note: hello"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("a "));
        assert!(lines[3].starts_with("x "));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(110, 100), "110.0%");
        assert_eq!(pct_f(0.155), "15.5%");
    }

    #[test]
    fn run_ordered_preserves_order_and_emits_in_order() {
        for jobs in [1, 3, 16] {
            let mut emitted = Vec::new();
            let results = run_ordered(8, jobs, |i| i * 10, |&v| emitted.push(v));
            assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
            assert_eq!(emitted, results, "jobs={jobs}");
        }
    }

    #[test]
    fn run_ordered_with_zero_jobs_or_count() {
        let results = run_ordered(0, 4, |i| i, |_| panic!("nothing to emit"));
        assert!(results.is_empty());
        let results = run_ordered(3, 0, |i| i, |_| {});
        assert_eq!(results, vec![0, 1, 2], "zero jobs clamps to one worker");
    }

    #[test]
    fn capture_redirects_print() {
        let ((), text) = capture_reports(|| {
            let mut r = Report::new("captured", &["col"]);
            r.row(&["v".into()]);
            r.print();
        });
        assert!(text.contains("== captured =="));
        // `print` appends the same trailing newline `println!` would add.
        assert!(text.ends_with("\n\n") || text.ends_with('\n'));
        // Capture ends with the closure: a later print goes to stdout,
        // which we can at least assert leaves the buffer untouched.
        let ((), empty) = capture_reports(|| {});
        assert!(empty.is_empty());
    }
}
