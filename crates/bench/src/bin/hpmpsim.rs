//! `hpmpsim` — run one workload under a chosen configuration and print the
//! machine-level statistics.
//!
//! ```text
//! hpmpsim [--flavor pmp|pmpt|hpmp] [--core rocket|boom]
//!         [--workload redis|serverless|gap|rv8|lmbench|tenancy|virtapp]
//!         [--pwc N] [--pmptw-cache N] [--no-tlb-inlining]
//!         [--encryption CYCLES] [--epmp]
//!         [--trace-out walks.jsonl] [--metrics-out metrics.json]
//!         [--bench-out BENCH_name.json]
//! ```
//!
//! `--trace-out` streams one JSON object per page walk (see
//! `hpmp_trace::WalkEvent::to_json`); `--metrics-out` writes the unified
//! metrics snapshot as versioned JSON after the run; `--bench-out` writes a
//! perf-trajectory [`hpmp_trace::BenchReport`] (one record for the workload:
//! cycles, counters, latency percentiles) consumable by `hpmp-analyze gate`.
//!
//! Unlike `repro` (which regenerates the paper's tables), this is the
//! kick-the-tires tool: pick a stack, run a workload, read the counters.

use hpmp_core::PmptwCacheConfig;
use hpmp_machine::MachineConfig;
use hpmp_memsim::CoreKind;
use hpmp_penglai::TeeFlavor;
use hpmp_trace::{BenchReport, ExperimentRecord, JsonlSink, NullSink, Snapshot, TraceSink};
use hpmp_workloads::TeeBench;

#[derive(Debug)]
struct Options {
    flavor: TeeFlavor,
    core: CoreKind,
    workload: String,
    pwc: Option<usize>,
    pmptw_cache: Option<usize>,
    tlb_inlining: bool,
    encryption: u64,
    epmp: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    bench_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: hpmpsim [--flavor pmp|pmpt|hpmp] [--core rocket|boom]\n\
         \x20              [--workload redis|serverless|gap|rv8|lmbench|tenancy|virtapp]\n\
         \x20              [--pwc N] [--pmptw-cache N] [--no-tlb-inlining]\n\
         \x20              [--encryption CYCLES] [--epmp]\n\
         \x20              [--trace-out walks.jsonl] [--metrics-out metrics.json]\n\
         \x20              [--bench-out BENCH_name.json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut options = Options {
        flavor: TeeFlavor::PenglaiHpmp,
        core: CoreKind::Rocket,
        workload: "serverless".to_string(),
        pwc: None,
        pmptw_cache: None,
        tlb_inlining: true,
        encryption: 0,
        epmp: false,
        trace_out: None,
        metrics_out: None,
        bench_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--flavor" => {
                options.flavor = match value("--flavor").as_str() {
                    "pmp" => TeeFlavor::PenglaiPmp,
                    "pmpt" => TeeFlavor::PenglaiPmpt,
                    "hpmp" => TeeFlavor::PenglaiHpmp,
                    other => {
                        eprintln!("unknown flavor {other}");
                        usage()
                    }
                }
            }
            "--core" => {
                options.core = match value("--core").as_str() {
                    "rocket" => CoreKind::Rocket,
                    "boom" => CoreKind::Boom,
                    other => {
                        eprintln!("unknown core {other}");
                        usage()
                    }
                }
            }
            "--workload" => options.workload = value("--workload"),
            "--pwc" => options.pwc = value("--pwc").parse().ok(),
            "--pmptw-cache" => options.pmptw_cache = value("--pmptw-cache").parse().ok(),
            "--no-tlb-inlining" => options.tlb_inlining = false,
            "--encryption" => options.encryption = value("--encryption").parse().unwrap_or(0),
            "--epmp" => options.epmp = true,
            "--trace-out" => options.trace_out = Some(value("--trace-out")),
            "--metrics-out" => options.metrics_out = Some(value("--metrics-out")),
            "--bench-out" => options.bench_out = Some(value("--bench-out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
    }
    options
}

fn machine_config(options: &Options) -> MachineConfig {
    let mut config = match options.core {
        CoreKind::Rocket => MachineConfig::rocket(),
        CoreKind::Boom => MachineConfig::boom(),
    };
    if let Some(entries) = options.pwc {
        config.pwc.entries = entries;
    }
    if let Some(entries) = options.pmptw_cache {
        config.pmptw_cache = PmptwCacheConfig { entries };
    }
    config.tlb_inlining = options.tlb_inlining;
    config.mem = config.mem.with_encryption(options.encryption);
    if options.epmp {
        config.hpmp_entries = hpmp_core::EPMP_ENTRIES;
    }
    config
}

fn main() {
    let options = parse_args();
    println!(
        "hpmpsim: {} on {} running '{}' (pwc={:?}, pmptw-cache={:?}, inlining={}, \
         encryption={}c, entries={})",
        options.flavor,
        options.core,
        options.workload,
        options.pwc,
        options.pmptw_cache,
        options.tlb_inlining,
        options.encryption,
        if options.epmp { 64 } else { 16 },
    );

    let config = machine_config(&options);
    let (cycles, snapshot) = match &options.trace_out {
        Some(path) => {
            let mut sink = JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(1);
            });
            let result = run_workload(&options, config, &mut sink);
            sink.flush();
            println!("  trace        : {} events -> {}", sink.written(), path);
            if sink.io_errors() > 0 {
                eprintln!("  warning: {} events lost to I/O errors", sink.io_errors());
            }
            result
        }
        None => run_workload(&options, config, NullSink),
    };
    if let Some(path) = &options.metrics_out {
        if let Err(e) = std::fs::write(path, snapshot.to_json_versioned()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("  metrics      : {} counters -> {}", snapshot.len(), path);
    }
    if let Some(path) = &options.bench_out {
        let mut report = BenchReport::new("hpmpsim");
        report.set_config("flavor", options.flavor.to_string());
        report.set_config("core", options.core.to_string());
        report.set_config("workload", options.workload.clone());
        report.push(ExperimentRecord::from_snapshot(
            options.workload.clone(),
            cycles,
            snapshot.clone(),
        ));
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("  bench report : 1 experiment -> {path}");
    }

    let core = hpmp_memsim::CoreModel::for_kind(options.core);
    println!("  total cycles : {cycles}");
    println!(
        "  wall time    : {:.3} ms (at {} MHz)",
        core.cycles_to_ns(cycles) / 1e6,
        core.clock_mhz
    );
}

/// Runs the selected workload with `sink` attached, returning total cycles
/// and the unified metrics snapshot of the machine that ran it (merged
/// across machines for workloads that boot one per kernel).
fn run_workload<S: TraceSink>(
    options: &Options,
    config: MachineConfig,
    mut sink: S,
) -> (u64, Snapshot) {
    match options.workload.as_str() {
        "serverless" => {
            let mut tee = TeeBench::boot_with_sink(options.flavor, config, sink);
            let mut total = 0;
            for (i, function) in hpmp_workloads::serverless::FUNCTIONS.iter().enumerate() {
                total += hpmp_workloads::serverless::invoke(&mut tee, *function, i as u64)
                    .expect("invocation");
            }
            report_machine(&tee);
            tee.machine.flush_sink();
            (total, tee.machine.metrics_snapshot())
        }
        "redis" => {
            let mut server = hpmp_workloads::redis::RedisServer::start_with_sink(
                options.flavor,
                options.core,
                hpmp_workloads::redis::DEFAULT_DATASET_PAGES,
                sink,
            )
            .expect("server");
            let mut total = 0;
            for cmd in hpmp_workloads::redis::REDIS_COMMANDS {
                for _ in 0..50 {
                    total += server.serve(cmd).expect("request");
                }
            }
            server.tee_mut().machine.flush_sink();
            (total, server.tee().machine.metrics_snapshot())
        }
        "gap" => {
            let graph = hpmp_workloads::gap::default_graph();
            let mut total = 0;
            let mut merged = Snapshot::new();
            for kernel in hpmp_workloads::gap::GAP_KERNELS {
                let (cycles, snap) = hpmp_workloads::gap::run_gap_with_sink(
                    options.flavor,
                    options.core,
                    kernel,
                    &graph,
                    5_000,
                    &mut sink,
                )
                .expect("kernel");
                total += cycles;
                merged = merged.merge(&snap);
            }
            (total, merged)
        }
        "rv8" => {
            let mut total = 0;
            let mut merged = Snapshot::new();
            for kernel in hpmp_workloads::rv8::RV8_KERNELS {
                let (cycles, snap) = hpmp_workloads::rv8::run_rv8_with_sink(
                    options.flavor,
                    options.core,
                    kernel,
                    &mut sink,
                )
                .expect("kernel");
                total += cycles;
                merged = merged.merge(&snap);
            }
            (total, merged)
        }
        "lmbench" => {
            let mut ctx = hpmp_workloads::lmbench::LmbenchContext::new_with_sink(
                options.flavor,
                options.core,
                sink,
            )
            .expect("boot");
            let mut total = 0;
            for syscall in hpmp_workloads::lmbench::SYSCALLS {
                for _ in 0..10 {
                    total += ctx.run(syscall).expect("syscall");
                }
            }
            ctx.tee_mut().machine.flush_sink();
            (total, ctx.tee().machine.metrics_snapshot())
        }
        "virtapp" => {
            let scheme = match options.flavor {
                TeeFlavor::PenglaiPmp => hpmp_machine::VirtScheme::Pmp,
                TeeFlavor::PenglaiPmpt => hpmp_machine::VirtScheme::PmpTable,
                TeeFlavor::PenglaiHpmp => hpmp_machine::VirtScheme::Hpmp,
            };
            let (out, snap) = hpmp_workloads::virt_app::run_guest_kv_with_sink(
                options.core,
                scheme,
                hpmp_workloads::virt_app::GUEST_DATASET_PAGES,
                500,
                sink,
            );
            println!("  cycles/request: {:.0}", out.cycles_per_request());
            (out.cycles, snap)
        }
        "tenancy" => {
            let (out, snap) = hpmp_workloads::multi_tenant::run_tenancy_with_sink(
                options.flavor,
                options.core,
                100,
                2,
                sink,
            )
            .expect("tenancy");
            println!(
                "  tenants: {} (entry wall: {})",
                out.tenants, out.hit_entry_wall
            );
            (out.total_cycles, snap)
        }
        other => {
            eprintln!("unknown workload {other}");
            usage()
        }
    }
}

fn report_machine<S: TraceSink>(tee: &TeeBench<S>) {
    let stats = tee.machine.stats();
    let tlb = tee.machine.tlb_stats();
    let mem = tee.machine.mem_stats();
    println!(
        "  accesses     : {} ({} walks, {:.1}% TLB hit)",
        stats.accesses,
        stats.walks,
        tlb.hit_rate() * 100.0
    );
    println!(
        "  references   : {} PT, {} data, {} pmpte(PT), {} pmpte(data)",
        stats.refs.pt_reads,
        stats.refs.data_reads,
        stats.refs.pmpte_for_pt,
        stats.refs.pmpte_for_data,
    );
    println!(
        "  hierarchy    : L1 {:.1}% | L2 {:.1}% | LLC {:.1}% hit; {} DRAM row hits / {} misses",
        mem.l1.hit_rate() * 100.0,
        mem.l2.hit_rate() * 100.0,
        mem.llc.hit_rate() * 100.0,
        mem.dram.row_hits,
        mem.dram.row_misses,
    );
}
