//! `hpmpsim` — run one workload under a chosen configuration and print the
//! machine-level statistics.
//!
//! ```text
//! hpmpsim [--flavor pmp|pmpt|hpmp] [--core rocket|boom]
//!         [--workload redis|serverless|gap|rv8|lmbench|tenancy|virtapp]
//!         [--scenario aging] [--churn-ops N]
//!         [--harts N] [--backend deterministic|threaded]
//!         [--jobs N] [--pwc N] [--pmptw-cache N]
//!         [--no-tlb-inlining] [--encryption CYCLES] [--epmp]
//!         [--trace-out walks.jsonl] [--metrics-out metrics.json]
//!         [--bench-out BENCH_name.json]
//!         [--snapshot-interval CYCLES] [--timeline-out timeline.jsonl]
//!         [--spans-out spans.jsonl]
//!         [--fault-campaign SPEC] [--fault-seed N] [--campaign-out FILE]
//!         [--host-profile-out FILE]
//! ```
//!
//! `--workload` accepts a comma-separated list; the workloads run on an
//! in-process pool of `--jobs N` worker threads (default: available
//! parallelism), each with its own trace sink and metrics registry.
//! Outputs are merged in the listed workload order, so they are
//! byte-identical whatever the thread count.
//!
//! `--harts N` (N > 1) runs each workload's SMP shape instead: one tenant
//! enclave per hart over a shared [`hpmp_penglai::SmpSystem`], with
//! cross-hart TLB/PMP shootdowns on every GMS change and domain switch.
//! The hart interleaving is seeded and the run is single-threaded
//! internally, so artifacts stay byte-identical at any `--jobs`; trace
//! events carry a `hart` field and the metrics snapshot gains per-hart
//! `hart.<i>.*` shootdown/fence counters plus `smp.*` totals.
//!
//! `--backend threaded` (with `--harts` >= 2) runs the same SMP shape on
//! the threaded execution backend: one OS thread per hart between monitor
//! operations, sharded physical memory, per-hart metric arenas, and
//! mailbox shootdown delivery. Outcomes and metric snapshots are
//! byte-identical to the default `deterministic` backend (the conformance
//! battery enforces this) — only wall-clock changes. Time-resolved
//! telemetry (`--snapshot-interval`/`--timeline-out`/`--spans-out`)
//! requires the deterministic backend.
//!
//! SMP runs can also record *time-resolved* telemetry (both require
//! `--harts` ≥ 2 and a single workload): `--snapshot-interval N` cuts a
//! timeline slice — a delta of the unified metrics snapshot — every N
//! global simulated cycles and streams them to `--timeline-out` (default
//! `timeline.jsonl`); re-summing the slices reproduces `--metrics-out`
//! byte-for-byte. `--spans-out` records monitor-operation spans: every
//! `*_on` op opens a span, and every shootdown it triggers emits per-
//! receiver IPI-send/trap/reprogram/fence child spans causally linked to
//! the op. Both artifacts live on the simulated clock, so they are
//! byte-identical at any `--jobs`. Feed them to `hpmp-analyze timeline`.
//!
//! `--scenario aging` switches to the fleet-churn aging campaign instead of
//! a workload run: `--churn-ops N` enclave lifecycles (default 1200) over a
//! deliberately small 128 MiB arena, pushing the monitor down its staged
//! degradation ladder (normal → compacting → table-only → admission
//! control). The run honours `--flavor`, `--core`, `--harts` and
//! `--backend`, uses the fixed SMP seed, and is byte-identical at any
//! `--jobs` and on either backend. `--metrics-out`/`--bench-out` work as
//! usual. Exit status: 0 normally, 1 if a robustness invariant broke
//! (canary loss or a fast-path/oracle disagreement), and **3** if the run
//! *ended* inside stage-3 admission control — a distinct, non-panicking
//! signal that the modelled fleet saturated its arena.
//!
//! `--fault-campaign` switches to fault-injection mode instead of running a
//! workload: the campaign's shards (part of the spec, not derived from
//! `--jobs`) fan out over the same worker pool, each injecting seeded
//! faults and checking every probed access against the monitor's lockstep
//! permission oracle. The exit status is non-zero if any fast-path grant
//! contradicted the oracle (`silent > 0`) or a recovery path failed.
//! `--campaign-out` writes one JSON record per trial plus a final summary
//! object; for a fixed `--fault-seed` the file and stdout are
//! byte-identical at any `--jobs` level.
//!
//! `--trace-out` streams one JSON object per page walk (see
//! `hpmp_trace::WalkEvent::to_json`); `--metrics-out` writes the unified
//! metrics snapshot as versioned JSON after the run; `--bench-out` writes a
//! perf-trajectory [`hpmp_trace::BenchReport`] (one record for the workload:
//! cycles, walks, counters, latency percentiles) consumable by
//! `hpmp-analyze gate`.
//!
//! `--host-profile-out` writes a [`hpmp_trace::HostProfile`]: *wall-clock*
//! phase timers, per-workload host time, and the walks-per-second
//! headline (also printed to stderr). Host-clock data is nondeterministic,
//! so it lives in its own artifact and never touches stdout or the
//! simulated artifacts above — those stay byte-identical whether or not
//! profiling is on (see DESIGN.md §10, the dual-clock quarantine).
//!
//! Unlike `repro` (which regenerates the paper's tables), this is the
//! kick-the-tires tool: pick a stack, run a workload, read the counters.

use std::fmt::Write as _;
use std::io::Write as _;

use hpmp_bench::run_ordered;
use hpmp_core::PmptwCacheConfig;
use hpmp_faults::{run_shard, CampaignReport, CampaignSpec};
use hpmp_machine::{ExecBackend, MachineConfig};
use hpmp_memsim::CoreKind;
use hpmp_penglai::TeeFlavor;
use hpmp_trace::{
    walks_in_snapshot, BenchReport, ExperimentRecord, HostProfiler, JsonlSink, NullSink, Snapshot,
    TraceSink,
};
use hpmp_workloads::TeeBench;

#[derive(Debug)]
struct Options {
    flavor: TeeFlavor,
    core: CoreKind,
    workload: String,
    scenario: Option<String>,
    churn_ops: Option<u32>,
    harts: usize,
    backend: ExecBackend,
    jobs: Option<usize>,
    pwc: Option<usize>,
    pmptw_cache: Option<usize>,
    tlb_inlining: bool,
    encryption: u64,
    epmp: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    bench_out: Option<String>,
    snapshot_interval: Option<u64>,
    timeline_out: Option<String>,
    spans_out: Option<String>,
    fault_campaign: Option<String>,
    fault_seed: u64,
    campaign_out: Option<String>,
    host_profile_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: hpmpsim [--flavor pmp|pmpt|hpmp] [--core rocket|boom]\n\
         \x20              [--workload redis|serverless|gap|rv8|lmbench|tenancy|virtapp]\n\
         \x20              [--scenario aging] [--churn-ops N]\n\
         \x20              [--harts N] [--backend deterministic|threaded]\n\
         \x20              [--jobs N] [--pwc N] [--pmptw-cache N]\n\
         \x20              [--no-tlb-inlining] [--encryption CYCLES] [--epmp]\n\
         \x20              [--trace-out walks.jsonl] [--metrics-out metrics.json]\n\
         \x20              [--bench-out BENCH_name.json]\n\
         \x20              [--snapshot-interval CYCLES] [--timeline-out timeline.jsonl]\n\
         \x20              [--spans-out spans.jsonl]\n\
         \x20              [--fault-campaign SPEC] [--fault-seed N] [--campaign-out FILE]\n\
         \x20              [--host-profile-out FILE]\n\
         SPEC: comma-separated key=value pairs, e.g.\n\
         \x20    faults=1000,classes=pmpte+regs+stale+interpose,flavor=hpmp,domains=2,shards=8\n\
         exit codes: 0 ok, 1 failed invariant, 2 usage,\n\
         \x20           3 aging scenario ended in stage-3 admission control"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut options = Options {
        flavor: TeeFlavor::PenglaiHpmp,
        core: CoreKind::Rocket,
        workload: "serverless".to_string(),
        scenario: None,
        churn_ops: None,
        harts: 1,
        backend: ExecBackend::Deterministic,
        jobs: None,
        pwc: None,
        pmptw_cache: None,
        tlb_inlining: true,
        encryption: 0,
        epmp: false,
        trace_out: None,
        metrics_out: None,
        bench_out: None,
        snapshot_interval: None,
        timeline_out: None,
        spans_out: None,
        fault_campaign: None,
        fault_seed: 0,
        campaign_out: None,
        host_profile_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--flavor" => {
                options.flavor = match value("--flavor").as_str() {
                    "pmp" => TeeFlavor::PenglaiPmp,
                    "pmpt" => TeeFlavor::PenglaiPmpt,
                    "hpmp" => TeeFlavor::PenglaiHpmp,
                    other => {
                        eprintln!("unknown flavor {other}");
                        usage()
                    }
                }
            }
            "--core" => {
                options.core = match value("--core").as_str() {
                    "rocket" => CoreKind::Rocket,
                    "boom" => CoreKind::Boom,
                    other => {
                        eprintln!("unknown core {other}");
                        usage()
                    }
                }
            }
            "--workload" => options.workload = value("--workload"),
            "--scenario" => match value("--scenario").as_str() {
                "aging" => options.scenario = Some("aging".to_string()),
                other => {
                    eprintln!("unknown scenario {other}");
                    usage()
                }
            },
            "--churn-ops" => match value("--churn-ops").parse() {
                Ok(n) if n >= 1 => options.churn_ops = Some(n),
                _ => {
                    eprintln!("--churn-ops needs a positive integer");
                    usage()
                }
            },
            "--harts" => match value("--harts").parse() {
                Ok(n) if n >= 1 => options.harts = n,
                _ => {
                    eprintln!("--harts needs a positive integer");
                    usage()
                }
            },
            "--backend" => match value("--backend").parse() {
                Ok(backend) => options.backend = backend,
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            },
            "--jobs" => match value("--jobs").parse() {
                Ok(n) => options.jobs = Some(n),
                Err(_) => {
                    eprintln!("--jobs needs a positive integer");
                    usage()
                }
            },
            "--pwc" => options.pwc = value("--pwc").parse().ok(),
            "--pmptw-cache" => options.pmptw_cache = value("--pmptw-cache").parse().ok(),
            "--no-tlb-inlining" => options.tlb_inlining = false,
            "--encryption" => options.encryption = value("--encryption").parse().unwrap_or(0),
            "--epmp" => options.epmp = true,
            "--trace-out" => options.trace_out = Some(value("--trace-out")),
            "--metrics-out" => options.metrics_out = Some(value("--metrics-out")),
            "--bench-out" => options.bench_out = Some(value("--bench-out")),
            "--snapshot-interval" => match value("--snapshot-interval").parse() {
                Ok(n) if n >= 1 => options.snapshot_interval = Some(n),
                _ => {
                    eprintln!("--snapshot-interval needs a positive cycle count");
                    usage()
                }
            },
            "--timeline-out" => options.timeline_out = Some(value("--timeline-out")),
            "--spans-out" => options.spans_out = Some(value("--spans-out")),
            "--fault-campaign" => options.fault_campaign = Some(value("--fault-campaign")),
            "--fault-seed" => match value("--fault-seed").parse() {
                Ok(n) => options.fault_seed = n,
                Err(_) => {
                    eprintln!("--fault-seed needs an unsigned integer");
                    usage()
                }
            },
            "--campaign-out" => options.campaign_out = Some(value("--campaign-out")),
            "--host-profile-out" => options.host_profile_out = Some(value("--host-profile-out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
    }
    if options.churn_ops.is_some() && options.scenario.is_none() {
        eprintln!("--churn-ops needs --scenario aging");
        usage()
    }
    options
}

fn machine_config(options: &Options) -> MachineConfig {
    let mut config = match options.core {
        CoreKind::Rocket => MachineConfig::rocket(),
        CoreKind::Boom => MachineConfig::boom(),
    };
    if let Some(entries) = options.pwc {
        config.pwc.entries = entries;
    }
    if let Some(entries) = options.pmptw_cache {
        config.pmptw_cache = PmptwCacheConfig { entries };
    }
    config.tlb_inlining = options.tlb_inlining;
    config.mem = config.mem.with_encryption(options.encryption);
    if options.epmp {
        config.hpmp_entries = hpmp_core::EPMP_ENTRIES;
    }
    config
}

/// Workloads `--workload` understands, validated before the pool starts.
const WORKLOADS: [&str; 7] = [
    "serverless",
    "redis",
    "gap",
    "rv8",
    "lmbench",
    "virtapp",
    "tenancy",
];

fn main() {
    let options = parse_args();
    if options.fault_campaign.is_some() {
        run_fault_campaign(&options);
    }
    if options.scenario.is_some() {
        run_aging_scenario(&options);
    }
    println!(
        "hpmpsim: {} on {} running '{}' (pwc={:?}, pmptw-cache={:?}, inlining={}, \
         encryption={}c, entries={})",
        options.flavor,
        options.core,
        options.workload,
        options.pwc,
        options.pmptw_cache,
        options.tlb_inlining,
        options.encryption,
        if options.epmp { 64 } else { 16 },
    );
    // Only printed for SMP runs so single-hart output stays byte-identical
    // with pre-SMP builds.
    if options.harts > 1 {
        println!(
            "  harts        : {} (seed {SMP_SEED}, cross-hart shootdowns on)",
            options.harts
        );
        if options.backend == ExecBackend::Threaded {
            println!("  backend      : threaded (per-hart OS threads between monitor ops)");
        }
    }

    let workloads: Vec<&str> = options
        .workload
        .split(',')
        .filter(|w| !w.is_empty())
        .collect();
    for workload in &workloads {
        if !WORKLOADS.contains(workload) {
            eprintln!("unknown workload {workload}");
            usage()
        }
    }
    if workloads.is_empty() {
        eprintln!("no workload given");
        usage()
    }
    if options.backend == ExecBackend::Threaded && options.harts < 2 {
        eprintln!("--backend threaded needs --harts >= 2");
        usage()
    }
    let telemetry_requested = options.snapshot_interval.is_some()
        || options.timeline_out.is_some()
        || options.spans_out.is_some();
    if telemetry_requested {
        if options.backend == ExecBackend::Threaded {
            // Timeline slices and spans live on the global simulated
            // clock, which only advances serially.
            eprintln!("time-resolved telemetry requires --backend deterministic");
            usage()
        }
        // The timeline/span clock is the SMP global simulated clock, so
        // time-resolved telemetry only exists for multi-hart runs; one
        // artifact file covers one run, so one workload.
        if options.harts < 2 {
            eprintln!("--snapshot-interval/--timeline-out/--spans-out need --harts >= 2");
            usage()
        }
        if workloads.len() != 1 {
            eprintln!("telemetry outputs cover one run; pass a single --workload");
            usage()
        }
        if options.timeline_out.is_some() && options.snapshot_interval.is_none() {
            eprintln!("--timeline-out needs --snapshot-interval");
            usage()
        }
    }
    let jobs = options
        .jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1);

    // Run the workloads on the worker pool, each with its own sink and
    // registry; buffered outputs stream in the listed order. The profiler
    // is host-clock only: its measurements go to `--host-profile-out` and
    // stderr, never into stdout or the simulated artifacts.
    let mut profiler = HostProfiler::new("hpmpsim");
    let tracing = options.trace_out.is_some();
    profiler.begin_phase("run");
    let outputs = run_ordered(
        workloads.len(),
        jobs,
        |i| {
            let started = std::time::Instant::now();
            let mut out = run_one(&options, workloads[i], tracing);
            out.wall = started.elapsed();
            out
        },
        |out| print!("{}", out.stdout),
    );
    profiler.begin_phase("write");

    let mut cycles = 0;
    let mut snapshot = Snapshot::new();
    for out in &outputs {
        cycles += out.cycles;
        snapshot = snapshot.merge(&out.snap);
    }

    if let Some(path) = &options.trace_out {
        // One schema header, then each workload's trace bytes in listed
        // order — identical to a serial shared-sink stream.
        let sink = JsonlSink::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        let mut file = sink.into_inner();
        let write_err = outputs
            .iter()
            .try_for_each(|out| file.write_all(&out.trace))
            .and_then(|()| file.flush());
        if let Err(e) = write_err {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        let events: u64 = outputs.iter().map(|o| o.trace_events).sum();
        println!("  trace        : {events} events -> {path}");
        let io_errors: u64 = outputs.iter().map(|o| o.trace_io_errors).sum();
        if io_errors > 0 {
            eprintln!("  warning: {io_errors} events lost to I/O errors");
        }
    }
    if let Some(path) = &options.metrics_out {
        if let Err(e) = std::fs::write(path, snapshot.to_json_versioned()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("  metrics      : {} counters -> {}", snapshot.len(), path);
    }
    if let Some(interval) = options.snapshot_interval {
        let path = options.timeline_out.as_deref().unwrap_or("timeline.jsonl");
        let telemetry = &outputs[0].telemetry;
        if let Err(e) = std::fs::write(path, &telemetry.timeline) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "  timeline     : {} slice(s) every {interval} cycles -> {path}",
            telemetry.slices
        );
        if telemetry.dropped_boundaries > 0 {
            eprintln!(
                "  warning: {} slice boundaries folded into the tail (max slices reached)",
                telemetry.dropped_boundaries
            );
        }
    }
    if let Some(path) = &options.spans_out {
        let telemetry = &outputs[0].telemetry;
        if let Err(e) = std::fs::write(path, &telemetry.spans) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "  spans        : {} span(s) ({} dropped) -> {path}",
            telemetry.spans_emitted, telemetry.spans_dropped
        );
    }
    if let Some(path) = &options.bench_out {
        let mut report = BenchReport::new("hpmpsim");
        report.set_config("flavor", options.flavor.to_string());
        report.set_config("core", options.core.to_string());
        report.set_config("workload", options.workload.clone());
        if options.harts > 1 {
            report.set_config("harts", options.harts.to_string());
        }
        for (workload, out) in workloads.iter().zip(&outputs) {
            report.push(ExperimentRecord::from_snapshot(
                workload.to_string(),
                out.cycles,
                out.snap.clone(),
            ));
        }
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "  bench report : {} experiment(s) -> {path}",
            report.experiments.len()
        );
    }

    let core = hpmp_memsim::CoreModel::for_kind(options.core);
    println!("  total cycles : {cycles}");
    println!(
        "  wall time    : {:.3} ms (at {} MHz)",
        core.cycles_to_ns(cycles) / 1e6,
        core.clock_mhz
    );

    // Host-clock epilogue: everything below writes to stderr or the
    // dedicated profile artifact, so the simulated outputs above are
    // byte-identical whether or not profiling is on.
    for (workload, out) in workloads.iter().zip(&outputs) {
        profiler.record_experiment(*workload, out.wall, walks_in_snapshot(&out.snap));
    }
    let profile = profiler.finish();
    if let Some(path) = &options.host_profile_out {
        if let Err(e) = std::fs::write(path, profile.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("  host profile : -> {path}");
    }
    eprintln!("{}", profile.headline());
}

/// Drives a fault-injection campaign over the worker pool and exits.
///
/// The shard count comes from the spec, not `--jobs`, and every shard is
/// an independent seeded world, so the merged report (stdout and
/// `--campaign-out` bytes) is identical at any parallelism.
fn run_fault_campaign(options: &Options) -> ! {
    let spec_text = options.fault_campaign.as_deref().unwrap_or_default();
    let mut spec = CampaignSpec::parse(spec_text).unwrap_or_else(|e| {
        eprintln!("bad --fault-campaign: {e}");
        usage()
    });
    // `--flavor` applies unless the spec itself picked one.
    if !spec_text.contains("flavor=") {
        spec.flavor = options.flavor;
    }
    let jobs = options
        .jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1);
    println!(
        "hpmpsim: fault campaign {} seed {} ({} shards over {} jobs)",
        spec.canonical(),
        options.fault_seed,
        spec.shards,
        jobs
    );

    let seed = options.fault_seed;
    let shard_results = run_ordered(
        spec.shards as usize,
        jobs,
        |i| run_shard(&spec, seed, i as u64),
        |_| {},
    );
    let mut shards = Vec::new();
    for result in shard_results {
        match result {
            Ok(report) => shards.push(report),
            Err(e) => {
                eprintln!("shard setup failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let report = CampaignReport::merge(&spec, seed, &shards);

    if let Some(path) = &options.campaign_out {
        let mut bytes = report.records.clone().into_bytes();
        bytes.extend_from_slice(report.summary_json().as_bytes());
        bytes.push(b'\n');
        if let Err(e) = std::fs::write(path, bytes) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("  records      : {} trials -> {path}", report.trials);
    }
    if let Some(path) = &options.metrics_out {
        let mut registry = hpmp_trace::MetricsRegistry::new();
        report.export(&mut registry);
        if let Err(e) = std::fs::write(path, registry.snapshot().to_json_versioned()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("  metrics      : -> {path}");
    }
    println!(
        "  injected     : {} faults over {} trials",
        report.total_injected(),
        report.trials
    );
    println!(
        "  detected     : {} (degraded accesses: {}, stale TLB rejects: {})",
        report.detected.iter().sum::<u64>(),
        report.degraded,
        report.stale_rejects
    );
    println!(
        "  silent       : {} (recovery failures: {})",
        report.silent, report.recovery_failures
    );
    println!("  summary      : {}", report.summary_json());
    println!(
        "  verdict      : {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
    std::process::exit(if report.passed() { 0 } else { 1 });
}

/// Drives the fleet-churn aging scenario and exits.
///
/// The run is single-threaded internally (`--jobs` only sizes the unused
/// worker pool), so stdout and every artifact are byte-identical at any
/// parallelism and on either backend. Exit codes: 0 for a clean run, 1 if
/// a canary or the permission oracle was violated, 3 if the run *ended*
/// inside stage-3 admission control.
fn run_aging_scenario(options: &Options) -> ! {
    if options.backend == ExecBackend::Threaded && options.harts < 2 {
        eprintln!("--backend threaded needs --harts >= 2");
        usage()
    }
    if options.trace_out.is_some()
        || options.snapshot_interval.is_some()
        || options.timeline_out.is_some()
    {
        eprintln!("--scenario aging supports --metrics-out/--bench-out/--spans-out, not trace/timeline flags");
        usage()
    }
    if options.spans_out.is_some() && options.backend == ExecBackend::Threaded {
        // Spans live on the serial simulated clock.
        eprintln!("--spans-out with --scenario aging requires --backend deterministic");
        usage()
    }
    let churn_ops = options
        .churn_ops
        .unwrap_or(hpmp_workloads::aging::DEFAULT_CHURN_OPS);
    let spec = hpmp_workloads::aging::AgingSpec::with_ops(churn_ops);
    println!(
        "hpmpsim: aging scenario on {} / {} ({} hart(s), {} churn ops, seed {SMP_SEED}, \
         backend {})",
        options.flavor,
        options.core,
        options.harts,
        churn_ops,
        options.backend.name(),
    );
    let boot_failed = |e: hpmp_penglai::MonitorError| -> ! {
        eprintln!("aging scenario failed to boot: {e}");
        std::process::exit(1);
    };
    let mut span_artifact: Option<(Vec<u8>, u64, u64)> = None;
    let (outcome, snap) = if options.spans_out.is_some() {
        let machines = (0..options.harts)
            .map(|_| hpmp_machine::Machine::new(machine_config(options)))
            .collect();
        let (outcome, snap, spans, _) = hpmp_workloads::aging::run_aging_spans(
            machines,
            options.flavor,
            SMP_SEED,
            spec,
            hpmp_workloads::smp::SmpTelemetrySpec::DEFAULT_SPAN_CAPACITY,
        )
        .unwrap_or_else(|e| boot_failed(e));
        let mut bytes = Vec::new();
        spans
            .write_jsonl(&mut bytes)
            .expect("Vec writes cannot fail");
        span_artifact = Some((bytes, spans.len() as u64, spans.dropped()));
        (outcome, snap)
    } else {
        hpmp_workloads::aging::run_aging(
            options.flavor,
            options.core,
            options.harts,
            SMP_SEED,
            spec,
            options.backend,
        )
        .unwrap_or_else(|e| boot_failed(e))
    };

    // The path starts with the boot-time (op 0, stage 0) entry.
    let stages = outcome
        .stage_path
        .iter()
        .map(|(op, stage)| format!("{stage}@op{op}"))
        .collect::<Vec<_>>()
        .join(" -> ");
    println!(
        "  stages       : {stages} (max {}, final {})",
        outcome.max_stage, outcome.final_stage
    );
    println!(
        "  churn        : {} creates, {} destroys, {} reliefs, {} live at end",
        outcome.creates, outcome.destroys, outcome.reliefs, outcome.live_at_end
    );
    println!(
        "  backpressure : {} rejected (stage 3), {} entry-wall hits",
        outcome.rejected, outcome.entry_wall_hits
    );
    println!(
        "  compaction   : {} passes, {} regions / {} pages moved, {} slow allocs, \
         {} repromotions",
        snap.value("monitor.compact.passes"),
        snap.value("monitor.compact.moved_regions"),
        snap.value("monitor.compact.moved_pages"),
        snap.value("monitor.degrade.slow_allocs"),
        snap.value("monitor.degrade.repromotions"),
    );
    println!(
        "  integrity    : {} canary failures, {} oracle violations",
        outcome.canary_failures, outcome.oracle_violations
    );
    println!(
        "  smp          : {} accesses on {} harts, {} IPIs delivered",
        outcome.accesses, outcome.harts, outcome.ipis_delivered
    );
    if let Some(path) = &options.metrics_out {
        if let Err(e) = std::fs::write(path, snap.to_json_versioned()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("  metrics      : {} counters -> {}", snap.len(), path);
    }
    if let Some(path) = &options.spans_out {
        let (bytes, retained, dropped) = span_artifact.expect("spans collected when requested");
        if let Err(e) = std::fs::write(path, bytes) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("  spans        : {retained} span(s) ({dropped} dropped) -> {path}");
    }
    if let Some(path) = &options.bench_out {
        let mut report = BenchReport::new("hpmpsim-aging");
        report.set_config("flavor", options.flavor.to_string());
        report.set_config("core", options.core.to_string());
        report.set_config("scenario", "aging".to_string());
        report.set_config("harts", options.harts.to_string());
        report.set_config("churn_ops", churn_ops.to_string());
        report.push(ExperimentRecord::from_snapshot(
            "aging".to_string(),
            outcome.total_cycles,
            snap.clone(),
        ));
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "  bench report : {} experiment(s) -> {path}",
            report.experiments.len()
        );
    }
    println!("  total cycles : {}", outcome.total_cycles);
    if outcome.canary_failures > 0 || outcome.oracle_violations > 0 {
        println!("  verdict      : FAIL (enclave bytes or oracle integrity lost)");
        std::process::exit(1);
    }
    if outcome.final_stage == 3 {
        println!("  verdict      : SATURATED (run ended in stage-3 admission control)");
        std::process::exit(3);
    }
    println!("  verdict      : PASS");
    std::process::exit(0);
}

/// Everything one workload produced, buffered for in-order merging.
struct WorkloadOutput {
    /// Per-workload console lines (counters, rates).
    stdout: String,
    /// Total simulated cycles.
    cycles: u64,
    /// The workload machine's metrics snapshot.
    snap: Snapshot,
    /// Headerless JSONL walk-event bytes (empty unless tracing).
    trace: Vec<u8>,
    /// Number of trace events in `trace`.
    trace_events: u64,
    /// Events lost to I/O errors while tracing.
    trace_io_errors: u64,
    /// Buffered time-resolved artifacts (empty unless requested).
    telemetry: TelemetryOutput,
    /// Host wall-clock time the workload took; feeds only the host
    /// profile, never a simulated artifact.
    wall: std::time::Duration,
}

/// Serialized timeline/span artifacts of one SMP run, buffered so the
/// `--jobs` pool stays byte-deterministic.
#[derive(Default)]
struct TelemetryOutput {
    /// `hpmp-timeline` JSONL bytes (header, slices, footer).
    timeline: Vec<u8>,
    /// Slices cut.
    slices: u64,
    /// Boundaries folded into the tail slice by the retention bound.
    dropped_boundaries: u64,
    /// `hpmp-span-events` JSONL bytes.
    spans: Vec<u8>,
    /// Spans retained.
    spans_emitted: u64,
    /// Spans dropped by the collector's capacity bound.
    spans_dropped: u64,
}

impl TelemetryOutput {
    /// Buffers the artifacts `run_smp_telemetry` produced.
    fn from_run(telemetry: &hpmp_workloads::smp::SmpTelemetry) -> TelemetryOutput {
        let mut out = TelemetryOutput::default();
        if let Some(timeline) = &telemetry.timeline {
            timeline
                .write_jsonl(&mut out.timeline)
                .expect("Vec writes cannot fail");
            out.slices = timeline.slices().len() as u64;
            out.dropped_boundaries = timeline.dropped_boundaries();
        }
        if let Some(spans) = &telemetry.spans {
            spans
                .write_jsonl(&mut out.spans)
                .expect("Vec writes cannot fail");
            out.spans_emitted = spans.len() as u64;
            out.spans_dropped = spans.dropped();
        }
        out
    }
}

/// Seed for the SMP interleaver and per-hart access streams. Fixed so
/// `--harts N` runs are reproducible without another knob; the streams are
/// already decorrelated per hart.
const SMP_SEED: u64 = 0x4850_4d50;

/// Runs one workload with a private sink and registry, buffering its output.
fn run_one(options: &Options, workload: &str, tracing: bool) -> WorkloadOutput {
    if options.harts > 1 {
        return run_one_smp(options, workload, tracing);
    }
    let config = machine_config(options);
    let mut stdout = String::new();
    if tracing {
        let mut sink = JsonlSink::new_headerless(Vec::new());
        let (cycles, snap) = run_workload(options, workload, config, &mut sink, &mut stdout);
        sink.flush();
        WorkloadOutput {
            stdout,
            cycles,
            snap,
            trace_events: sink.written(),
            trace_io_errors: sink.io_errors(),
            trace: sink.into_inner(),
            telemetry: TelemetryOutput::default(),
            wall: std::time::Duration::ZERO,
        }
    } else {
        let (cycles, snap) = run_workload(options, workload, config, NullSink, &mut stdout);
        WorkloadOutput {
            stdout,
            cycles,
            snap,
            trace: Vec::new(),
            trace_events: 0,
            trace_io_errors: 0,
            telemetry: TelemetryOutput::default(),
            wall: std::time::Duration::ZERO,
        }
    }
}

/// Runs one workload's SMP shape on `--harts` harts: per-hart machines
/// (each with its own headerless sink when tracing) over one shared
/// monitor and physical memory. Per-hart trace bytes are spliced in hart
/// order — events carry their hart id, so analysis does not depend on the
/// global interleaving order.
/// Runs one SMP workload on the selected backend. The threaded backend
/// takes no telemetry spec — telemetry flags were rejected at parse time.
fn run_smp_dispatch<S: TraceSink + Send>(
    options: &Options,
    machines: Vec<hpmp_machine::Machine<S>>,
    spec: hpmp_workloads::smp::SmpWorkloadSpec,
    telemetry_spec: hpmp_workloads::smp::SmpTelemetrySpec,
) -> (
    hpmp_workloads::smp::SmpOutcome,
    Snapshot,
    Vec<S>,
    hpmp_workloads::smp::SmpTelemetry,
) {
    match options.backend {
        ExecBackend::Deterministic => hpmp_workloads::smp::run_smp_telemetry(
            machines,
            options.flavor,
            SMP_SEED,
            spec,
            telemetry_spec,
        )
        .expect("SMP workload"),
        ExecBackend::Threaded => {
            let (outcome, snap, sinks) =
                hpmp_workloads::smp::run_smp_threaded(machines, options.flavor, SMP_SEED, spec)
                    .expect("SMP workload");
            (
                outcome,
                snap,
                sinks,
                hpmp_workloads::smp::SmpTelemetry::default(),
            )
        }
    }
}

fn run_one_smp(options: &Options, workload: &str, tracing: bool) -> WorkloadOutput {
    let config = machine_config(options);
    let spec =
        hpmp_workloads::smp::spec_for(workload).expect("every hpmpsim workload has an SMP shape");
    let telemetry_spec = hpmp_workloads::smp::SmpTelemetrySpec {
        snapshot_interval: options.snapshot_interval,
        span_capacity: options
            .spans_out
            .as_ref()
            .map(|_| hpmp_workloads::smp::SmpTelemetrySpec::DEFAULT_SPAN_CAPACITY),
    };
    let mut stdout = String::new();
    if tracing {
        let machines = (0..options.harts)
            .map(|_| {
                hpmp_machine::Machine::with_sink(config, JsonlSink::new_headerless(Vec::new()))
            })
            .collect();
        let (outcome, snap, sinks, telemetry) =
            run_smp_dispatch(options, machines, spec, telemetry_spec);
        report_smp(&outcome, &snap, &mut stdout);
        let mut trace = Vec::new();
        let mut trace_events = 0;
        let mut trace_io_errors = 0;
        for sink in sinks {
            trace_events += sink.written();
            trace_io_errors += sink.io_errors();
            trace.extend_from_slice(&sink.into_inner());
        }
        WorkloadOutput {
            stdout,
            cycles: outcome.total_cycles,
            snap,
            trace,
            trace_events,
            trace_io_errors,
            telemetry: TelemetryOutput::from_run(&telemetry),
            wall: std::time::Duration::ZERO,
        }
    } else {
        let machines = (0..options.harts)
            .map(|_| hpmp_machine::Machine::new(config))
            .collect();
        let (outcome, snap, _, telemetry) =
            run_smp_dispatch(options, machines, spec, telemetry_spec);
        report_smp(&outcome, &snap, &mut stdout);
        WorkloadOutput {
            stdout,
            cycles: outcome.total_cycles,
            snap,
            trace: Vec::new(),
            trace_events: 0,
            trace_io_errors: 0,
            telemetry: TelemetryOutput::from_run(&telemetry),
            wall: std::time::Duration::ZERO,
        }
    }
}

/// Per-hart console lines for an SMP run: who got shot down, who stalled.
fn report_smp(outcome: &hpmp_workloads::smp::SmpOutcome, snap: &Snapshot, out: &mut String) {
    let _ = writeln!(
        out,
        "  smp          : {} accesses on {} harts; {} IPIs sent, {} delivered, {} merged",
        outcome.accesses,
        outcome.harts,
        snap.value("smp.ipis_sent"),
        snap.value("smp.ipis_delivered"),
        snap.value("smp.ipis_merged"),
    );
    for hart in 0..outcome.harts {
        let _ = writeln!(
            out,
            "  hart {hart}       : {} cycles, {} shootdowns ({} cyc), {} fence-stall cyc",
            snap.value(&format!("hart.{hart}.machine.cycles")),
            snap.value(&format!("hart.{hart}.shootdowns")),
            snap.value(&format!("hart.{hart}.shootdown_cycles")),
            snap.value(&format!("hart.{hart}.fence_stall_cycles")),
        );
    }
}

/// Runs the selected workload with `sink` attached, returning total cycles
/// and the unified metrics snapshot of the machine that ran it (merged
/// across machines for workloads that boot one per kernel). Console output
/// goes to `out` so the pool can order it deterministically.
fn run_workload<S: TraceSink>(
    options: &Options,
    workload: &str,
    config: MachineConfig,
    mut sink: S,
    out: &mut String,
) -> (u64, Snapshot) {
    match workload {
        "serverless" => {
            let mut tee = TeeBench::boot_with_sink(options.flavor, config, sink);
            let mut total = 0;
            for (i, function) in hpmp_workloads::serverless::FUNCTIONS.iter().enumerate() {
                total += hpmp_workloads::serverless::invoke(&mut tee, *function, i as u64)
                    .expect("invocation");
            }
            report_machine(&tee, out);
            tee.machine.flush_sink();
            (total, tee.machine.metrics_snapshot())
        }
        "redis" => {
            let mut server = hpmp_workloads::redis::RedisServer::start_with_sink(
                options.flavor,
                options.core,
                hpmp_workloads::redis::DEFAULT_DATASET_PAGES,
                sink,
            )
            .expect("server");
            let mut total = 0;
            for cmd in hpmp_workloads::redis::REDIS_COMMANDS {
                for _ in 0..50 {
                    total += server.serve(cmd).expect("request");
                }
            }
            server.tee_mut().machine.flush_sink();
            (total, server.tee_mut().machine.metrics_snapshot())
        }
        "gap" => {
            let graph = hpmp_workloads::gap::default_graph();
            let mut total = 0;
            let mut merged = Snapshot::new();
            for kernel in hpmp_workloads::gap::GAP_KERNELS {
                let (cycles, snap) = hpmp_workloads::gap::run_gap_with_sink(
                    options.flavor,
                    options.core,
                    kernel,
                    &graph,
                    5_000,
                    &mut sink,
                )
                .expect("kernel");
                total += cycles;
                merged = merged.merge(&snap);
            }
            (total, merged)
        }
        "rv8" => {
            let mut total = 0;
            let mut merged = Snapshot::new();
            for kernel in hpmp_workloads::rv8::RV8_KERNELS {
                let (cycles, snap) = hpmp_workloads::rv8::run_rv8_with_sink(
                    options.flavor,
                    options.core,
                    kernel,
                    &mut sink,
                )
                .expect("kernel");
                total += cycles;
                merged = merged.merge(&snap);
            }
            (total, merged)
        }
        "lmbench" => {
            let mut ctx = hpmp_workloads::lmbench::LmbenchContext::new_with_sink(
                options.flavor,
                options.core,
                sink,
            )
            .expect("boot");
            let mut total = 0;
            for syscall in hpmp_workloads::lmbench::SYSCALLS {
                for _ in 0..10 {
                    total += ctx.run(syscall).expect("syscall");
                }
            }
            ctx.tee_mut().machine.flush_sink();
            (total, ctx.tee_mut().machine.metrics_snapshot())
        }
        "virtapp" => {
            let scheme = match options.flavor {
                TeeFlavor::PenglaiPmp => hpmp_machine::VirtScheme::Pmp,
                TeeFlavor::PenglaiPmpt => hpmp_machine::VirtScheme::PmpTable,
                TeeFlavor::PenglaiHpmp => hpmp_machine::VirtScheme::Hpmp,
            };
            let (result, snap) = hpmp_workloads::virt_app::run_guest_kv_with_sink(
                options.core,
                scheme,
                hpmp_workloads::virt_app::GUEST_DATASET_PAGES,
                500,
                sink,
            );
            let _ = writeln!(out, "  cycles/request: {:.0}", result.cycles_per_request());
            (result.cycles, snap)
        }
        "tenancy" => {
            let (result, snap) = hpmp_workloads::multi_tenant::run_tenancy_with_sink(
                options.flavor,
                options.core,
                100,
                2,
                sink,
            )
            .expect("tenancy");
            let _ = writeln!(
                out,
                "  tenants: {} (entry wall: {})",
                result.tenants, result.hit_entry_wall
            );
            (result.total_cycles, snap)
        }
        _ => unreachable!("workloads are validated against WORKLOADS"),
    }
}

fn report_machine<S: TraceSink>(tee: &TeeBench<S>, out: &mut String) {
    let stats = tee.machine.stats();
    let tlb = tee.machine.tlb_stats();
    let mem = tee.machine.mem_stats();
    let _ = writeln!(
        out,
        "  accesses     : {} ({} walks, {:.1}% TLB hit)",
        stats.accesses,
        stats.walks,
        tlb.hit_rate() * 100.0
    );
    let _ = writeln!(
        out,
        "  references   : {} PT, {} data, {} pmpte(PT), {} pmpte(data)",
        stats.refs.pt_reads,
        stats.refs.data_reads,
        stats.refs.pmpte_for_pt,
        stats.refs.pmpte_for_data,
    );
    let _ = writeln!(
        out,
        "  hierarchy    : L1 {:.1}% | L2 {:.1}% | LLC {:.1}% hit; {} DRAM row hits / {} misses",
        mem.l1.hit_rate() * 100.0,
        mem.l2.hit_rate() * 100.0,
        mem.llc.hit_rate() * 100.0,
        mem.dram.row_hits,
        mem.dram.row_misses,
    );
}
