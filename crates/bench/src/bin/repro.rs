//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage: `repro [--jobs N] [--serial] [--trace-out <walks.jsonl>]
//! [--metrics-out <m.json>] [--bench-out <BENCH_name.json>]
//! [--snapshot-interval <cycles>] [--timeline-out <timeline.jsonl>]
//! [--spans-out <spans.jsonl>] [--host-profile-out <host.json>]
//! [experiment...]` where experiment is one of `table1 fig2 fig3 fig10
//! table3 fig11 fig12ac fig12de fig13 fig14 fig15 fig16 fig17 table4
//! svsweep virtapp tenancy encryption multihart all` (default: `all`).
//! Unknown flags and experiment names are rejected (exit 2) — see
//! `--help`.
//!
//! Experiments build independent machines, so they run on an in-process
//! worker pool (`--jobs N`, default: the machine's available parallelism;
//! `--serial` is shorthand for `--jobs 1`). Each experiment gets its own
//! trace sink and metrics registry; report text, metrics snapshots,
//! [`hpmp_trace::BenchReport`] records and trace bytes are merged in the
//! fixed presentation order afterwards, so every output is **byte-identical
//! whatever the thread count**.
//!
//! `--trace-out` streams one JSONL [`hpmp_trace::WalkEvent`] per memory access
//! for the experiments that drive the instrumented machine directly (fig2,
//! fig11, fig12de, fig13, fig14, fig17, svsweep, virtapp, tenancy,
//! encryption); `--metrics-out` writes their merged metrics registry snapshot
//! as versioned JSON. `--bench-out` writes a perf-trajectory
//! [`hpmp_trace::BenchReport`] with one record per traced experiment (cycles,
//! walks, walk-reference counters, latency percentiles) for
//! `hpmp-analyze gate`.
//!
//! `--host-profile-out` writes a [`hpmp_trace::HostProfile`]: *wall-clock*
//! phase timers and per-experiment host time, with the walks-per-second
//! headline printed to stderr. Host-clock data is nondeterministic, so it
//! never touches stdout or the simulated artifacts above — those stay
//! byte-identical whether or not profiling is on (see DESIGN.md §10, the
//! dual-clock quarantine).
//!
//! Absolute cycle counts come from the simulated SoC, not the authors'
//! FPGA; the *shapes* (who wins, by what factor, where crossovers are) are
//! the reproduction targets — see EXPERIMENTS.md.

use std::io::Write as _;

use hpmp_bench::{capture_reports, pct, pct_f, run_ordered, Report};
use hpmp_core::{estimate_resources, HardwareParams, PmptwCacheConfig};
use hpmp_machine::{IsolationScheme, MachineConfig, VirtScheme};
use hpmp_memsim::{AccessKind, CoreKind, PhysAddr};
use hpmp_penglai::{cost, DomainId, GmsLabel, MonitorError, SecureMonitor, TeeFlavor};
use hpmp_trace::{
    walks_in_snapshot, BenchReport, ExperimentRecord, HostProfiler, JsonlSink, NullSink, Snapshot,
    TraceSink,
};
use hpmp_workloads::latency::{
    figure_10_panel, measure_virt_with_sink, TestCase, VirtCase, VIRT_CASES,
};
use hpmp_workloads::{frag, gap, lmbench, redis, rv8, serverless};

const SCHEMES: [IsolationScheme; 3] = [
    IsolationScheme::PmpTable,
    IsolationScheme::Hpmp,
    IsolationScheme::Pmp,
];

/// Every experiment, in presentation order.
const EXPERIMENTS: [&str; 19] = [
    "table1",
    "fig2",
    "fig10",
    "table3",
    "fig11",
    "fig12ac",
    "fig12de",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "table4",
    "fig3",
    "svsweep",
    "virtapp",
    "tenancy",
    "encryption",
    "multihart",
];

/// Prints the full flag/experiment reference and exits. Every flag the
/// parser accepts must appear here — pinned by the help-coverage test.
fn usage() -> ! {
    eprintln!(
        "usage: repro [--jobs N | --serial] [--backend deterministic|threaded]\n\
         \x20            [--trace-out walks.jsonl] [--metrics-out metrics.json]\n\
         \x20            [--bench-out BENCH_name.json]\n\
         \x20            [--snapshot-interval CYCLES] [--timeline-out timeline.jsonl]\n\
         \x20            [--spans-out spans.jsonl]\n\
         \x20            [--host-profile-out host.json]\n\
         \x20            [experiment...]\n\
         experiments (default: all): {}",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let mut jobs: Option<usize> = None;
    let mut backend = hpmp_machine::ExecBackend::Deterministic;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut host_profile_out: Option<String> = None;
    let mut telemetry = TelemetryOptions::default();
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--serial" => jobs = Some(1),
            "--jobs" => match raw.next().as_deref().map(str::parse) {
                Some(Ok(n)) => jobs = Some(n),
                _ => {
                    eprintln!("repro: --jobs needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--backend" => match raw.next().as_deref().map(str::parse) {
                Some(Ok(b)) => backend = b,
                Some(Err(e)) => {
                    eprintln!("repro: {e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("repro: --backend needs a value");
                    std::process::exit(2);
                }
            },
            "--trace-out" => trace_out = raw.next(),
            "--metrics-out" => metrics_out = raw.next(),
            "--bench-out" => bench_out = raw.next(),
            "--snapshot-interval" => match raw.next().as_deref().map(str::parse) {
                Some(Ok(n)) if n >= 1 => telemetry.snapshot_interval = Some(n),
                _ => {
                    eprintln!("repro: --snapshot-interval needs a positive cycle count");
                    std::process::exit(2);
                }
            },
            "--timeline-out" => telemetry.timeline_out = raw.next(),
            "--spans-out" => telemetry.spans_out = raw.next(),
            "--host-profile-out" => host_profile_out = raw.next(),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("repro: unknown flag {other}");
                usage()
            }
            _ => args.push(arg),
        }
    }
    for name in &args {
        if name != "all" && !EXPERIMENTS.contains(&name.as_str()) {
            eprintln!("repro: unknown experiment {name}");
            usage()
        }
    }
    if telemetry.timeline_out.is_some() && telemetry.snapshot_interval.is_none() {
        eprintln!("repro: --timeline-out needs --snapshot-interval");
        std::process::exit(2);
    }
    if backend == hpmp_machine::ExecBackend::Threaded && telemetry.requested() {
        eprintln!("repro: time-resolved telemetry requires --backend deterministic");
        std::process::exit(2);
    }
    let jobs = jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1);
    let wanted: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let all = wanted.contains(&"all");
    let worklist: Vec<&'static str> = EXPERIMENTS
        .iter()
        .copied()
        .filter(|name| all || wanted.contains(name))
        .collect();

    // Run the selected experiments on the worker pool. Each experiment gets
    // its own sink and registry; stdout buffers stream out as soon as all
    // earlier experiments are done, so output order never depends on `jobs`.
    // The profiler is host-clock only: its measurements go to
    // `--host-profile-out` and stderr, never into stdout or the simulated
    // artifacts.
    let mut profiler = HostProfiler::new("repro");
    let tracing = trace_out.is_some();
    profiler.begin_phase("run");
    let outputs = run_ordered(
        worklist.len(),
        jobs,
        |i| {
            let started = std::time::Instant::now();
            let mut out = run_one(worklist[i], tracing, &telemetry, backend);
            out.wall = started.elapsed();
            out
        },
        |out| print!("{}", out.stdout),
    );
    profiler.begin_phase("write");

    // Merge metrics and bench records in presentation order.
    let mut metrics = Snapshot::new();
    let mut report = BenchReport::new("repro");
    report.set_config("suite", "hpmp-repro");
    report.set_config("experiments", wanted.join(","));
    for (name, out) in worklist.iter().zip(&outputs) {
        if let Some(snap) = &out.snap {
            record(&mut report, &mut metrics, name, snap.clone());
        }
    }

    if let Some(path) = &trace_out {
        // One schema header, then each experiment's trace bytes spliced in
        // presentation order — the same stream a serial shared-sink run
        // would have produced.
        let sink = match JsonlSink::create(path) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("repro: cannot create {path}: {e}");
                std::process::exit(1);
            }
        };
        let mut file = sink.into_inner();
        for out in &outputs {
            if let Err(e) = file.write_all(&out.trace) {
                eprintln!("repro: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
        if let Err(e) = file.flush() {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        }
        let events: u64 = outputs.iter().map(|o| o.trace_events).sum();
        eprintln!("repro: trace: {events} events -> {path}");
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, metrics.to_json_versioned()) {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("repro: metrics: {} counters -> {}", metrics.len(), path);
    }
    if let Some(path) = &bench_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "repro: bench report: {} experiments -> {}",
            report.experiments.len(),
            path
        );
    }

    // Host-clock epilogue: stderr and the dedicated profile artifact only,
    // so the simulated outputs above are byte-identical whether or not
    // profiling is on.
    for (name, out) in worklist.iter().zip(&outputs) {
        let walks = out.snap.as_ref().map(walks_in_snapshot).unwrap_or(0);
        profiler.record_experiment(*name, out.wall, walks);
    }
    let profile = profiler.finish();
    if let Some(path) = &host_profile_out {
        if let Err(e) = std::fs::write(path, profile.to_json()) {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("repro: host profile -> {path}");
    }
    eprintln!("{}", profile.headline());
}

/// Everything one experiment produced, buffered so the main thread can
/// merge outputs in presentation order.
struct ExperimentOutput {
    /// The experiment's rendered report tables.
    stdout: String,
    /// Its metrics snapshot, for the traced experiments.
    snap: Option<Snapshot>,
    /// Headerless JSONL walk-event bytes (empty unless tracing).
    trace: Vec<u8>,
    /// Number of trace events in `trace`.
    trace_events: u64,
    /// Host wall-clock time the experiment took; feeds only the host
    /// profile, never a simulated artifact.
    wall: std::time::Duration,
}

/// Time-resolved telemetry outputs, recorded by the one experiment with a
/// global simulated clock (`multihart`, on its 4-hart HPMP run).
#[derive(Default)]
struct TelemetryOptions {
    /// Cut a timeline slice every N global simulated cycles.
    snapshot_interval: Option<u64>,
    /// Where the timeline JSONL goes (default `timeline.jsonl`).
    timeline_out: Option<String>,
    /// Where the monitor-operation span JSONL goes.
    spans_out: Option<String>,
}

impl TelemetryOptions {
    fn requested(&self) -> bool {
        self.snapshot_interval.is_some() || self.spans_out.is_some()
    }
}

/// Runs one experiment with a private sink and registry, capturing its
/// report output instead of printing it.
fn run_one(
    name: &str,
    tracing: bool,
    telemetry: &TelemetryOptions,
    backend: hpmp_machine::ExecBackend,
) -> ExperimentOutput {
    if tracing {
        let mut sink = JsonlSink::new_headerless(Vec::new());
        let (snap, stdout) = capture_reports(|| dispatch(name, &mut sink, telemetry, backend));
        let trace_events = sink.written();
        ExperimentOutput {
            stdout,
            snap,
            trace: sink.into_inner(),
            trace_events,
            wall: std::time::Duration::ZERO,
        }
    } else {
        let (snap, stdout) = capture_reports(|| dispatch(name, &mut NullSink, telemetry, backend));
        ExperimentOutput {
            stdout,
            snap,
            trace: Vec::new(),
            trace_events: 0,
            wall: std::time::Duration::ZERO,
        }
    }
}

/// Runs the named experiment, lending `sink` to the ones that drive the
/// instrumented machine directly and returning their metrics snapshot.
fn dispatch<S: TraceSink>(
    name: &str,
    sink: &mut S,
    telemetry: &TelemetryOptions,
    backend: hpmp_machine::ExecBackend,
) -> Option<Snapshot> {
    let snap = match name {
        "table1" => return none_after(table1),
        "fig2" => fig2(sink),
        "fig10" => return none_after(fig10),
        "table3" => return none_after(table3),
        "fig11" => fig11(sink),
        "fig12ac" => return none_after(fig12ac),
        "fig12de" => fig12de(sink),
        "fig13" => fig13(sink),
        "fig14" => fig14(sink),
        "fig15" => return none_after(fig15),
        "fig16" => return none_after(fig16),
        "fig17" => fig17(sink),
        "table4" => return none_after(table4),
        "fig3" => return none_after(fig3),
        "svsweep" => svsweep(sink),
        "virtapp" => virtapp(sink),
        "tenancy" => tenancy(sink),
        "encryption" => encryption(sink),
        "multihart" => multihart(telemetry, backend),
        _ => unreachable!("worklist is filtered against EXPERIMENTS"),
    };
    sink.flush();
    Some(snap)
}

fn none_after(experiment: fn()) -> Option<Snapshot> {
    experiment();
    None
}

/// Folds one traced experiment's snapshot into both the merged metrics and
/// the perf-trajectory report. The experiment's cycle total is whatever its
/// machines accumulated (`machine.cycles` for native, `virt.cycles` for
/// virtualized runs, `smp.cycles` for multi-hart runs whose per-hart
/// counters live under `hart.<i>.machine.*` instead).
fn record(report: &mut BenchReport, metrics: &mut Snapshot, name: &str, snap: Snapshot) {
    let cycles =
        snap.value("machine.cycles") + snap.value("virt.cycles") + snap.value("smp.cycles");
    *metrics = metrics.merge(&snap);
    report.push(ExperimentRecord::from_snapshot(name, cycles, snap));
}

/// Table 1: simulation configurations.
fn table1() {
    let mut r = Report::new(
        "Table 1: simulation configurations",
        &["Parameter", "Value"],
    );
    for (name, cfg) in [
        ("Rocket", MachineConfig::rocket()),
        ("BOOM", MachineConfig::boom()),
    ] {
        r.row(&[
            format!("{name} core"),
            format!("{} @ {} MHz", cfg.core.kind, cfg.core.clock_mhz),
        ]);
        r.row(&[
            format!("{name} L1 D-cache"),
            format!(
                "{} KiB, {}-way, {}-cycle hit",
                cfg.mem.l1.capacity / 1024,
                cfg.mem.l1.ways,
                cfg.mem.l1.hit_latency
            ),
        ]);
        r.row(&[
            format!("{name} L2"),
            format!(
                "{} KiB, {}-way, {}-cycle hit",
                cfg.mem.l2.capacity / 1024,
                cfg.mem.l2.ways,
                cfg.mem.l2.hit_latency
            ),
        ]);
        r.row(&[
            format!("{name} LLC"),
            format!(
                "{} MiB, {}-way, {}-cycle hit",
                cfg.mem.llc.capacity >> 20,
                cfg.mem.llc.ways,
                cfg.mem.llc.hit_latency
            ),
        ]);
        r.row(&[
            format!("{name} TLB"),
            format!(
                "L1 {} entries FA, L2 {} direct-mapped",
                cfg.tlb.l1_entries, cfg.tlb.l2_entries
            ),
        ]);
        r.row(&[
            format!("{name} PTECache (PWC)"),
            format!("{} entries", cfg.pwc.entries),
        ]);
    }
    let dram = MachineConfig::rocket().mem.dram;
    r.row(&[
        "DRAM".into(),
        format!(
            "{} banks, {} B rows, {}/{} cycle hit/miss",
            dram.banks, dram.row_bytes, dram.row_hit_latency, dram.row_miss_latency
        ),
    ]);
    r.print();
}

/// Figures 2 & 4: memory-reference counts per TLB-miss access.
fn fig2<S: TraceSink>(sink: &mut S) -> Snapshot {
    use hpmp_machine::SystemBuilder;
    use hpmp_memsim::{Perms, PrivMode, VirtAddr};
    let mut metrics = Snapshot::new();
    let mut r = Report::new(
        "Figures 2/4: memory references per access (Sv39, TLB miss, cold)",
        &[
            "Scheme",
            "PT reads",
            "pmpte (PT)",
            "pmpte (data)",
            "data",
            "total",
        ],
    );
    for scheme in [
        IsolationScheme::Pmp,
        IsolationScheme::PmpTable,
        IsolationScheme::Hpmp,
    ] {
        let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme)
            .sink(&mut *sink)
            .build();
        sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
        sys.sync_pt_grants();
        sys.machine.flush_microarch();
        let out = sys
            .machine
            .access(
                &sys.space,
                VirtAddr::new(0x10_0000),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .expect("access");
        r.row(&[
            scheme.to_string(),
            out.refs.pt_reads.to_string(),
            out.refs.pmpte_for_pt.to_string(),
            out.refs.pmpte_for_data.to_string(),
            out.refs.data_reads.to_string(),
            out.refs.total().to_string(),
        ]);
        metrics = metrics.merge(&sys.machine.metrics_snapshot());
    }
    r.note("paper: PMP=4, PMP Table=12, HPMP=6");
    r.print();
    metrics
}

/// Figure 10: ld/sd latency for TC1–TC4 on both cores.
fn fig10() {
    for core in [CoreKind::Rocket, CoreKind::Boom] {
        for op in [AccessKind::Read, AccessKind::Write] {
            let op_name = if op == AccessKind::Read { "ld" } else { "sd" };
            let mut r = Report::new(
                format!("Figure 10: {op_name} latency ({core}), cycles"),
                &["Case", "PMPTable", "HPMP", "PMP", "HPMP mitigation"],
            );
            for row in figure_10_panel(core, op) {
                r.row(&[
                    row.case.to_string(),
                    row.pmpt.to_string(),
                    row.hpmp.to_string(),
                    row.pmp.to_string(),
                    if row.case == TestCase::Tc4 {
                        "-".into()
                    } else {
                        pct_f(row.mitigation())
                    },
                ]);
            }
            r.note("paper: HPMP mitigates 23.1%-73.1% (BOOM), 47.7%-72.4% (Rocket)");
            r.print();
        }
    }
}

/// Table 3: LMBench syscall costs (BOOM).
fn table3() {
    let mut r = Report::new(
        "Table 3: OS operation costs (BOOM), cycles per call",
        &["Syscall", "PMP", "PMPT", "HPMP", "PMPT/HPMP"],
    );
    let iters = 12;
    let mut ratios = Vec::new();
    for syscall in lmbench::SYSCALLS {
        let pmp = lmbench::measure_syscall(TeeFlavor::PenglaiPmp, CoreKind::Boom, syscall, iters)
            .expect("pmp");
        let pmpt = lmbench::measure_syscall(TeeFlavor::PenglaiPmpt, CoreKind::Boom, syscall, iters)
            .expect("pmpt");
        let hpmp = lmbench::measure_syscall(TeeFlavor::PenglaiHpmp, CoreKind::Boom, syscall, iters)
            .expect("hpmp");
        let ratio = pmpt as f64 / hpmp as f64;
        ratios.push(ratio);
        r.row(&[
            syscall.to_string(),
            pmp.to_string(),
            pmpt.to_string(),
            hpmp.to_string(),
            pct_f(ratio),
        ]);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    r.row(&[
        "Avg".into(),
        String::new(),
        String::new(),
        String::new(),
        pct_f(avg),
    ]);
    r.note("paper: PMPT/HPMP avg = 128.43%");
    r.print();
}

/// Figure 11: RV8 (Rocket) and GAP (Rocket + BOOM).
fn fig11<S: TraceSink>(sink: &mut S) -> Snapshot {
    let mut metrics = Snapshot::new();
    let mut r = Report::new(
        "Figure 11-a: RV8 (Rocket), latency normalised to Penglai-PMP",
        &["Kernel", "PL-PMP", "PL-PMPT", "PL-HPMP"],
    );
    for kernel in rv8::RV8_KERNELS {
        let mut run = |flavor| {
            let (cycles, snap) =
                rv8::run_rv8_with_sink(flavor, CoreKind::Rocket, kernel, &mut *sink).expect("rv8");
            metrics = metrics.merge(&snap);
            cycles
        };
        let pmp = run(TeeFlavor::PenglaiPmp);
        let pmpt = run(TeeFlavor::PenglaiPmpt);
        let hpmp = run(TeeFlavor::PenglaiHpmp);
        r.row(&[
            kernel.to_string(),
            "100.0%".into(),
            pct(pmpt, pmp),
            pct(hpmp, pmp),
        ]);
    }
    r.note("paper: PMPT 0.0%-1.7% over PMP; HPMP 0.0%-0.5%");
    r.print();

    let graph = gap::default_graph();
    let budget = 20_000;
    for core in [CoreKind::Rocket, CoreKind::Boom] {
        let mut r = Report::new(
            format!("Figure 11-b/c: GAP ({core}), latency normalised to Penglai-PMP"),
            &["Kernel", "PL-PMP", "PL-PMPT", "PL-HPMP"],
        );
        for kernel in gap::GAP_KERNELS {
            let mut run = |flavor| {
                let (cycles, snap) =
                    gap::run_gap_with_sink(flavor, core, kernel, &graph, budget, &mut *sink)
                        .expect("gap");
                metrics = metrics.merge(&snap);
                cycles
            };
            let pmp = run(TeeFlavor::PenglaiPmp);
            let pmpt = run(TeeFlavor::PenglaiPmpt);
            let hpmp = run(TeeFlavor::PenglaiHpmp);
            r.row(&[
                kernel.to_string(),
                "100.0%".into(),
                pct(pmpt, pmp),
                pct(hpmp, pmp),
            ]);
        }
        r.note("paper: PMPT 1.2%-6.7% (Rocket) / 1.8%-9.6% (BOOM); HPMP <= 2.4%");
        r.print();
    }
    metrics
}

/// Figure 12-a/b/c: FunctionBench and the image-processing chain.
fn fig12ac() {
    let n = 3;
    for core in [CoreKind::Rocket, CoreKind::Boom] {
        let mut r = Report::new(
            format!("Figure 12-a/b: FunctionBench ({core}), latency normalised to PL-PMP"),
            &["Function", "PL-PMP", "PL-PMPT", "PL-HPMP"],
        );
        for function in serverless::FUNCTIONS {
            let pmp = serverless::measure_function(TeeFlavor::PenglaiPmp, core, function, n)
                .expect("pmp");
            let pmpt = serverless::measure_function(TeeFlavor::PenglaiPmpt, core, function, n)
                .expect("pmpt");
            let hpmp = serverless::measure_function(TeeFlavor::PenglaiHpmp, core, function, n)
                .expect("hpmp");
            r.row(&[
                function.to_string(),
                "100.0%".into(),
                pct(pmpt, pmp),
                pct(hpmp, pmp),
            ]);
        }
        r.note("paper: PMPT avg 5.1% (Rocket) / 14.1% (BOOM); HPMP avg 2.0% / 3.5%");
        r.print();
    }

    let mut r = Report::new(
        "Figure 12-c: serverless image processing chain (Rocket), normalised to PL-PMP",
        &["Image size", "PL-PMP", "PL-PMPT", "PL-HPMP"],
    );
    for size in [32u64, 64, 128, 256] {
        let pmp =
            serverless::image_chain(TeeFlavor::PenglaiPmp, CoreKind::Rocket, size).expect("pmp");
        let pmpt =
            serverless::image_chain(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, size).expect("pmpt");
        let hpmp =
            serverless::image_chain(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, size).expect("hpmp");
        r.row(&[
            format!("{size}x{size}"),
            "100.0%".into(),
            pct(pmpt, pmp),
            pct(hpmp, pmp),
        ]);
    }
    r.note("paper: PMPT 29.7% -> 1.6% as size grows; HPMP 0.3%-6.7%");
    r.print();
}

/// Figure 12-d/e: Redis RPS.
fn fig12de<S: TraceSink>(sink: &mut S) -> Snapshot {
    let mut metrics = Snapshot::new();
    let requests = 250;
    for core in [CoreKind::Rocket, CoreKind::Boom] {
        let mut r = Report::new(
            format!("Figure 12-d/e: Redis ({core}), RPS normalised to Penglai-PMP"),
            &["Command", "PL-PMP", "PL-PMPT", "PL-HPMP"],
        );
        let mut pmp_srv = redis::RedisServer::start_with_sink(
            TeeFlavor::PenglaiPmp,
            core,
            redis::DEFAULT_DATASET_PAGES,
            &mut *sink,
        )
        .expect("pmp server");
        let mut pmpt_srv =
            redis::RedisServer::start(TeeFlavor::PenglaiPmpt, core, redis::DEFAULT_DATASET_PAGES)
                .expect("pmpt server");
        let mut hpmp_srv =
            redis::RedisServer::start(TeeFlavor::PenglaiHpmp, core, redis::DEFAULT_DATASET_PAGES)
                .expect("hpmp server");
        for cmd in redis::REDIS_COMMANDS {
            let pmp = pmp_srv.rps(cmd, requests).expect("pmp");
            let pmpt = pmpt_srv.rps(cmd, requests).expect("pmpt");
            let hpmp = hpmp_srv.rps(cmd, requests).expect("hpmp");
            r.row(&[
                cmd.to_string(),
                "100.0%".into(),
                pct_f(pmpt / pmp),
                pct_f(hpmp / pmp),
            ]);
        }
        metrics = metrics.merge(&pmp_srv.tee_mut().machine.metrics_snapshot());
        metrics = metrics.merge(&pmpt_srv.tee_mut().machine.metrics_snapshot());
        metrics = metrics.merge(&hpmp_srv.tee_mut().machine.metrics_snapshot());
        pmp_srv.tee_mut().machine.flush_sink();
        r.note("paper: PMPT loses 5.9%-18.0% (Rocket) / 10.8%-31.8% (BOOM); HPMP ~3-5%");
        r.print();
    }
    metrics
}

/// Figure 13: virtualized memory access latency (Rocket).
fn fig13<S: TraceSink>(sink: &mut S) -> Snapshot {
    let mut metrics = Snapshot::new();
    let mut r = Report::new(
        "Figure 13: virtualized access latency (Rocket), cycles",
        &["Case", "PMPT", "HPMP", "HPMP-GPT", "PMP"],
    );
    for case in VIRT_CASES {
        let cells: Vec<String> = [
            VirtScheme::PmpTable,
            VirtScheme::Hpmp,
            VirtScheme::HpmpGpt,
            VirtScheme::Pmp,
        ]
        .iter()
        .map(|&s| {
            let (cycles, snap) = measure_virt_with_sink(CoreKind::Rocket, s, case, &mut *sink);
            metrics = metrics.merge(&snap);
            cycles.to_string()
        })
        .collect();
        let mut row = vec![case.to_string()];
        row.extend(cells);
        r.row(&row);
    }
    r.note("paper: HPMP cuts PMPT's extra cost to 29.7%-75.6%; HPMP-GPT to 16.3%-26.8%");
    let _ = VirtCase::Tc1;
    r.print();
    metrics
}

/// Figure 14: TEE operation costs.
fn fig14<S: TraceSink>(sink: &mut S) -> Snapshot {
    let mut metrics = Snapshot::new();
    // (a) Domain switch cost at 2 / 12 / 101 domains.
    let mut r = Report::new(
        "Figure 14-a: domain switch latency (cycles)",
        &["Domains", "Penglai-PMP", "Penglai-HPMP"],
    );
    for &count in &[2u32, 12, 101] {
        let mut cells = vec![format!("{count}-domains")];
        for flavor in [TeeFlavor::PenglaiPmp, TeeFlavor::PenglaiHpmp] {
            cells.push(match switch_cost(flavor, count, &mut *sink) {
                Ok(cycles) => cycles.to_string(),
                Err(MonitorError::OutOfPmpEntries) => "no available PMP".into(),
                Err(e) => format!("error: {e}"),
            });
        }
        r.row(&cells);
    }
    r.note("paper: HPMP within 1% of PMP; stable with instance count; PMP fails at 101");
    r.print();

    // (b)/(c) Region allocation and release, 64 KiB x 100.
    let mut r = Report::new(
        "Figure 14-b/c: 64 KiB region allocation/release latency (cycles)",
        &[
            "Regions",
            "PMP alloc",
            "PMP free",
            "HPMP alloc",
            "HPMP free",
        ],
    );
    let samples = [1usize, 10, 25, 50, 75, 100];
    let pmp = region_cycle_series(TeeFlavor::PenglaiPmp, 100, &mut *sink);
    let hpmp = region_cycle_series(TeeFlavor::PenglaiHpmp, 100, &mut *sink);
    for &i in &samples {
        let get = |series: &(Vec<u64>, Vec<u64>), idx: usize, alloc: bool| -> String {
            let v = if alloc { &series.0 } else { &series.1 };
            v.get(idx - 1)
                .map(|c| c.to_string())
                .unwrap_or_else(|| "no PMP".into())
        };
        r.row(&[
            i.to_string(),
            get(&pmp, i, true),
            get(&pmp, i, false),
            get(&hpmp, i, true),
            get(&hpmp, i, false),
        ]);
    }
    r.note("paper: PMP stops at ~13 regions; HPMP supports >100 at slightly higher cost");
    r.print();

    // (d) Allocation with different sizes (HPMP).
    let mut r = Report::new(
        "Figure 14-d: Penglai-HPMP allocation latency by region size (cycles)",
        &["Size (MiB)", "Latency"],
    );
    for &mib in &[1u64, 2, 4, 8, 16, 32, 64] {
        let mut machine = hpmp_machine::Machine::with_sink(MachineConfig::rocket(), &mut *sink);
        let ram = hpmp_core::PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);
        let mut monitor =
            SecureMonitor::boot(&mut machine, TeeFlavor::PenglaiHpmp, ram).expect("monitor boots");
        let (_, cycles) = monitor
            .alloc_region(&mut machine, DomainId::HOST, mib << 20, GmsLabel::Slow)
            .expect("alloc");
        r.row(&[mib.to_string(), cycles.to_string()]);
        metrics = metrics.merge(&machine.metrics_snapshot());
    }
    r.note("paper: grows with size; 32 MiB-aligned regions collapse to one huge pmpte");
    r.print();
    metrics
}

fn switch_cost<S: TraceSink>(
    flavor: TeeFlavor,
    domains: u32,
    sink: &mut S,
) -> Result<u64, MonitorError> {
    let mut machine = hpmp_machine::Machine::with_sink(MachineConfig::rocket(), sink);
    let ram = hpmp_core::PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);
    let mut monitor = SecureMonitor::boot(&mut machine, flavor, ram).expect("monitor boots");
    let mut first = None;
    for _ in 0..domains.saturating_sub(1) {
        let (id, _) = monitor.create_domain(&mut machine, 1 << 20, GmsLabel::Slow)?;
        first.get_or_insert(id);
    }
    let target = first.expect("at least two domains");
    monitor.switch_to(&mut machine, target)?;
    monitor.switch_to(&mut machine, DomainId::HOST)?;
    monitor.switch_to(&mut machine, target)
}

fn region_cycle_series<S: TraceSink>(
    flavor: TeeFlavor,
    count: usize,
    sink: &mut S,
) -> (Vec<u64>, Vec<u64>) {
    let mut machine = hpmp_machine::Machine::with_sink(MachineConfig::rocket(), sink);
    let ram = hpmp_core::PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);
    let mut monitor = SecureMonitor::boot(&mut machine, flavor, ram).expect("monitor boots");
    let mut allocs = Vec::new();
    let mut bases = Vec::new();
    for _ in 0..count {
        match monitor.alloc_region(&mut machine, DomainId::HOST, 64 * 1024, GmsLabel::Slow) {
            Ok((region, cycles)) => {
                allocs.push(cycles);
                bases.push(region.base);
            }
            Err(MonitorError::OutOfPmpEntries) => break,
            Err(e) => panic!("unexpected monitor error: {e}"),
        }
    }
    let mut frees = Vec::new();
    for base in bases {
        frees.push(
            monitor
                .free_region(&mut machine, DomainId::HOST, base)
                .expect("free"),
        );
    }
    (allocs, frees)
}

/// Figure 15: fragmentation.
fn fig15() {
    let mut r = Report::new(
        "Figure 15: fragmentation, total latency of 24 fresh-page touches (Rocket, cycles)",
        &["PA / VA", "PMP", "PMPT", "HPMP"],
    );
    for pa in [frag::PaLayout::Contiguous, frag::PaLayout::Fragmented] {
        for va in [frag::VaLayout::Contiguous, frag::VaLayout::Fragmented] {
            let mut row = vec![format!("{pa} / {va}")];
            for scheme in [
                IsolationScheme::Pmp,
                IsolationScheme::PmpTable,
                IsolationScheme::Hpmp,
            ] {
                row.push(
                    frag::measure(CoreKind::Rocket, scheme, va, pa, PmptwCacheConfig::DISABLED)
                        .to_string(),
                );
            }
            r.row(&row);
        }
    }
    r.note("paper: fragmented worst; HPMP < PMPT in every case");
    r.print();

    // §8.8's virtualized cases (3)/(4): fragmented host virtual pages
    // backing the guest, with contiguous vs fragmented physical frames.
    let mut r = Report::new(
        "Figure 15 (virt cases 3/4): 24 fresh guest-page touches (Rocket, cycles)",
        &["Backing", "PMP", "PMPT", "HPMP", "HPMP-GPT"],
    );
    for backing in [frag::PaLayout::Contiguous, frag::PaLayout::Fragmented] {
        let mut row = vec![backing.to_string()];
        for scheme in [
            VirtScheme::Pmp,
            VirtScheme::PmpTable,
            VirtScheme::Hpmp,
            VirtScheme::HpmpGpt,
        ] {
            row.push(frag::measure_virt(CoreKind::Rocket, scheme, backing).to_string());
        }
        r.row(&row);
    }
    r.note("paper cases (3)/(4): fragmented PTEs in the virtualized environment");
    r.print();
}

/// Figure 16: PMPTW-Cache.
fn fig16() {
    let mut r = Report::new(
        "Figure 16: permission-table caching (Rocket, cycles; fragmented-PA case)",
        &[
            "VA layout",
            "PMPT",
            "PMPT-Cache",
            "HPMP",
            "HPMP-Cache",
            "PMP",
        ],
    );
    for va in [frag::VaLayout::Contiguous, frag::VaLayout::Fragmented] {
        let pa = frag::PaLayout::Contiguous;
        let m = |scheme, cache| frag::measure(CoreKind::Rocket, scheme, va, pa, cache);
        r.row(&[
            va.to_string(),
            m(IsolationScheme::PmpTable, PmptwCacheConfig::DISABLED).to_string(),
            m(IsolationScheme::PmpTable, PmptwCacheConfig::ENABLED_8).to_string(),
            m(IsolationScheme::Hpmp, PmptwCacheConfig::DISABLED).to_string(),
            m(IsolationScheme::Hpmp, PmptwCacheConfig::ENABLED_8).to_string(),
            m(IsolationScheme::Pmp, PmptwCacheConfig::DISABLED).to_string(),
        ]);
    }
    r.note("paper: cache helps PMPT most on fragmented VA; HPMP-Cache is best overall");
    r.print();
}

/// Figure 17: FunctionBench with 8 vs 32 PWC entries (Rocket).
fn fig17<S: TraceSink>(sink: &mut S) -> Snapshot {
    let mut metrics = Snapshot::new();
    let mut r = Report::new(
        "Figure 17: FunctionBench with PWC sizes (Rocket), normalised to PMP(8)",
        &[
            "Function", "PMP(8)", "PMP(32)", "PMPT(8)", "PMPT(32)", "HPMP(8)", "HPMP(32)",
        ],
    );
    let n = 2;
    let flavors = [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ];
    for function in serverless::FUNCTIONS {
        let mut values = Vec::new();
        for flavor in flavors {
            for entries in [8usize, 32] {
                let mut config = MachineConfig::rocket();
                config.pwc.entries = entries;
                let mut tee = hpmp_workloads::TeeBench::boot_with_sink(flavor, config, &mut *sink);
                values.push(serverless::measure_function_on(&mut tee, function, n).expect("run"));
                metrics = metrics.merge(&tee.machine.metrics_snapshot());
            }
        }
        let base = values[0];
        let mut row = vec![function.to_string()];
        row.extend(values.iter().map(|&v| pct(v, base)));
        r.row(&row);
    }
    r.note("paper: larger PWC helps only marginally; HPMP(8) still beats PMPT(32)");
    r.print();
    metrics
}

/// Table 4: hardware resource costs (analytic substitute).
fn table4() {
    let mut r = Report::new(
        "Table 4: FPGA resource costs (ANALYTIC MODEL - see DESIGN.md substitution)",
        &[
            "Resource", "Baseline", "HPMP", "Cost", "Base+H", "HPMP+H", "Cost",
        ],
    );
    let plain = estimate_resources(&HardwareParams::prototype());
    let hyp = estimate_resources(&HardwareParams::prototype_hypervisor());
    r.row(&[
        "LUT".into(),
        plain.baseline_lut.to_string(),
        plain.hpmp_lut.to_string(),
        format!("{:.2}%", plain.lut_cost_percent()),
        hyp.baseline_lut.to_string(),
        hyp.hpmp_lut.to_string(),
        format!("{:.2}%", hyp.lut_cost_percent()),
    ]);
    r.row(&[
        "FF".into(),
        plain.baseline_ff.to_string(),
        plain.hpmp_ff.to_string(),
        format!("{:.2}%", plain.ff_cost_percent()),
        hyp.baseline_ff.to_string(),
        hyp.hpmp_ff.to_string(),
        format!("{:.2}%", hyp.ff_cost_percent()),
    ]);
    r.row(&[
        "BRAM/DSP delta".into(),
        "-".into(),
        plain.bram_delta.to_string(),
        "0.00%".into(),
        "-".into(),
        hyp.dsp_delta.to_string(),
        "0.00%".into(),
    ]);
    r.note("paper: 0.94%/1.18% LUT, 0.16%/0.78% FF, zero BRAM/DSP");
    r.print();

    // Also exercise the monitor cost constants so they appear in output.
    let _ = cost::TRAP_ROUND_TRIP;
}

/// Extension experiment: the §2.2 depth claim ("even more serious for
/// 4-level or 5-level page table architectures") swept across Sv39/48/57.
fn svsweep<S: TraceSink>(sink: &mut S) -> Snapshot {
    use hpmp_machine::SystemBuilder;
    use hpmp_memsim::{Perms, PrivMode, VirtAddr};
    use hpmp_paging::TranslationMode;
    let mut metrics = Snapshot::new();
    let mut r = Report::new(
        "Depth sweep: cold TLB-miss references and cycles by translation mode (Rocket)",
        &[
            "Mode",
            "PMP refs",
            "PMPT refs",
            "HPMP refs",
            "PMP cyc",
            "PMPT cyc",
            "HPMP cyc",
        ],
    );
    for mode in [
        TranslationMode::Sv39,
        TranslationMode::Sv48,
        TranslationMode::Sv57,
    ] {
        let mut refs = Vec::new();
        let mut cycles = Vec::new();
        for scheme in SCHEMES_ORDERED {
            let mut sys = SystemBuilder::new(MachineConfig::rocket(), scheme)
                .translation_mode(mode)
                .sink(&mut *sink)
                .build();
            sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
            sys.sync_pt_grants();
            sys.machine.flush_microarch();
            let out = sys
                .machine
                .access(
                    &sys.space,
                    VirtAddr::new(0x10_0000),
                    AccessKind::Read,
                    PrivMode::Supervisor,
                )
                .expect("mapped");
            refs.push(out.refs.total());
            cycles.push(out.cycles);
            metrics = metrics.merge(&sys.machine.metrics_snapshot());
        }
        r.row(&[
            mode.to_string(),
            refs[0].to_string(),
            refs[1].to_string(),
            refs[2].to_string(),
            cycles[0].to_string(),
            cycles[1].to_string(),
            cycles[2].to_string(),
        ]);
    }
    r.note("paper §2.2: the extra dimension worsens with depth; HPMP saving grows with it");
    r.print();
    metrics
}

/// Extension experiment: application-level throughput in a guest VM
/// (sustained key-value probes over the 3-D walk).
fn virtapp<S: TraceSink>(sink: &mut S) -> Snapshot {
    use hpmp_workloads::virt_app::{run_guest_kv, run_guest_kv_with_sink, GUEST_DATASET_PAGES};
    let mut metrics = Snapshot::new();
    let mut r = Report::new(
        "Guest key-value workload (Rocket): cycles per request over the 3-D walk",
        &["Scheme", "cycles/req", "vs PMP"],
    );
    let requests = 600;
    let base = run_guest_kv(
        CoreKind::Rocket,
        VirtScheme::Pmp,
        GUEST_DATASET_PAGES,
        requests,
    )
    .cycles_per_request();
    for scheme in [
        VirtScheme::Pmp,
        VirtScheme::PmpTable,
        VirtScheme::Hpmp,
        VirtScheme::HpmpGpt,
    ] {
        let (out, snap) = run_guest_kv_with_sink(
            CoreKind::Rocket,
            scheme,
            GUEST_DATASET_PAGES,
            requests,
            &mut *sink,
        );
        metrics = metrics.merge(&snap);
        let cpr = out.cycles_per_request();
        r.row(&[scheme.to_string(), format!("{cpr:.0}"), pct_f(cpr / base)]);
    }
    r.note("extension of §8.6: the Figure-13 ordering holds under sustained guest load");
    r.print();
    metrics
}

/// Extension experiment: interaction with Penglai's memory-encryption
/// engine. The engine taxes every DRAM access, and the permission table's
/// extra references are exactly the kind of cold pointer-chase traffic that
/// reaches DRAM — so encryption *amplifies* the table's overhead, and
/// HPMP's savings grow in absolute terms.
fn encryption<S: TraceSink>(sink: &mut S) -> Snapshot {
    use hpmp_machine::SystemBuilder;
    use hpmp_memsim::{Perms, PrivMode, VirtAddr};
    let mut metrics = Snapshot::new();
    let mut r = Report::new(
        "Memory-encryption interaction (Rocket): cold TLB-miss ld, cycles",
        &["Engine", "PMP", "PMPT", "HPMP", "PMPT-PMP gap"],
    );
    for (name, latency) in [("off", 0u64), ("AES-XTS 26c", 26), ("AES-XTS 40c", 40)] {
        let mut cycles = Vec::new();
        for scheme in SCHEMES_ORDERED {
            let mut config = MachineConfig::rocket();
            config.mem = config.mem.with_encryption(latency);
            let mut sys = SystemBuilder::new(config, scheme).sink(&mut *sink).build();
            sys.map_range(VirtAddr::new(0x10_0000), 1, Perms::RW);
            sys.sync_pt_grants();
            sys.machine.flush_microarch();
            cycles.push(
                sys.machine
                    .access(
                        &sys.space,
                        VirtAddr::new(0x10_0000),
                        AccessKind::Read,
                        PrivMode::Supervisor,
                    )
                    .expect("mapped")
                    .cycles,
            );
            metrics = metrics.merge(&sys.machine.metrics_snapshot());
        }
        r.row(&[
            name.to_string(),
            cycles[0].to_string(),
            cycles[1].to_string(),
            cycles[2].to_string(),
            (cycles[1] - cycles[0]).to_string(),
        ]);
    }
    r.note("encryption widens the table-vs-segment gap: every extra reference pays the engine");
    r.print();
    metrics
}

/// Extension experiment: the intro's 100-instance scalability claim.
fn tenancy<S: TraceSink>(sink: &mut S) -> Snapshot {
    use hpmp_workloads::multi_tenant::run_tenancy_with_sink;
    let mut metrics = Snapshot::new();
    let mut r = Report::new(
        "Multi-tenant packing (Rocket): 100 requested tenants",
        &["Flavour", "tenants", "entry wall", "cycles/request"],
    );
    for flavor in [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ] {
        let (out, snap) =
            run_tenancy_with_sink(flavor, CoreKind::Rocket, 100, 2, &mut *sink).expect("tenancy");
        metrics = metrics.merge(&snap);
        r.row(&[
            flavor.to_string(),
            out.tenants.to_string(),
            if out.hit_entry_wall {
                "yes".into()
            } else {
                "no".into()
            },
            format!("{:.0}", out.cycles_per_request()),
        ]);
    }
    r.note("intro claim: >100 instances per node; PMP walls below 16 domains");
    r.print();
    metrics
}

/// Extension experiment X9: multi-hart scaling. One tenant enclave per
/// hart over a shared monitor, the churny `tenancy` SMP shape, swept over
/// 1/2/4/8 harts — every GMS change on one hart shoots down all the
/// others, so the interesting number is how much of the total the remote
/// fence/reprogram stalls eat as the hart count grows. Untraced: the run
/// is single-threaded and seeded, so it is deterministic regardless.
///
/// When `--snapshot-interval`/`--spans-out` are given, the 4-hart HPMP
/// run additionally records time-resolved telemetry — timeline slices and
/// monitor-operation spans — written directly to the requested paths (the
/// run is internally deterministic, so the bytes don't depend on `--jobs`).
/// `backend` selects the SMP execution backend for every run in the
/// sweep; the threaded backend's snapshots are byte-identical to the
/// deterministic ones (enforced by the conformance battery), so the table
/// and artifacts do not change — only wall-clock does.
fn multihart(telemetry: &TelemetryOptions, backend: hpmp_machine::ExecBackend) -> Snapshot {
    use hpmp_workloads::smp::{run_smp_backend, run_smp_telemetry, spec_for, SmpTelemetrySpec};
    let run_smp =
        |flavor, core, harts, seed, spec| run_smp_backend(flavor, core, harts, seed, spec, backend);
    let spec = spec_for("tenancy").expect("tenancy has an SMP shape");
    let seed = 0xA11CE;
    let mut metrics = Snapshot::new();
    let mut r = Report::new(
        "SMP scaling (Rocket): tenancy shape, cross-hart shootdown overhead",
        &[
            "Harts",
            "PMPT cycles",
            "HPMP cycles",
            "HPMP IPIs",
            "HPMP stall cyc",
            "stall share",
        ],
    );
    for harts in [1usize, 2, 4, 8] {
        let (pmpt, _) =
            run_smp(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, harts, seed, spec).expect("pmpt");
        let (hpmp, snap) = if harts == 4 && telemetry.requested() {
            let machines = (0..harts)
                .map(|_| {
                    hpmp_machine::Machine::new(hpmp_workloads::fixture::config_for(
                        CoreKind::Rocket,
                    ))
                })
                .collect();
            let telemetry_spec = SmpTelemetrySpec {
                snapshot_interval: telemetry.snapshot_interval,
                span_capacity: telemetry
                    .spans_out
                    .as_ref()
                    .map(|_| SmpTelemetrySpec::DEFAULT_SPAN_CAPACITY),
            };
            let (outcome, snap, _, recorded) =
                run_smp_telemetry(machines, TeeFlavor::PenglaiHpmp, seed, spec, telemetry_spec)
                    .expect("hpmp");
            if let (Some(timeline), Some(interval)) =
                (&recorded.timeline, telemetry.snapshot_interval)
            {
                let path = telemetry
                    .timeline_out
                    .as_deref()
                    .unwrap_or("timeline.jsonl");
                let mut bytes = Vec::new();
                timeline
                    .write_jsonl(&mut bytes)
                    .expect("Vec writes cannot fail");
                std::fs::write(path, bytes).expect("timeline artifact");
                eprintln!(
                    "repro: timeline: {} slice(s) every {interval} cycles (4-hart HPMP) -> {path}",
                    timeline.slices().len()
                );
            }
            if let (Some(spans), Some(path)) = (&recorded.spans, &telemetry.spans_out) {
                let mut bytes = Vec::new();
                spans
                    .write_jsonl(&mut bytes)
                    .expect("Vec writes cannot fail");
                std::fs::write(path, bytes).expect("span artifact");
                eprintln!(
                    "repro: spans: {} span(s) ({} dropped, 4-hart HPMP) -> {path}",
                    spans.len(),
                    spans.dropped()
                );
            }
            (outcome, snap)
        } else {
            run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, harts, seed, spec).expect("hpmp")
        };
        let stall: u64 = (0..harts)
            .map(|h| snap.value(&format!("hart.{h}.fence_stall_cycles")))
            .sum();
        metrics = metrics.merge(&snap);
        r.row(&[
            harts.to_string(),
            pmpt.total_cycles.to_string(),
            hpmp.total_cycles.to_string(),
            hpmp.ipis_delivered.to_string(),
            stall.to_string(),
            pct_f(stall as f64 / hpmp.total_cycles as f64),
        ]);
    }
    r.note("IPIs grow ~quadratically with harts, but cheap segment reprograms cap the stall share");
    r.print();
    metrics
}

const SCHEMES_ORDERED: [IsolationScheme; 3] = [
    IsolationScheme::Pmp,
    IsolationScheme::PmpTable,
    IsolationScheme::Hpmp,
];

/// Figure 3: the preview chart (normalised Segment vs Table, avg/worst).
fn fig3() {
    let mut r = Report::new(
        "Figure 3: preview (BOOM), Table normalised to Segment",
        &["Experiment", "Avg", "Worst"],
    );
    // (a) single ld latency across TC1-TC3 (walking cases).
    let rows = figure_10_panel(CoreKind::Boom, AccessKind::Read);
    let ratios: Vec<f64> = rows
        .iter()
        .filter(|row| row.case != TestCase::Tc4)
        .map(|row| row.pmpt as f64 / row.pmp as f64)
        .collect();
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let worst = ratios.iter().cloned().fold(f64::MIN, f64::max);
    r.row(&["ld latency".into(), pct_f(avg), pct_f(worst)]);

    // (b) GAP.
    let graph = gap::default_graph();
    let mut ratios = Vec::new();
    for kernel in gap::GAP_KERNELS {
        let pmp = gap::run_gap(TeeFlavor::PenglaiPmp, CoreKind::Boom, kernel, &graph, 8_000)
            .expect("pmp");
        let pmpt = gap::run_gap(
            TeeFlavor::PenglaiPmpt,
            CoreKind::Boom,
            kernel,
            &graph,
            8_000,
        )
        .expect("pmpt");
        ratios.push(pmpt as f64 / pmp as f64);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let worst = ratios.iter().cloned().fold(f64::MIN, f64::max);
    r.row(&["GAP".into(), pct_f(avg), pct_f(worst)]);

    // (c) serverless.
    let mut ratios = Vec::new();
    for function in serverless::FUNCTIONS {
        let pmp = serverless::measure_function(TeeFlavor::PenglaiPmp, CoreKind::Boom, function, 2)
            .expect("pmp");
        let pmpt =
            serverless::measure_function(TeeFlavor::PenglaiPmpt, CoreKind::Boom, function, 2)
                .expect("pmpt");
        ratios.push(pmpt as f64 / pmp as f64);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let worst = ratios.iter().cloned().fold(f64::MIN, f64::max);
    r.row(&["Serverless".into(), pct_f(avg), pct_f(worst)]);

    // (d) Redis RPS (lower is the table's loss).
    let mut ratios = Vec::new();
    for cmd in [
        redis::RedisCommand::Get,
        redis::RedisCommand::Set,
        redis::RedisCommand::Lrange100,
        redis::RedisCommand::Mset,
    ] {
        let mut pmp_srv = redis::RedisServer::start(
            TeeFlavor::PenglaiPmp,
            CoreKind::Boom,
            redis::DEFAULT_DATASET_PAGES,
        )
        .expect("pmp");
        let mut pmpt_srv = redis::RedisServer::start(
            TeeFlavor::PenglaiPmpt,
            CoreKind::Boom,
            redis::DEFAULT_DATASET_PAGES,
        )
        .expect("pmpt");
        let pmp = pmp_srv.rps(cmd, 150).expect("pmp");
        let pmpt = pmpt_srv.rps(cmd, 150).expect("pmpt");
        ratios.push(pmpt / pmp);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let worst = ratios.iter().cloned().fold(f64::MAX, f64::min);
    r.row(&["Redis RPS".into(), pct_f(avg), pct_f(worst)]);
    r.note("paper: ld +63.4% avg/+91.1% worst; GAP +5.2%/+9.6%; RPS lower is worse");
    r.print();

    let _ = SCHEMES;
}
