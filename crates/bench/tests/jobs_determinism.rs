//! The `--jobs N` thread pool must be invisible in every output: stdout,
//! the metrics snapshot, the bench report, and the trace stream are merged
//! in fixed experiment order, so a parallel run is byte-identical to the
//! serial one. This drives the real `repro` binary on a fast experiment
//! subset and compares all four artifacts across thread counts.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Fast experiments spanning the three accounting owners: `fig2` (bare
/// Machine walks), `fig13` (VirtMachine nested walks), `svsweep` (penglai
/// monitor + machine).
const SUBSET: [&str; 3] = ["fig2", "fig13", "svsweep"];

struct RunOutput {
    stdout: Vec<u8>,
    metrics: Vec<u8>,
    bench: Vec<u8>,
    trace: Vec<u8>,
}

/// Runs `repro` in its own scratch directory with *relative* artifact
/// paths, so stdout (which echoes the paths) is comparable across runs.
fn run_repro(jobs: usize) -> RunOutput {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "hpmp-jobs-determinism-{}-j{jobs}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");

    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(SUBSET)
        .args(["--jobs", &jobs.to_string()])
        .args(["--metrics-out", "metrics.json"])
        .args(["--bench-out", "bench.json"])
        .args(["--trace-out", "trace.jsonl"])
        .current_dir(&dir)
        .output()
        .expect("spawn repro");
    assert!(
        output.status.success(),
        "repro --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let read = |name: &str| fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let result = RunOutput {
        stdout: output.stdout,
        metrics: read("metrics.json"),
        bench: read("bench.json"),
        trace: read("trace.jsonl"),
    };
    let _ = fs::remove_dir_all(&dir);
    result
}

/// Runs `hpmpsim --harts 4` over two workloads with all artifact outputs,
/// in a scratch directory with relative paths.
fn run_hpmpsim_smp(jobs: usize) -> RunOutput {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "hpmp-smp-determinism-{}-j{jobs}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");

    let output = Command::new(env!("CARGO_BIN_EXE_hpmpsim"))
        .args(["--harts", "4"])
        .args(["--workload", "tenancy,lmbench"])
        .args(["--flavor", "hpmp"])
        .args(["--jobs", &jobs.to_string()])
        .args(["--metrics-out", "metrics.json"])
        .args(["--bench-out", "bench.json"])
        .args(["--trace-out", "trace.jsonl"])
        .current_dir(&dir)
        .output()
        .expect("spawn hpmpsim");
    assert!(
        output.status.success(),
        "hpmpsim --harts 4 --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let read = |name: &str| fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let result = RunOutput {
        stdout: output.stdout,
        metrics: read("metrics.json"),
        bench: read("bench.json"),
        trace: read("trace.jsonl"),
    };
    let _ = fs::remove_dir_all(&dir);
    result
}

/// The multi-hart path adds a second source of would-be nondeterminism —
/// the hart interleaving — on top of the worker pool. Both are seeded, so
/// `hpmpsim --harts 4` must produce byte-identical stdout, metrics, bench
/// report and trace at any `--jobs` level (the acceptance bar for the SMP
/// runner).
#[test]
fn multihart_run_is_byte_identical_across_jobs() {
    let serial = run_hpmpsim_smp(1);
    let stdout = String::from_utf8_lossy(&serial.stdout);
    assert!(stdout.contains("harts        : 4"), "{stdout}");
    assert!(
        stdout.contains("hart 3"),
        "per-hart lines missing: {stdout}"
    );
    // Per-hart shootdown counters made it into the metrics export (the
    // versioned JSON nests the dot-separated `hart.<i>.*` paths).
    let metrics = String::from_utf8_lossy(&serial.metrics);
    for counter in [
        "\"hart\"",
        "\"smp\"",
        "\"ipis_sent\"",
        "\"ipis_received\"",
        "\"shootdown_cycles\"",
        "\"fence_stall_cycles\"",
        "\"ipis_delivered\"",
    ] {
        assert!(metrics.contains(counter), "{counter} missing from metrics");
    }
    // Trace events are hart-stamped.
    let trace = String::from_utf8_lossy(&serial.trace);
    assert!(trace.contains("\"hart\":3"), "hart 3 events missing");

    let parallel = run_hpmpsim_smp(2);
    assert_eq!(serial.stdout, parallel.stdout, "stdout differs");
    assert_eq!(serial.metrics, parallel.metrics, "metrics differ");
    assert_eq!(serial.bench, parallel.bench, "bench report differs");
    assert_eq!(serial.trace, parallel.trace, "trace stream differs");
}

#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let serial = run_repro(1);
    assert!(!serial.metrics.is_empty() && !serial.bench.is_empty());
    assert!(
        serial.trace.iter().filter(|&&b| b == b'\n').count() > 1,
        "trace should have a schema header plus events"
    );

    for jobs in [2, 4] {
        let parallel = run_repro(jobs);
        assert_eq!(
            serial.stdout, parallel.stdout,
            "stdout differs at --jobs {jobs}"
        );
        assert_eq!(
            serial.metrics, parallel.metrics,
            "metrics snapshot differs at --jobs {jobs}"
        );
        assert_eq!(
            serial.bench, parallel.bench,
            "bench report differs at --jobs {jobs}"
        );
        assert_eq!(
            serial.trace, parallel.trace,
            "trace stream differs at --jobs {jobs}"
        );
    }
}
