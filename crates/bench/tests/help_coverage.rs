//! Usage-text drift guard: every flag a binary's parser accepts must
//! appear in its `--help` output, and unknown flags/experiments must be
//! rejected loudly (exit 2) instead of being silently swallowed — the
//! failure mode that let the usage text rot behind the parsers in the
//! first place.

use std::process::Command;

/// Run a binary with `args`, returning (exit code, stderr).
fn run(bin: &str, args: &[&str]) -> (i32, String) {
    let output = Command::new(bin).args(args).output().expect("spawn binary");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Every flag `hpmpsim`'s parser matches on. Adding a parser arm without
/// updating `usage()` (or this list) fails the test.
const HPMPSIM_FLAGS: [&str; 23] = [
    "--flavor",
    "--core",
    "--workload",
    "--scenario",
    "--churn-ops",
    "--harts",
    "--backend",
    "--jobs",
    "--pwc",
    "--pmptw-cache",
    "--no-tlb-inlining",
    "--encryption",
    "--epmp",
    "--trace-out",
    "--metrics-out",
    "--bench-out",
    "--snapshot-interval",
    "--timeline-out",
    "--spans-out",
    "--fault-campaign",
    "--fault-seed",
    "--campaign-out",
    "--host-profile-out",
];

/// Every flag `repro`'s parser matches on.
const REPRO_FLAGS: [&str; 10] = [
    "--serial",
    "--jobs",
    "--backend",
    "--trace-out",
    "--metrics-out",
    "--bench-out",
    "--snapshot-interval",
    "--timeline-out",
    "--spans-out",
    "--host-profile-out",
];

/// Every experiment `repro` dispatches on (sans the `all` alias).
const REPRO_EXPERIMENTS: [&str; 19] = [
    "table1",
    "fig2",
    "fig10",
    "table3",
    "fig11",
    "fig12ac",
    "fig12de",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "table4",
    "fig3",
    "svsweep",
    "virtapp",
    "tenancy",
    "encryption",
    "multihart",
];

#[test]
fn hpmpsim_help_lists_every_flag() {
    let (code, help) = run(env!("CARGO_BIN_EXE_hpmpsim"), &["--help"]);
    assert_eq!(code, 2, "--help exits with the usage status");
    for flag in HPMPSIM_FLAGS {
        assert!(help.contains(flag), "{flag} missing from hpmpsim --help");
    }
}

#[test]
fn repro_help_lists_every_flag_and_experiment() {
    let (code, help) = run(env!("CARGO_BIN_EXE_repro"), &["--help"]);
    assert_eq!(code, 2, "--help exits with the usage status");
    for flag in REPRO_FLAGS {
        assert!(help.contains(flag), "{flag} missing from repro --help");
    }
    for experiment in REPRO_EXPERIMENTS {
        assert!(
            help.contains(experiment),
            "{experiment} missing from repro --help"
        );
    }
    assert!(help.contains("all"), "the all alias must be documented");
}

#[test]
fn hpmpsim_rejects_unknown_backends() {
    let (code, err) = run(
        env!("CARGO_BIN_EXE_hpmpsim"),
        &["--harts", "2", "--backend", "bogus"],
    );
    assert_eq!(code, 2);
    assert!(err.contains("bogus"), "{err}");
    assert!(
        err.contains("threaded"),
        "accepted names must be listed: {err}"
    );
}

#[test]
fn hpmpsim_rejects_threaded_telemetry_and_single_hart() {
    // Timelines and spans live on the serial simulated clock.
    let (code, err) = run(
        env!("CARGO_BIN_EXE_hpmpsim"),
        &[
            "--harts",
            "2",
            "--backend",
            "threaded",
            "--workload",
            "tenancy",
            "--snapshot-interval",
            "1000",
        ],
    );
    assert_eq!(code, 2);
    assert!(err.contains("deterministic"), "{err}");
    // The threaded backend needs something to parallelize over.
    let (code, err) = run(env!("CARGO_BIN_EXE_hpmpsim"), &["--backend", "threaded"]);
    assert_eq!(code, 2);
    assert!(err.contains("--harts"), "{err}");
}

#[test]
fn hpmpsim_rejects_bad_scenario_combinations() {
    let (code, err) = run(env!("CARGO_BIN_EXE_hpmpsim"), &["--scenario", "bogus"]);
    assert_eq!(code, 2);
    assert!(err.contains("bogus"), "{err}");
    // --churn-ops only means something inside the aging scenario.
    let (code, err) = run(env!("CARGO_BIN_EXE_hpmpsim"), &["--churn-ops", "10"]);
    assert_eq!(code, 2);
    assert!(err.contains("--scenario"), "{err}");
    // Timeline artifacts live on the workload path, not the scenario path.
    let (code, err) = run(
        env!("CARGO_BIN_EXE_hpmpsim"),
        &[
            "--scenario",
            "aging",
            "--harts",
            "2",
            "--snapshot-interval",
            "1000",
        ],
    );
    assert_eq!(code, 2);
    assert!(err.contains("aging"), "{err}");
    // Span attribution needs the serial simulated clock.
    let (code, err) = run(
        env!("CARGO_BIN_EXE_hpmpsim"),
        &[
            "--scenario",
            "aging",
            "--harts",
            "2",
            "--backend",
            "threaded",
            "--spans-out",
            "s.jsonl",
        ],
    );
    assert_eq!(code, 2);
    assert!(err.contains("deterministic"), "{err}");
}

#[test]
fn repro_rejects_unknown_backends() {
    let (code, err) = run(env!("CARGO_BIN_EXE_repro"), &["--backend", "bogus"]);
    assert_eq!(code, 2);
    assert!(err.contains("bogus"), "{err}");
}

#[test]
fn hpmpsim_rejects_unknown_flags() {
    let (code, err) = run(env!("CARGO_BIN_EXE_hpmpsim"), &["--no-such-flag"]);
    assert_eq!(code, 2);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn repro_rejects_unknown_flags() {
    let (code, err) = run(env!("CARGO_BIN_EXE_repro"), &["--no-such-flag"]);
    assert_eq!(code, 2);
    assert!(err.contains("--no-such-flag"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn repro_rejects_unknown_experiments() {
    // Before the usage fix a typo here silently ran *nothing* — it has to
    // be a hard error.
    let (code, err) = run(env!("CARGO_BIN_EXE_repro"), &["fig99"]);
    assert_eq!(code, 2);
    assert!(err.contains("fig99"), "{err}");
}
