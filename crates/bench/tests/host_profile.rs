//! The dual-clock quarantine (DESIGN.md §10): `--host-profile-out` is
//! host-clock data, so turning it on must not perturb a single byte of
//! any simulated artifact — stdout, metrics, bench report, trace. These
//! tests run the real binaries with profiling on and off and compare.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use hpmp_trace::{BenchReport, HostProfile};

struct RunOutput {
    stdout: Vec<u8>,
    metrics: Vec<u8>,
    bench: Vec<u8>,
    trace: Vec<u8>,
    profile: Option<String>,
}

/// Run `bin` in a scratch directory with relative artifact paths, with or
/// without `--host-profile-out`.
fn run(bin: &str, tag: &str, base_args: &[&str], profile: bool) -> RunOutput {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "hpmp-host-profile-{tag}-{}-p{}",
        std::process::id(),
        u8::from(profile)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");

    let mut cmd = Command::new(bin);
    cmd.args(base_args)
        .args(["--metrics-out", "metrics.json"])
        .args(["--bench-out", "bench.json"])
        .args(["--trace-out", "trace.jsonl"])
        .current_dir(&dir);
    if profile {
        cmd.args(["--host-profile-out", "host.json"]);
    }
    let output = cmd.output().expect("spawn binary");
    assert!(
        output.status.success(),
        "{bin} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    if profile {
        // The headline is stderr-only, never stdout.
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("walks/sec"), "headline missing: {stderr}");
    }

    let read = |name: &str| fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let result = RunOutput {
        stdout: output.stdout,
        metrics: read("metrics.json"),
        bench: read("bench.json"),
        trace: read("trace.jsonl"),
        profile: profile.then(|| String::from_utf8(read("host.json")).expect("utf-8 profile")),
    };
    let _ = fs::remove_dir_all(&dir);
    result
}

fn assert_quarantined(off: &RunOutput, on: &RunOutput) {
    assert_eq!(off.stdout, on.stdout, "stdout differs with profiling on");
    assert_eq!(off.metrics, on.metrics, "metrics differ with profiling on");
    assert_eq!(
        off.bench, on.bench,
        "bench report differs with profiling on"
    );
    assert_eq!(off.trace, on.trace, "trace differs with profiling on");
}

/// Parse the profile artifact and cross-check its deterministic half
/// (names, walk counts) against the simulated bench report.
fn check_profile(run: &RunOutput, harness: &str) {
    let profile =
        HostProfile::from_json(run.profile.as_deref().expect("profile requested")).expect("parses");
    assert_eq!(profile.name, harness);
    assert!(profile.total_wall_ns() > 0, "phases must be timed");
    assert!(
        profile.phases.contains_key("run") && profile.phases.contains_key("write"),
        "phase rows missing: {:?}",
        profile.phases
    );

    let report = BenchReport::from_json(&String::from_utf8(run.bench.clone()).unwrap()).unwrap();
    for record in &report.experiments {
        let host = profile
            .experiments
            .iter()
            .find(|e| e.name == record.name)
            .unwrap_or_else(|| panic!("{} missing from the host profile", record.name));
        // Walk counts are simulated-clock data and must agree exactly;
        // wall_ns is host-clock data and only has to exist.
        assert_eq!(
            host.walks, record.walks,
            "walks disagree for {}",
            record.name
        );
    }
}

#[test]
fn repro_profile_never_perturbs_simulated_artifacts() {
    let args = ["fig2", "svsweep", "--jobs", "2"];
    let off = run(env!("CARGO_BIN_EXE_repro"), "repro", &args, false);
    let on = run(env!("CARGO_BIN_EXE_repro"), "repro", &args, true);
    assert_quarantined(&off, &on);
    check_profile(&on, "repro");
}

#[test]
fn hpmpsim_smp_profile_never_perturbs_simulated_artifacts() {
    let args = [
        "--harts",
        "4",
        "--workload",
        "tenancy,lmbench",
        "--flavor",
        "hpmp",
        "--jobs",
        "2",
    ];
    let off = run(env!("CARGO_BIN_EXE_hpmpsim"), "hpmpsim", &args, false);
    let on = run(env!("CARGO_BIN_EXE_hpmpsim"), "hpmpsim", &args, true);
    assert_quarantined(&off, &on);
    check_profile(&on, "hpmpsim");
}
