//! Criterion bench for Figure 17: FunctionBench with 8 vs 32 PWC entries.

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_machine::MachineConfig;
use hpmp_penglai::TeeFlavor;
use hpmp_workloads::serverless::{invoke, Function};
use hpmp_workloads::TeeBench;
use std::time::Duration;

fn fig17(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_pwc");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for flavor in [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ] {
        for pwc_entries in [8usize, 32] {
            let id = BenchmarkId::new(flavor.to_string(), format!("pwc{pwc_entries}"));
            group.bench_function(id, |b| {
                let mut config = MachineConfig::rocket();
                config.pwc.entries = pwc_entries;
                let mut tee = TeeBench::boot_with_config(flavor, config);
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    invoke(&mut tee, Function::Dd, seed).expect("invocation")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig17);
criterion_main!(benches);
