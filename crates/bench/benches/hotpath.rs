//! Microbenches for the simulator's per-access hot path: flat page-directory
//! reads/writes, TLB/PWC/PMPTW-cache lookups, and interned-counter bumps —
//! plus an end-to-end page-walk sweep whose throughput declaration turns
//! the timing into the suite's walks-per-second headline (printed to
//! stderr after the run).
//!
//! These are the operations every simulated memory reference pays, so their
//! per-op cost bounds full-experiment wall clock. Emit a machine-readable
//! report for `hpmp-analyze gate` with:
//!
//! ```text
//! cargo bench --bench hotpath -- --bench-out BENCH_hotpath.json
//! ```

use hpmp_bench::{criterion_group, criterion_main, Criterion, Throughput};
use hpmp_core::{LeafPmpte, PmptwCache, PmptwCacheConfig};
use hpmp_machine::{IsolationScheme, MachineConfig, SystemBuilder};
use hpmp_memsim::{AccessKind, Perms, PhysAddr, PhysMem, PrivMode, VirtAddr, PAGE_SIZE};
use hpmp_paging::{Tlb, TlbConfig, TlbEntry, TranslationMode, WalkCache, WalkCacheConfig};
use hpmp_trace::{walks_in_snapshot, MetricsRegistry};
use std::hint::black_box;

/// Operations per timed iteration, so per-op noise amortises.
const OPS: u64 = 1024;

const RAM_BASE: u64 = 0x8000_0000;

fn physmem(c: &mut Criterion) {
    let mut group = c.benchmark_group("physmem");
    group.sample_size(200);

    // Pages spread over several directory chunks, as a walk's pointer
    // chases are.
    let stride = 37 * PAGE_SIZE;
    let mut mem = PhysMem::new();
    for i in 0..OPS {
        mem.write_u64(PhysAddr::new(RAM_BASE + i * stride), i);
    }
    group.bench_function("read_u64", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..OPS {
                sum =
                    sum.wrapping_add(mem.read_u64(black_box(PhysAddr::new(RAM_BASE + i * stride))));
            }
            sum
        })
    });
    group.bench_function("write_u64", |b| {
        b.iter(|| {
            for i in 0..OPS {
                mem.write_u64(black_box(PhysAddr::new(RAM_BASE + i * stride + 8)), i);
            }
        })
    });
    group.finish();
}

fn lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    group.sample_size(200);

    let mut tlb = Tlb::new(TlbConfig::default());
    for vpn in 0..32u64 {
        tlb.fill(TlbEntry {
            asid: 1,
            vpn,
            frame: PhysAddr::new(RAM_BASE + vpn * PAGE_SIZE),
            page_perms: Perms::RW,
            isolation_perms: Perms::RWX,
            user: false,
            epoch: 0,
        });
    }
    group.bench_function("tlb_hit", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..OPS {
                let va = VirtAddr::new((i % 32) * PAGE_SIZE);
                hits += tlb.lookup(1, black_box(va)).is_some() as u64;
            }
            hits
        })
    });

    let mut pwc = WalkCache::new(WalkCacheConfig::default());
    for i in 0..8u64 {
        let va = VirtAddr::new(i << 30);
        pwc.insert(
            TranslationMode::Sv39,
            1,
            2,
            va,
            PhysAddr::new(RAM_BASE + i * PAGE_SIZE),
        );
    }
    group.bench_function("pwc_hit", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..OPS {
                let va = VirtAddr::new((i % 8) << 30);
                hits += pwc
                    .lookup(TranslationMode::Sv39, 1, 2, black_box(va))
                    .is_some() as u64;
            }
            hits
        })
    });

    let mut pmptw = PmptwCache::new(PmptwCacheConfig::ENABLED_8);
    for i in 0..8u64 {
        pmptw.insert_leaf(0, i << 16, LeafPmpte::splat(Perms::RW));
    }
    group.bench_function("pmptw_cache_hit", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..OPS {
                hits += pmptw.lookup_leaf(0, black_box((i % 8) << 16)).is_some() as u64;
            }
            hits
        })
    });
    group.finish();
}

fn registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry");
    group.sample_size(200);

    let mut reg = MetricsRegistry::new();
    let id = reg.counter("machine.refs.pt_reads");
    group.bench_function("bump_interned", |b| {
        b.iter(|| {
            for i in 0..OPS {
                reg.bump(black_box(id), i & 1);
            }
            reg.get(id)
        })
    });
    group.bench_function("add_by_name", |b| {
        b.iter(|| {
            for i in 0..OPS {
                reg.add(black_box("machine.refs.pt_reads"), i & 1);
            }
            reg.get(id)
        })
    });
    group.finish();
}

/// End-to-end page walks through a full HPMP machine: a cyclic read sweep
/// over 1024 mapped pages — 32× the TLB — so every access misses and pays
/// the whole walker + isolation-check pipeline. The group declares its
/// measured walk count as throughput, so this benchmark carries the
/// suite's walks-per-second headline.
fn walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk");
    group.sample_size(50);

    let base = 0x10_0000u64;
    let mut sys = SystemBuilder::new(MachineConfig::rocket(), IsolationScheme::Hpmp).build();
    sys.map_range(VirtAddr::new(base), OPS, Perms::RW);
    sys.sync_pt_grants();

    let sweep = |sys: &mut hpmp_machine::System| {
        let mut hits = 0u64;
        for i in 0..OPS {
            let va = VirtAddr::new(base + i * PAGE_SIZE);
            hits += sys
                .machine
                .access(
                    &sys.space,
                    black_box(va),
                    AccessKind::Read,
                    PrivMode::Supervisor,
                )
                .is_ok() as u64;
        }
        hits
    };

    // Calibrate the throughput declaration against the machine's own walk
    // counter rather than assuming one walk per access.
    let before = walks_in_snapshot(&sys.machine.metrics_snapshot());
    assert_eq!(sweep(&mut sys), OPS, "sweep must stay fault-free");
    let walks = walks_in_snapshot(&sys.machine.metrics_snapshot()) - before;
    assert!(walks > 0, "the sweep must page-walk");
    group.throughput(Throughput::Elements(walks));

    group.bench_function("hpmp_read_sweep", |b| b.iter(|| sweep(&mut sys)));
    group.finish();
}

/// End-to-end SMP walk throughput per execution backend: the fixed-seed
/// tenancy shape at 4 harts, once on the deterministic interleaver and
/// once on the threaded backend. Both runs are observably identical (the
/// conformance battery byte-compares their snapshots), so one calibration
/// run fixes the walk count for both throughput declarations, and the
/// `walks_per_sec` ratio between the two records is exactly the threaded
/// backend's speedup. Wall-clock ratio depends on host core count: on a
/// single-core host the hart threads timeslice and the ratio is ~1x or
/// below (thread overhead); the speedup shows from ~4 cores up.
fn smp_backends(c: &mut Criterion) {
    use hpmp_machine::ExecBackend;
    use hpmp_memsim::CoreKind;
    use hpmp_penglai::TeeFlavor;
    use hpmp_workloads::smp::{run_smp_backend, spec_for};

    /// The `hpmpsim` SMP seed, so the bench measures the same run the
    /// conformance battery verifies.
    const SMP_SEED: u64 = 0x4850_4d50;
    const HARTS: usize = 4;

    let mut group = c.benchmark_group("smp");
    group.sample_size(20);
    let spec = spec_for("tenancy").expect("tenancy has an SMP shape");
    let run = |backend| {
        run_smp_backend(
            TeeFlavor::PenglaiHpmp,
            CoreKind::Rocket,
            HARTS,
            SMP_SEED,
            spec,
            backend,
        )
        .expect("tenancy runs clean")
    };

    let (_, snap) = run(ExecBackend::Deterministic);
    let walks = walks_in_snapshot(&snap);
    assert!(walks > 0, "the SMP sweep must page-walk");
    group.throughput(Throughput::Elements(walks));

    group.bench_function("tenancy_x4_deterministic", |b| {
        b.iter(|| black_box(run(ExecBackend::Deterministic)).0.accesses)
    });
    group.bench_function("tenancy_x4_threaded", |b| {
        b.iter(|| black_box(run(ExecBackend::Threaded)).0.accesses)
    });
    group.finish();
}

criterion_group!(benches, physmem, lookups, registry, walks, smp_backends);
criterion_main!(benches);
