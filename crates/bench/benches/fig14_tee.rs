//! Criterion bench for Figure 14: TEE operations — domain switch, region
//! allocation/release, and sized allocations.

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_core::PmpRegion;
use hpmp_machine::{Machine, MachineConfig};
use hpmp_memsim::PhysAddr;
use hpmp_penglai::{DomainId, GmsLabel, SecureMonitor, TeeFlavor};
use std::time::Duration;

const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

fn boot(flavor: TeeFlavor) -> (Machine, SecureMonitor) {
    let mut machine = Machine::new(MachineConfig::rocket());
    let monitor = SecureMonitor::boot(&mut machine, flavor, RAM).expect("monitor boots");
    (machine, monitor)
}

fn fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_tee");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    // (a) Domain switch with many resident domains (HPMP only at 101).
    for (flavor, domains) in [
        (TeeFlavor::PenglaiPmp, 12u32),
        (TeeFlavor::PenglaiHpmp, 12),
        (TeeFlavor::PenglaiHpmp, 101),
    ] {
        let id = BenchmarkId::new(format!("switch/{flavor}"), domains);
        group.bench_function(id, |b| {
            let (mut machine, mut monitor) = boot(flavor);
            let mut first = None;
            for _ in 0..domains - 1 {
                let (d, _) = monitor
                    .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                    .expect("d");
                first.get_or_insert(d);
            }
            let target = first.expect("domains");
            b.iter(|| {
                monitor.switch_to(&mut machine, target).expect("to");
                monitor
                    .switch_to(&mut machine, DomainId::HOST)
                    .expect("back")
            });
        });
    }

    // (b/c) 64 KiB region allocate + free round-trip.
    for flavor in [TeeFlavor::PenglaiPmp, TeeFlavor::PenglaiHpmp] {
        let id = BenchmarkId::new("region_64k_roundtrip", flavor.to_string());
        group.bench_function(id, |b| {
            let (mut machine, mut monitor) = boot(flavor);
            b.iter(|| {
                let (region, _) = monitor
                    .alloc_region(&mut machine, DomainId::HOST, 64 * 1024, GmsLabel::Slow)
                    .expect("alloc");
                monitor
                    .free_region(&mut machine, DomainId::HOST, region.base)
                    .expect("free")
            });
        });
    }

    // (d) Sized allocations under HPMP.
    for mib in [1u64, 8, 32] {
        let id = BenchmarkId::new("alloc_sized", format!("{mib}MiB"));
        group.bench_function(id, |b| {
            b.iter(|| {
                let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
                monitor
                    .alloc_region(&mut machine, DomainId::HOST, mib << 20, GmsLabel::Slow)
                    .expect("alloc")
            });
        });
    }
    group.finish();
}

fn tenancy(c: &mut Criterion) {
    use hpmp_memsim::CoreKind;
    use hpmp_workloads::multi_tenant::run_tenancy;
    let mut group = c.benchmark_group("tenancy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (flavor, tenants) in [
        (TeeFlavor::PenglaiPmp, 12u32),
        (TeeFlavor::PenglaiHpmp, 12),
        (TeeFlavor::PenglaiHpmp, 64),
    ] {
        let id = BenchmarkId::new(flavor.to_string(), tenants);
        group.bench_function(id, |b| {
            b.iter(|| run_tenancy(flavor, CoreKind::Rocket, tenants, 1).expect("tenancy"));
        });
    }
    group.finish();
}

criterion_group!(benches, fig14, tenancy);
criterion_main!(benches);
