//! Criterion bench for Figure 13: virtualized (two-stage) access latency.

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_machine::VirtScheme;
use hpmp_memsim::CoreKind;
use hpmp_workloads::latency::{measure_virt, VIRT_CASES};
use std::time::Duration;

fn fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_virt");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for scheme in [
        VirtScheme::Pmp,
        VirtScheme::PmpTable,
        VirtScheme::Hpmp,
        VirtScheme::HpmpGpt,
    ] {
        for case in VIRT_CASES {
            let id = BenchmarkId::new(scheme.to_string(), case.to_string());
            group.bench_with_input(id, &case, |b, &case| {
                b.iter(|| measure_virt(CoreKind::Rocket, scheme, case));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig13);
criterion_main!(benches);
