//! Criterion bench for Figures 15/16: fragmentation layouts, with and
//! without the PMPTW-Cache.

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_core::PmptwCacheConfig;
use hpmp_machine::IsolationScheme;
use hpmp_memsim::CoreKind;
use hpmp_workloads::frag::{measure, PaLayout, VaLayout};
use std::time::Duration;

fn fig15(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_frag");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for scheme in [
        IsolationScheme::Pmp,
        IsolationScheme::PmpTable,
        IsolationScheme::Hpmp,
    ] {
        for va in [VaLayout::Contiguous, VaLayout::Fragmented] {
            for pa in [PaLayout::Contiguous, PaLayout::Fragmented] {
                for (cache_name, cache) in [
                    ("nocache", PmptwCacheConfig::DISABLED),
                    ("cache8", PmptwCacheConfig::ENABLED_8),
                ] {
                    let id = BenchmarkId::new(format!("{scheme}/{va}/{pa}"), cache_name);
                    group.bench_function(id, |b| {
                        b.iter(|| measure(CoreKind::Rocket, scheme, va, pa, cache));
                    });
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fig15);
criterion_main!(benches);
