//! Criterion bench for the guest key-value extension experiment: sustained
//! application traffic over the 3-D walk (§6/§8.6 extension).

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_machine::VirtScheme;
use hpmp_memsim::CoreKind;
use hpmp_workloads::virt_app::{run_guest_kv, GUEST_DATASET_PAGES};
use std::time::Duration;

fn virt_app(c: &mut Criterion) {
    let mut group = c.benchmark_group("virt_app");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for scheme in [
        VirtScheme::Pmp,
        VirtScheme::PmpTable,
        VirtScheme::Hpmp,
        VirtScheme::HpmpGpt,
    ] {
        let id = BenchmarkId::new("guest_kv", scheme.to_string());
        group.bench_function(id, |b| {
            b.iter(|| run_guest_kv(CoreKind::Rocket, scheme, GUEST_DATASET_PAGES, 150));
        });
    }
    group.finish();
}

criterion_group!(benches, virt_app);
criterion_main!(benches);
