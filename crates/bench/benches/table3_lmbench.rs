//! Criterion bench for Table 3: LMBench syscall costs under each flavour.

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_memsim::CoreKind;
use hpmp_penglai::TeeFlavor;
use hpmp_workloads::lmbench::{LmbenchContext, SYSCALLS};
use std::time::Duration;

fn table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_lmbench");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for flavor in [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ] {
        for syscall in SYSCALLS {
            let id = BenchmarkId::new(flavor.to_string(), syscall.to_string());
            group.bench_with_input(id, &syscall, |b, &syscall| {
                let mut ctx = LmbenchContext::new(flavor, CoreKind::Boom).expect("boot");
                ctx.run(syscall).expect("warm-up");
                b.iter(|| ctx.run(syscall).expect("syscall"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
