//! Criterion bench for Figure 12-a/b/c: FunctionBench invocations and the
//! image-processing chain under each flavour.

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_memsim::CoreKind;
use hpmp_penglai::TeeFlavor;
use hpmp_workloads::serverless::{image_chain, invoke, Function};
use hpmp_workloads::TeeBench;
use std::time::Duration;

const FLAVORS: [TeeFlavor; 3] = [
    TeeFlavor::PenglaiPmp,
    TeeFlavor::PenglaiPmpt,
    TeeFlavor::PenglaiHpmp,
];

fn fig12ac(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_serverless");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for function in [Function::Dd, Function::Chameleon, Function::Matmul] {
        for flavor in FLAVORS {
            let id = BenchmarkId::new(format!("cold/{function}"), flavor.to_string());
            group.bench_function(id, |b| {
                let mut tee = TeeBench::boot(flavor, CoreKind::Rocket);
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    invoke(&mut tee, function, seed).expect("invocation")
                });
            });
        }
    }
    for flavor in FLAVORS {
        let id = BenchmarkId::new("image_chain/64", flavor.to_string());
        group.bench_function(id, |b| {
            b.iter(|| image_chain(flavor, CoreKind::Rocket, 64).expect("chain"));
        });
    }
    group.finish();
}

criterion_group!(benches, fig12ac);
criterion_main!(benches);
