//! Criterion bench for Figure 11: RV8 and GAP suites under each flavour.

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_memsim::CoreKind;
use hpmp_penglai::TeeFlavor;
use hpmp_workloads::gap::{default_graph, run_gap, GapKernel};
use hpmp_workloads::rv8::{run_rv8, Rv8Kernel};
use std::time::Duration;

const FLAVORS: [TeeFlavor; 3] = [
    TeeFlavor::PenglaiPmp,
    TeeFlavor::PenglaiPmpt,
    TeeFlavor::PenglaiHpmp,
];

fn fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_suites");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    // Representative RV8 kernels (the full set runs in `repro fig11`).
    for kernel in [Rv8Kernel::Norx, Rv8Kernel::Qsort, Rv8Kernel::Dhrystone] {
        for flavor in FLAVORS {
            let id = BenchmarkId::new(format!("rv8/{kernel}"), flavor.to_string());
            group.bench_function(id, |b| {
                b.iter(|| run_rv8(flavor, CoreKind::Rocket, kernel).expect("rv8"));
            });
        }
    }
    // Representative GAP kernels on a shared graph.
    let graph = default_graph();
    for kernel in [GapKernel::Bc, GapKernel::Pr] {
        for flavor in FLAVORS {
            let id = BenchmarkId::new(format!("gap/{kernel}"), flavor.to_string());
            group.bench_function(id, |b| {
                b.iter(|| run_gap(flavor, CoreKind::Rocket, kernel, &graph, 4_000).expect("gap"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
