//! Criterion bench for Figure 12-d/e: Redis request service time per
//! command under each flavour.

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_memsim::CoreKind;
use hpmp_penglai::TeeFlavor;
use hpmp_workloads::redis::{RedisCommand, RedisServer, DEFAULT_DATASET_PAGES};
use std::time::Duration;

fn fig12de(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_redis");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for flavor in [
        TeeFlavor::PenglaiPmp,
        TeeFlavor::PenglaiPmpt,
        TeeFlavor::PenglaiHpmp,
    ] {
        for cmd in [
            RedisCommand::Get,
            RedisCommand::Lrange100,
            RedisCommand::Mset,
        ] {
            let id = BenchmarkId::new(cmd.to_string(), flavor.to_string());
            group.bench_function(id, |b| {
                let mut server =
                    RedisServer::start(flavor, CoreKind::Rocket, DEFAULT_DATASET_PAGES)
                        .expect("server");
                b.iter(|| server.serve(cmd).expect("request"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig12de);
criterion_main!(benches);
