//! Criterion bench for Figure 10 / Table 2: single ld/sd latency under
//! TC1–TC4 for each isolation scheme on both cores.

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_machine::IsolationScheme;
use hpmp_memsim::{AccessKind, CoreKind};
use hpmp_workloads::latency::{measure, TEST_CASES};
use std::time::Duration;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_latency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for core in [CoreKind::Rocket, CoreKind::Boom] {
        for op in [AccessKind::Read, AccessKind::Write] {
            for scheme in [
                IsolationScheme::Pmp,
                IsolationScheme::PmpTable,
                IsolationScheme::Hpmp,
            ] {
                for case in TEST_CASES {
                    let id = BenchmarkId::new(format!("{core}/{op}/{scheme}"), case.to_string());
                    group.bench_with_input(id, &case, |b, &case| {
                        b.iter(|| measure(core, scheme, op, case));
                    });
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
