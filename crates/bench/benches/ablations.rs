//! Ablation benches for the design choices DESIGN.md calls out:
//! PMP-Table depth (1/2/3 levels), TLB inlining on/off, and the
//! PMPTW-Cache size sweep.

use hpmp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpmp_core::{HpmpRegFile, PmpRegion, PmpTable, PmptwCache, PmptwCacheConfig, TableLevels};
use hpmp_machine::{IsolationScheme, MachineConfig};
use hpmp_memsim::{
    AccessKind, FrameAllocator, MemSystem, MemSystemConfig, Perms, PhysAddr, PhysMem, PrivMode,
    PAGE_SIZE,
};
use hpmp_workloads::latency::{measure_with_config, TestCase};
use std::time::Duration;

/// Depth ablation (§4.3 "why 2-level?"): cycles per cold permission check.
fn table_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_table_depth");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for levels in [TableLevels::One, TableLevels::Two, TableLevels::Three] {
        let id = BenchmarkId::new("cold_check", format!("{levels:?}"));
        group.bench_function(id, |b| {
            // Region sized to the depth's reach so each is a fair fit.
            let size = levels.reach().min(1 << 28);
            let region = PmpRegion::new(PhysAddr::new(0x9000_0000), size);
            let mut mem = PhysMem::new();
            let mut frames = FrameAllocator::new(PhysAddr::new(0x1_0000_0000), 1024 * PAGE_SIZE);
            let mut table =
                PmpTable::with_levels(region, levels, &mut mem, &mut frames).expect("table");
            for i in 0..64u64 {
                table
                    .set_page_perm(
                        &mut mem,
                        &mut frames,
                        PhysAddr::new(0x9000_0000 + i * PAGE_SIZE),
                        Perms::RW,
                    )
                    .expect("fill");
            }
            let mut regs = HpmpRegFile::new();
            regs.configure_table(0, region, table.root(), levels)
                .expect("entry");
            let mut cache = PmptwCache::disabled();
            let mut mem_sys = MemSystem::new(MemSystemConfig::rocket());
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 64;
                mem_sys.flush_all();
                let out = regs.check(
                    &mem,
                    &mut cache,
                    PhysAddr::new(0x9000_0000 + i * PAGE_SIZE),
                    AccessKind::Read,
                    PrivMode::Supervisor,
                );
                let mut cycles = 0;
                for r in &out.refs {
                    cycles += mem_sys.access_ptw(r.addr).cycles;
                }
                cycles
            });
        });
    }
    group.finish();
}

/// TLB-inlining ablation (Implication-2): warm-access latency with and
/// without inlined permissions.
fn tlb_inlining(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tlb_inlining");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, inlining) in [("inlined", true), ("no_inlining", false)] {
        let id = BenchmarkId::new("tc4_pmpt", name);
        group.bench_function(id, |b| {
            let mut config = MachineConfig::rocket();
            config.tlb_inlining = inlining;
            b.iter(|| {
                measure_with_config(
                    config,
                    IsolationScheme::PmpTable,
                    AccessKind::Read,
                    TestCase::Tc4,
                )
            });
        });
    }
    group.finish();
}

/// PMPTW-Cache size sweep (§8.9).
fn pmptw_cache_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pmptw_cache");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for entries in [0usize, 4, 8, 16] {
        let id = BenchmarkId::new("tc2_pmpt", entries);
        group.bench_function(id, |b| {
            let mut config = MachineConfig::rocket();
            config.pmptw_cache = PmptwCacheConfig { entries };
            b.iter(|| {
                measure_with_config(
                    config,
                    IsolationScheme::PmpTable,
                    AccessKind::Read,
                    TestCase::Tc2,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, table_depth, tlb_inlining, pmptw_cache_sweep);
criterion_main!(benches);
