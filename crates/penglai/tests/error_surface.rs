//! The monitor's error surface, exercised from outside the crate: every
//! wrapped cause must be reachable through `std::error::Error::source()`,
//! so callers embedding the monitor behind `Box<dyn Error>` (or anyhow-
//! style reporters) see the full chain instead of a flattened string.

use std::error::Error;

use hpmp_core::{HpmpError, TableError};
use hpmp_penglai::{DomainId, MonitorError};

/// Walk the source chain, collecting each link's Display rendering.
fn chain(err: &dyn Error) -> Vec<String> {
    let mut links = vec![err.to_string()];
    let mut cursor = err.source();
    while let Some(cause) = cursor {
        links.push(cause.to_string());
        cursor = cause.source();
    }
    links
}

#[test]
fn hpmp_causes_are_chained() {
    let err = MonitorError::from(HpmpError::Locked(3));
    let source = err.source().expect("wrapped HpmpError must be the source");
    let cause = source
        .downcast_ref::<HpmpError>()
        .expect("source downcasts to the concrete HpmpError");
    assert_eq!(*cause, HpmpError::Locked(3));
    // The chain terminates: HpmpError is a leaf.
    assert!(source.source().is_none());
    assert_eq!(chain(&err).len(), 2);
}

#[test]
fn table_causes_are_chained() {
    let err = MonitorError::from(TableError::OutOfTableFrames);
    let source = err.source().expect("wrapped TableError must be the source");
    assert_eq!(
        *source
            .downcast_ref::<TableError>()
            .expect("source downcasts to the concrete TableError"),
        TableError::OutOfTableFrames
    );
    // Both renderings appear when a reporter prints the whole chain.
    let rendered = chain(&err).join(": ");
    assert!(rendered.contains("PMP-table"), "{rendered}");
}

#[test]
fn leaf_errors_have_no_source() {
    let leaves: Vec<MonitorError> = vec![
        MonitorError::OutOfPmpEntries,
        MonitorError::OutOfMemory,
        MonitorError::NotOwned,
        MonitorError::NoSuchDomain(DomainId::HOST),
        MonitorError::BadBootRam("test"),
        MonitorError::IntegrityLost(DomainId::HOST),
        MonitorError::AlreadyScheduled(DomainId::HOST),
        MonitorError::ResourceExhausted {
            retry_after_ops: 16,
        },
    ];
    for leaf in &leaves {
        assert!(leaf.source().is_none(), "{leaf} should be a leaf");
        assert_eq!(chain(leaf).len(), 1);
    }
}

#[test]
fn backpressure_advertises_its_backoff() {
    let err = MonitorError::ResourceExhausted {
        retry_after_ops: 16,
    };
    let rendered = err.to_string();
    assert!(rendered.contains("retry"), "{rendered}");
    assert!(rendered.contains("16"), "{rendered}");
}

#[test]
fn monitor_error_boxes_into_dyn_error() {
    // The embedding contract: Send + Sync + 'static, so the error crosses
    // thread boundaries in the threaded backend's result plumbing.
    fn takes_boxed(_: Box<dyn Error + Send + Sync + 'static>) {}
    takes_boxed(Box::new(MonitorError::from(HpmpError::Locked(1))));
}
