//! Error paths under multi-hart operation: the PMP entry wall and the
//! one-hart-per-enclave scheduling rule, both exercised through
//! [`SmpSystem`] so the failing operation still drains and delivers the
//! cross-hart shootdowns it owes, and the system stays fully usable
//! afterwards.

use hpmp_core::PmpRegion;
use hpmp_machine::MachineConfig;
use hpmp_memsim::PhysAddr;
use hpmp_penglai::{DomainId, GmsLabel, MonitorError, SmpSystem, TeeFlavor};

const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

fn boot(flavor: TeeFlavor, harts: usize) -> SmpSystem {
    SmpSystem::boot(MachineConfig::rocket(), flavor, RAM, harts).unwrap()
}

#[test]
fn pmp_entry_wall_is_typed_and_survivable_under_smp() {
    let mut smp = boot(TeeFlavor::PenglaiPmp, 4);
    // Fill the register file: segment-per-region PMP runs out of entries
    // long before it runs out of memory.
    let mut domains = Vec::new();
    let wall = loop {
        match smp.create_domain_on(0, 1 << 20, GmsLabel::Fast) {
            Ok((id, _)) => domains.push(id),
            Err(e) => break e,
        }
        assert!(domains.len() <= 64, "entry wall never hit");
    };
    assert_eq!(wall, MonitorError::OutOfPmpEntries);
    assert!(!domains.is_empty());

    // The failed create must not have wedged the system: every hart still
    // schedules, and remote harts keep receiving shootdowns.
    for hart in 0..4 {
        assert_eq!(smp.scheduled(hart), DomainId::HOST);
    }
    smp.switch_on(3, domains[0]).unwrap();
    smp.switch_on(3, DomainId::HOST).unwrap();

    // Destroying one domain re-opens exactly the entries it held; a
    // create driven from a *different* hart then succeeds.
    let victim = domains.pop().unwrap();
    smp.destroy_domain_on(0, victim).unwrap();
    let (replacement, _) = smp.create_domain_on(2, 1 << 20, GmsLabel::Fast).unwrap();
    smp.switch_on(1, replacement).unwrap();
    smp.verify_accounting().expect("accounting after the wall");
}

#[test]
fn already_scheduled_is_raced_across_three_harts() {
    let mut smp = boot(TeeFlavor::PenglaiHpmp, 3);
    let (id, _) = smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
    smp.switch_on(0, id).unwrap();

    // Both other harts lose the race with a typed, non-wedging error.
    for hart in [1u16, 2] {
        assert_eq!(
            smp.switch_on(hart, id),
            Err(MonitorError::AlreadyScheduled(id))
        );
        assert_eq!(smp.scheduled(hart), DomainId::HOST, "loser must stay put");
    }

    // Handoff: once hart 0 leaves, exactly one other hart may enter.
    smp.switch_on(0, DomainId::HOST).unwrap();
    smp.switch_on(2, id).unwrap();
    assert_eq!(
        smp.switch_on(1, id),
        Err(MonitorError::AlreadyScheduled(id))
    );

    // The error path still participates in shootdown bookkeeping: a later
    // grant from the host hart reaches the hart actually running it.
    let before = smp.metrics_snapshot().value("hart.2.shootdowns");
    smp.alloc_on(0, id, 1 << 20, GmsLabel::Slow).unwrap();
    let after = smp.metrics_snapshot().value("hart.2.shootdowns");
    assert!(after > before, "running hart missed the grant shootdown");
    smp.verify_accounting().expect("accounting after the races");
}

#[test]
fn destroying_a_scheduled_enclaves_domain_still_fences_everyone() {
    // Mixed error/success sequence: errors in the middle of a shootdown-
    // heavy workload must not desynchronize any hart's register image.
    let mut smp = boot(TeeFlavor::PenglaiHpmp, 2);
    let (a, _) = smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
    let (b, _) = smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
    smp.switch_on(1, a).unwrap();
    assert_eq!(smp.switch_on(0, a), Err(MonitorError::AlreadyScheduled(a)));
    smp.switch_on(0, b).unwrap();
    smp.switch_on(0, DomainId::HOST).unwrap();
    smp.switch_on(1, DomainId::HOST).unwrap();
    smp.destroy_domain_on(0, a).unwrap();
    assert_eq!(
        smp.switch_on(1, a),
        Err(MonitorError::NoSuchDomain(a)),
        "destroyed domain must be unschedulable everywhere"
    );
    smp.destroy_domain_on(1, b).unwrap();
    smp.verify_accounting().expect("clean final state");
}
