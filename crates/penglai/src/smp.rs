//! The SMP face of the secure monitor: one [`SecureMonitor`] serving N
//! harts, each with its own PMP/HPMP register image and permission caches,
//! synchronized by the cross-hart shootdown protocol.
//!
//! ## The protocol
//!
//! The single-hart monitor already fences *the machine it runs on* inside
//! every mutating op. What it cannot do alone is reach the other harts: a
//! grant, revoke, teardown or relabel on hart A leaves every other hart
//! with (a) possibly stale TLB/PMPTW-Cache entries — permissions are
//! inlined in TLB entries, so a stale entry is a stale *grant* — and (b) a
//! possibly stale register image, when that hart's scheduled domain's
//! holdings include the changed domain ([`SecureMonitor::image_depends`]).
//!
//! [`SmpSystem`] closes both: after every monitor op it drains the
//! monitor's pending-shootdown note and delivers one IPI per remote hart —
//! `Reprogram` where the image depends on the change, `FenceOnly`
//! elsewhere. Delivery is synchronous, as in Penglai and CoVE's TSM: the
//! sender stalls until the slowest receiver has trapped, reprogrammed or
//! fenced, and acked. The stall is charged to the sender
//! (`hart.<i>.fence_stall_cycles`), the handler work to each receiver
//! (`hart.<i>.shootdown_cycles`), so `hpmp-analyze` can attribute
//! shootdown overhead per hart.
//!
//! Fault campaigns re-open the stale window deliberately:
//! [`SmpSystem::set_shootdown_suppression`] skips delivery entirely,
//! which — unlike the single-hart fence suppression, whose epoch half
//! still kills stale entries — leaves remote TLBs *genuinely* stale. The
//! shootdown property test uses this to prove it can observe the bug class
//! it guards against.
//!
//! ## Scheduling discipline
//!
//! `monitor.current` is a single-hart notion; here every hart has its own
//! scheduled domain. Before running an op on hart A the system banks
//! `current` to `scheduled[A]`; after the op it reads `current` back (ops
//! like `destroy_domain` switch internally). An enclave may be scheduled
//! on at most one hart at a time — its image and private memory exist
//! once — while the host may run on any number of harts.

use crate::degrade::DegradationPolicy;
use crate::gms::GmsLabel;
use crate::monitor::{cost, DomainId, MonitorError, SecureMonitor, TeeFlavor};
use hpmp_core::{DeferredShootdown, IpiKind, PmpRegion};
use hpmp_machine::{Machine, MachineConfig, MultiHartMachine};
use hpmp_memsim::{AccessKind, PhysAddr};
use hpmp_trace::{
    MetricsRegistry, NullSink, Snapshot, SpanCollector, SpanEvent, SpanKind, TraceSink,
};

/// N harts, one secure monitor, one physical memory.
///
/// `Clone` forks the whole system — monitor, every hart's registers and
/// caches, the shared physical memory — into an independent copy, which is
/// what lets the bounded model checker (`hpmp-modelcheck`) backtrack: apply
/// an op to a fork, explore, discard. Forking panics if the threaded
/// backend is active (see [`hpmp_machine::MultiHartMachine`]'s `Clone`).
#[derive(Clone, Debug)]
pub struct SmpSystem<S: TraceSink = NullSink> {
    mh: MultiHartMachine<S>,
    monitor: SecureMonitor,
    /// Which domain each hart is running. Kept by this layer; the
    /// monitor's own `current` is banked to `scheduled[hart]` around every
    /// op.
    scheduled: Vec<DomainId>,
    /// Fault-injection switch: when set, shootdown IPIs are never
    /// delivered and remote harts keep stale cached grants.
    suppress_shootdowns: bool,
    /// Span producer: every `*_on` op opens a span; shootdown deliveries
    /// emit per-receiver child spans causally linked to it. Disabled (and
    /// zero-cost) unless [`SmpSystem::enable_spans`] was called.
    spans: SpanCollector,
}

impl SmpSystem {
    /// Boots a monitor over `harts` identical untraced machines.
    ///
    /// # Errors
    ///
    /// As [`SecureMonitor::boot`].
    pub fn boot(
        config: MachineConfig,
        flavor: TeeFlavor,
        ram: PmpRegion,
        harts: usize,
    ) -> Result<SmpSystem, MonitorError> {
        SmpSystem::boot_machines(
            (0..harts).map(|_| Machine::new(config)).collect(),
            flavor,
            ram,
        )
    }
}

impl<S: TraceSink> SmpSystem<S> {
    /// Boots a monitor over pre-built machines (e.g. each with its own
    /// trace sink). Hart 0 boots the monitor; every other hart receives
    /// the monitor's entry-0 segment and the host image, exactly as
    /// secondary harts do on real hardware before the host OS starts.
    ///
    /// # Errors
    ///
    /// As [`SecureMonitor::boot`].
    pub fn boot_machines(
        machines: Vec<Machine<S>>,
        flavor: TeeFlavor,
        ram: PmpRegion,
    ) -> Result<SmpSystem<S>, MonitorError> {
        let mut mh = MultiHartMachine::from_machines(machines);
        let mut monitor = SecureMonitor::boot(mh.machine(0), flavor, ram)?;
        let harts = mh.harts();
        for hart in 1..harts as u16 {
            let m = mh.machine(hart);
            m.regs_mut().configure_segment(
                0,
                monitor.monitor_region(),
                hpmp_memsim::Perms::NONE,
            )?;
            monitor.program_current(m)?;
        }
        // Boot-time table builds note shootdowns; nobody was running yet.
        let _ = monitor.take_shootdowns();
        Ok(SmpSystem {
            mh,
            monitor,
            scheduled: vec![DomainId::HOST; harts],
            suppress_shootdowns: false,
            spans: SpanCollector::disabled(),
        })
    }

    /// Number of harts.
    pub fn harts(&self) -> usize {
        self.mh.harts()
    }

    /// The monitor, read-only. All mutation must go through the `*_on`
    /// ops so the shootdown protocol runs.
    pub fn monitor(&self) -> &SecureMonitor {
        &self.monitor
    }

    /// The multi-hart machine, for scheduling-neutral inspection (per-hart
    /// sinks, IPI counters).
    pub fn machines(&self) -> &MultiHartMachine<S> {
        &self.mh
    }

    /// Activates and returns `hart`'s machine, for running accesses on it.
    pub fn machine(&mut self, hart: u16) -> &mut Machine<S> {
        self.mh.machine(hart)
    }

    /// The domain scheduled on `hart`.
    pub fn scheduled(&self, hart: u16) -> DomainId {
        self.scheduled[usize::from(hart)]
    }

    /// The cache-free permission oracle, asked from `hart`'s point of
    /// view: may `hart`'s scheduled domain access `addr`?
    pub fn oracle_check_on(&self, hart: u16, addr: PhysAddr, kind: AccessKind) -> bool {
        self.monitor
            .oracle_check_for(self.scheduled(hart), addr, kind)
    }

    /// A deterministic 64-bit fingerprint of the system's *logical* state:
    /// every hart's register image, the per-hart scheduling assignment, the
    /// suppression switch, and the monitor's own state hash
    /// ([`SecureMonitor::hash_state`]). Cycle counters, metrics and spans
    /// are deliberately excluded — two states that differ only in
    /// accounting behave identically under every future op sequence, which
    /// is exactly the convergence the model checker prunes on.
    ///
    /// Stable across runs and platforms (FNV-1a over explicit
    /// little-endian words), so explored/pruned counts are reproducible.
    pub fn state_fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = hpmp_memsim::Fnv1a::new();
        h.write_usize(self.mh.harts());
        for hart in 0..self.mh.harts() as u16 {
            let regs = self.mh.peek(hart).regs();
            h.write_usize(regs.len());
            for i in 0..regs.len() {
                h.write_u64(regs.addr_reg(i));
                h.write_u8(regs.cfg_reg(i).to_bits());
            }
        }
        for d in &self.scheduled {
            h.write_u32(d.0);
        }
        h.write_u8(u8::from(self.suppress_shootdowns));
        self.monitor.hash_state(&mut h);
        h.finish()
    }

    /// The global simulated clock spans and timeline slices are stamped
    /// with: total machine cycles across all harts plus the monitor's own
    /// cycles. Every input only ever accumulates, so the clock is
    /// monotone, and it advances identically at any `--jobs` because the
    /// whole SMP run is single-threaded and seed-interleaved.
    pub fn global_cycles(&self) -> u64 {
        self.mh.total_machine_cycles() + self.monitor.stats().cycles
    }

    /// Enables span collection, retaining at most `capacity` spans
    /// (overflow is counted, not silently discarded — see
    /// `trace.dropped.spans` in snapshots).
    pub fn enable_spans(&mut self, capacity: usize) {
        self.spans = SpanCollector::bounded(capacity);
    }

    /// The span collector (disabled unless [`SmpSystem::enable_spans`]
    /// was called).
    pub fn spans(&self) -> &SpanCollector {
        &self.spans
    }

    /// Takes the span collector out, leaving a disabled one behind.
    pub fn take_spans(&mut self) -> SpanCollector {
        std::mem::take(&mut self.spans)
    }

    /// Suppresses (or restores) shootdown delivery. Unlike single-hart
    /// fence suppression — whose unsuppressable epoch half still
    /// invalidates stale entries — suppressed shootdowns never reach the
    /// remote hart at all, so its TLB keeps stale grants. Strictly a
    /// fault-injection hook.
    pub fn set_shootdown_suppression(&mut self, suppress: bool) {
        self.suppress_shootdowns = suppress;
    }

    /// Schedules `target` on `hart` (a domain switch on that hart),
    /// broadcasting a fence-only shootdown to the other harts. Returns
    /// modelled cycles (switch + sender-side stall).
    ///
    /// # Errors
    ///
    /// [`MonitorError::AlreadyScheduled`] if `target` is an enclave
    /// already scheduled on a different hart; otherwise as
    /// [`SecureMonitor::switch_to`].
    pub fn switch_on(&mut self, hart: u16, target: DomainId) -> Result<u64, MonitorError> {
        if target != DomainId::HOST {
            let elsewhere = self
                .scheduled
                .iter()
                .enumerate()
                .any(|(h, &d)| d == target && h != usize::from(hart));
            if elsewhere {
                return Err(MonitorError::AlreadyScheduled(target));
            }
        }
        self.monitor.set_current_unchecked(self.scheduled(hart));
        let begin = self.spans.is_enabled().then(|| self.global_cycles());
        let span = self.spans.reserve();
        let cycles = self.monitor.switch_to(self.mh.machine(hart), target)?;
        self.scheduled[usize::from(hart)] = target;
        // A switch changes no holdings, but remote harts may hold TLB
        // entries tagged with the switched hart's old world; Penglai
        // broadcasts a fence on switch, and so do we.
        let stall = self.deliver(hart, &[], span)?;
        if let (Some(id), Some(t0)) = (span, begin) {
            self.spans.emit_reserved(SpanEvent {
                id,
                parent: None,
                kind: SpanKind::Switch,
                hart,
                domain: Some(target.0),
                begin: t0,
                end: t0 + cycles + stall,
            });
        }
        Ok(cycles + stall)
    }

    /// Creates an enclave domain, driven from `hart`. Returns
    /// `(id, cycles)` including the shootdown stall.
    ///
    /// # Errors
    ///
    /// As [`SecureMonitor::create_domain`].
    pub fn create_domain_on(
        &mut self,
        hart: u16,
        initial_size: u64,
        label: GmsLabel,
    ) -> Result<(DomainId, u64), MonitorError> {
        self.op(
            hart,
            SpanKind::CreateDomain,
            |id: &DomainId| Some(id.0),
            |mon, m| mon.create_domain(m, initial_size, label),
        )
    }

    /// Destroys a domain, driven from `hart`. If the domain was scheduled
    /// on another hart, that hart's reprogram IPI reschedules it to the
    /// host — the model of "kill an enclave out from under its core".
    ///
    /// # Errors
    ///
    /// As [`SecureMonitor::destroy_domain`].
    pub fn destroy_domain_on(&mut self, hart: u16, id: DomainId) -> Result<u64, MonitorError> {
        let ((), cycles) = self.op(
            hart,
            SpanKind::DestroyDomain,
            |_: &()| Some(id.0),
            |mon, m| mon.destroy_domain(m, id).map(|c| ((), c)),
        )?;
        Ok(cycles)
    }

    /// Allocates a region for `domain`, driven from `hart`.
    ///
    /// # Errors
    ///
    /// As [`SecureMonitor::alloc_region`].
    pub fn alloc_on(
        &mut self,
        hart: u16,
        domain: DomainId,
        size: u64,
        label: GmsLabel,
    ) -> Result<(PmpRegion, u64), MonitorError> {
        self.op(
            hart,
            SpanKind::Alloc,
            |_: &PmpRegion| Some(domain.0),
            |mon, m| mon.alloc_region(m, domain, size, label),
        )
    }

    /// Frees `domain`'s region at `base`, driven from `hart`.
    ///
    /// # Errors
    ///
    /// As [`SecureMonitor::free_region`].
    pub fn free_on(
        &mut self,
        hart: u16,
        domain: DomainId,
        base: PhysAddr,
    ) -> Result<u64, MonitorError> {
        let ((), cycles) = self.op(
            hart,
            SpanKind::Free,
            |_: &()| Some(domain.0),
            |mon, m| mon.free_region(m, domain, base).map(|c| ((), c)),
        )?;
        Ok(cycles)
    }

    /// Relabels `domain`'s region at `base`, driven from `hart`.
    ///
    /// # Errors
    ///
    /// As [`SecureMonitor::relabel`].
    pub fn relabel_on(
        &mut self,
        hart: u16,
        domain: DomainId,
        base: PhysAddr,
        label: GmsLabel,
    ) -> Result<u64, MonitorError> {
        let ((), cycles) = self.op(
            hart,
            SpanKind::Relabel,
            |_: &()| Some(domain.0),
            |mon, m| mon.relabel(m, domain, base, label).map(|c| ((), c)),
        )?;
        Ok(cycles)
    }

    /// Pins `domain` against compaction; see
    /// [`SecureMonitor::pin_domain`]. Pure bookkeeping — no permission
    /// changes, so no shootdown round.
    ///
    /// # Errors
    ///
    /// As [`SecureMonitor::pin_domain`].
    pub fn pin_domain(&mut self, domain: DomainId) -> Result<(), MonitorError> {
        self.monitor.pin_domain(domain)
    }

    /// Unpins `domain`; see [`SecureMonitor::unpin_domain`].
    pub fn unpin_domain(&mut self, domain: DomainId) {
        self.monitor.unpin_domain(domain);
    }

    /// Replaces the monitor's degradation policy. Pure bookkeeping.
    pub fn set_degradation_policy(&mut self, policy: DegradationPolicy) {
        self.monitor.set_degradation_policy(policy);
    }

    /// Runs one monitor op on `hart` with `current` banked to that hart's
    /// scheduled domain, then drains and delivers the shootdown. The
    /// returned cycle count includes the sender-side stall.
    ///
    /// When spans are enabled the op gets a span of `kind` covering its
    /// whole interval (monitor work + stall), and the delivery's child
    /// spans hang off it causally. `domain_of` names the domain the op
    /// was about, given its result.
    fn op<R>(
        &mut self,
        hart: u16,
        kind: SpanKind,
        domain_of: impl FnOnce(&R) -> Option<u32>,
        f: impl FnOnce(&mut SecureMonitor, &mut Machine<S>) -> Result<(R, u64), MonitorError>,
    ) -> Result<(R, u64), MonitorError> {
        self.monitor.set_current_unchecked(self.scheduled(hart));
        let begin = self.spans.is_enabled().then(|| self.global_cycles());
        let span = self.spans.reserve();
        let out = f(&mut self.monitor, self.mh.machine(hart));
        // Ops may have switched domains internally (destroy of the running
        // domain falls back to the host).
        self.scheduled[usize::from(hart)] = self.monitor.current();
        // Drain the shootdown list and the compaction breadcrumb even when
        // the op failed: an allocation that escalated through compaction
        // before being refused still *moved memory*, and remote harts must
        // observe that before anything else runs.
        let changed = self.monitor.take_shootdowns();
        let note = self.monitor.take_compaction_note();
        let (r, mut cycles) = match out {
            Ok(ok) => ok,
            Err(e) => {
                self.deliver(hart, &changed, None)?;
                return Err(e);
            }
        };
        cycles += self.deliver(hart, &changed, span)?;
        if let (Some(id), Some(t0)) = (span, begin) {
            if let Some(n) = note {
                // The compaction stall, attributable inside the op span.
                self.spans.emit(
                    SpanKind::Compact,
                    hart,
                    changed.first().map(|d| d.0),
                    Some(id),
                    t0 + n.offset,
                    t0 + n.offset + n.cycles,
                );
            }
            self.spans.emit_reserved(SpanEvent {
                id,
                parent: None,
                kind,
                hart,
                domain: domain_of(&r),
                begin: t0,
                end: t0 + cycles,
            });
        }
        Ok((r, cycles))
    }

    /// Delivers a shootdown from `hart` to every other hart and returns
    /// the sender's stall cycles. `changed` lists every domain whose
    /// holdings the op touched (several, when compaction ran) and picks
    /// reprogram targets; a plain fence broadcast passes an empty slice.
    ///
    /// When spans are enabled, each receiver gets a child span chain under
    /// `parent`: an `ipi_send` on the sender (the doorbell write, charged
    /// to the sender but *not* part of its stall), then a
    /// `shootdown_recv` umbrella per receiver covering interconnect
    /// flight + trap + optional reprogram + fence, with those phases as
    /// its own children. The sender's stall is exactly the slowest
    /// receiver's umbrella (`ipi_latency + slowest ack`), which is what
    /// lets `hpmp-analyze timeline` attribute stall cycles to named
    /// receiver-side spans.
    fn deliver(
        &mut self,
        from: u16,
        changed: &[DomainId],
        parent: Option<u64>,
    ) -> Result<u64, MonitorError> {
        if self.suppress_shootdowns || self.mh.harts() == 1 {
            return Ok(0);
        }
        // Under the threaded backend the hart-local handler half
        // (invalidate + cycle charge) is deferred to the receiver's own
        // thread via its mailbox; everything that needs the monitor's
        // state — kind selection, reprogramming the register image — still
        // runs serially here, and the sender's stall is charged
        // identically. Receiver-side spans are skipped: the threaded
        // backend runs with spans disabled.
        let deferred = self.mh.threaded();
        let spans_on = self.spans.is_enabled() && !deferred;
        let t0 = if spans_on { self.global_cycles() } else { 0 };
        let ipi_post = self.mh.shootdown_cost().ipi_post;
        let ipi_latency = self.mh.shootdown_cost().ipi_latency;
        // All doorbells are written before the first receiver's flight
        // completes; receivers then handle concurrently.
        let t_sent = t0 + (self.mh.harts() as u64 - 1) * ipi_post;
        let domain = changed.first().map(|d| d.0);
        let mut posted = 0u64;
        let mut sender_cycles = 0;
        let mut slowest_ack = 0;
        for hart in 0..self.mh.harts() as u16 {
            if hart == from {
                continue;
            }
            let kind = if changed
                .iter()
                .any(|&d| self.monitor.image_depends(self.scheduled(hart), d))
            {
                IpiKind::Reprogram
            } else {
                IpiKind::FenceOnly
            };
            sender_cycles += self.mh.post_ipi(from, hart, kind);
            if spans_on {
                let t = t0 + posted * ipi_post;
                self.spans
                    .emit(SpanKind::IpiSend, from, domain, parent, t, t + ipi_post);
            }
            posted += 1;
            // Delivery is synchronous: the receiver traps immediately.
            let ipi = self.mh.take_ipi(hart).expect("IPI just posted");
            let mut handler = cost::TRAP_ROUND_TRIP;
            let mut reprogram_cycles = 0;
            if ipi.kind == IpiKind::Reprogram {
                // The scheduled domain may be the one just destroyed; a
                // real handler finds its domain gone and parks the hart in
                // the host.
                let mut sched = self.scheduled(hart);
                if self.monitor.regions_of(sched).is_err() {
                    sched = DomainId::HOST;
                    self.scheduled[usize::from(hart)] = sched;
                }
                self.monitor.set_current_unchecked(sched);
                reprogram_cycles = self.monitor.program_current(self.mh.machine(hart))?;
                handler += reprogram_cycles;
            }
            handler += cost::FENCE;
            if deferred {
                self.mh.defer_shootdown(
                    hart,
                    DeferredShootdown {
                        kind: ipi.kind,
                        handler_cycles: handler,
                    },
                );
            } else {
                self.mh.machine(hart).invalidate_isolation();
                self.mh.charge_shootdown(hart, handler);
            }
            slowest_ack = slowest_ack.max(handler);
            if spans_on {
                // The umbrella's width is ipi_latency + this receiver's
                // ack; the slowest sibling equals the sender's stall.
                let recv = self.spans.emit(
                    SpanKind::ShootdownRecv,
                    hart,
                    domain,
                    parent,
                    t_sent,
                    t_sent + ipi_latency + handler,
                );
                let mut t = t_sent + ipi_latency;
                self.spans.emit(
                    SpanKind::Trap,
                    hart,
                    domain,
                    recv,
                    t,
                    t + cost::TRAP_ROUND_TRIP,
                );
                t += cost::TRAP_ROUND_TRIP;
                if reprogram_cycles > 0 {
                    self.spans.emit(
                        SpanKind::Reprogram,
                        hart,
                        domain,
                        recv,
                        t,
                        t + reprogram_cycles,
                    );
                    t += reprogram_cycles;
                }
                self.spans
                    .emit(SpanKind::Fence, hart, domain, recv, t, t + cost::FENCE);
            }
        }
        // Restore the banked current to the initiating hart.
        self.monitor.set_current_unchecked(self.scheduled(from));
        let stall = self.mh.shootdown_cost().sender_stall(slowest_ack);
        self.mh.charge_fence_stall(from, stall);
        Ok(sender_cycles + stall)
    }

    /// Switches the system to the threaded execution backend. Call after
    /// all tenant setup; see
    /// [`hpmp_machine::MultiHartMachine::enable_threaded`]. Shootdowns
    /// posted by later ops are deferred to per-hart mailboxes and drained
    /// at epoch starts (or at [`SmpSystem::quiesce`]).
    pub fn enable_threaded(&mut self) {
        assert!(
            !self.spans.is_enabled(),
            "span collection requires the deterministic backend"
        );
        self.mh.enable_threaded();
    }

    /// Whether the threaded backend is active.
    pub fn threaded(&self) -> bool {
        self.mh.threaded()
    }

    /// Runs one parallel epoch across all harts; see
    /// [`hpmp_machine::MultiHartMachine::parallel_epoch`]. `body` must only
    /// run accesses/compute on its own machine — monitor ops stay in the
    /// serial phases between epochs.
    pub fn parallel_epoch<E, R>(
        &mut self,
        extras: &mut [E],
        body: impl Fn(u16, &mut Machine<S>, &mut E) -> R + Sync,
    ) -> Vec<R>
    where
        S: Send,
        E: Send,
        R: Send,
    {
        self.mh.parallel_epoch(extras, body)
    }

    /// Drains any still-deferred shootdowns and folds per-hart arenas into
    /// the shared registry, so a following [`SmpSystem::metrics_snapshot`]
    /// is complete. No-op under the deterministic backend.
    pub fn quiesce(&mut self) {
        self.mh.quiesce_threaded();
    }

    /// One merged snapshot: the multi-hart machine's `hart.<i>.*` and
    /// `smp.*` counters, the monitor's `monitor.*` counters, and the
    /// telemetry layer's own `trace.*` accounting (spans retained and
    /// dropped — overflow is visible, never silent).
    pub fn metrics_snapshot(&mut self) -> Snapshot {
        let mut trace = MetricsRegistry::new();
        trace.set("trace.spans", self.spans.len() as u64);
        trace.set("trace.dropped.spans", self.spans.dropped());
        self.mh
            .metrics_snapshot()
            .merge(&self.monitor.metrics_snapshot())
            .merge(&trace.snapshot())
    }

    /// Cross-layer accounting check, the SMP analogue of
    /// [`hpmp_machine::Machine::verify_accounting`]: every hart's own
    /// machine invariant must hold, every per-hart counter must reappear
    /// unchanged under `hart.<i>.*` in the merged snapshot, and the
    /// `smp.*` aggregates must equal the per-hart sums.
    ///
    /// # Errors
    ///
    /// Describes the first mismatch found.
    pub fn verify_accounting(&mut self) -> Result<(), String> {
        let merged = self.metrics_snapshot();
        let mut cycles = 0u64;
        let mut sent = 0u64;
        let mut received = 0u64;
        for hart in 0..self.mh.harts() as u16 {
            self.mh
                .peek(hart)
                .verify_accounting()
                .map_err(|e| format!("hart {hart}: {e}"))?;
            let own = self.mh.peek_mut(hart).metrics_snapshot();
            for (name, value) in own.iter() {
                let merged_name = format!("hart.{hart}.{name}");
                let got = merged.value(&merged_name);
                if got != value {
                    return Err(format!(
                        "merged snapshot says {merged_name} = {got} but hart {hart}'s \
                         own registry says {value}"
                    ));
                }
            }
            cycles += own.value("machine.cycles");
            sent += merged.value(&format!("hart.{hart}.ipis_sent"));
            received += merged.value(&format!("hart.{hart}.ipis_received"));
        }
        let checks = [
            ("smp.cycles", cycles),
            ("smp.ipis_sent", sent),
            ("smp.ipis_delivered", received),
            ("monitor.cycles", self.monitor.stats().cycles),
        ];
        for (name, want) in checks {
            let got = merged.value(name);
            if got != want {
                return Err(format!(
                    "merged snapshot says {name} = {got} but the per-hart sum is {want}"
                ));
            }
        }
        Ok(())
    }

    /// Flushes every hart's trace sink.
    pub fn flush_sinks(&mut self) {
        self.mh.flush_sinks();
    }

    /// Consumes the system, returning each hart's sink in hart order.
    pub fn into_sinks(self) -> Vec<S> {
        self.mh.into_sinks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

    fn boot(flavor: TeeFlavor, harts: usize) -> SmpSystem {
        SmpSystem::boot(MachineConfig::rocket(), flavor, RAM, harts).unwrap()
    }

    #[test]
    fn secondary_harts_boot_with_the_host_image() {
        let mut smp = boot(TeeFlavor::PenglaiHpmp, 4);
        let monitor_region = smp.monitor().monitor_region();
        for hart in 0..4 {
            assert_eq!(smp.scheduled(hart), DomainId::HOST);
            // Every hart's entry 0 protects the monitor.
            let m = smp.machine(hart);
            assert_eq!(m.regs().entry_region(0), Some(monitor_region));
        }
    }

    #[test]
    fn enclave_schedulable_on_one_hart_only() {
        let mut smp = boot(TeeFlavor::PenglaiHpmp, 2);
        let (id, _) = smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
        smp.switch_on(0, id).unwrap();
        assert_eq!(
            smp.switch_on(1, id),
            Err(MonitorError::AlreadyScheduled(id))
        );
        // The host can run anywhere, including alongside itself.
        smp.switch_on(1, DomainId::HOST).unwrap();
        // Once hart 0 leaves the enclave, hart 1 may enter it.
        smp.switch_on(0, DomainId::HOST).unwrap();
        smp.switch_on(1, id).unwrap();
    }

    #[test]
    fn alloc_reprograms_the_hart_running_the_domain() {
        // Domain runs on hart 1; a grant driven from hart 0 must land in
        // hart 1's register image via the Reprogram IPI.
        let mut smp = boot(TeeFlavor::PenglaiHpmp, 2);
        let (id, _) = smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
        smp.switch_on(1, id).unwrap();
        let (region, _) = smp.alloc_on(0, id, 1 << 20, GmsLabel::Fast).unwrap();
        // A Fast GMS becomes a segment in the running image under HPMP:
        // hart 1 must now carry it.
        let carries =
            |m: &Machine| (0..m.regs().len()).any(|i| m.regs().entry_region(i) == Some(region));
        assert!(
            carries(smp.mh.peek(1)),
            "remote hart's image missed the reprogram IPI"
        );
        assert!(
            !carries(smp.mh.peek(0)),
            "host hart must not carry the enclave's segment"
        );
        let snap = smp.metrics_snapshot();
        assert!(snap.value("hart.1.shootdowns") >= 1);
        assert!(snap.value("hart.0.fence_stall_cycles") > 0);
    }

    #[test]
    fn destroy_while_scheduled_elsewhere_parks_that_hart_in_the_host() {
        let mut smp = boot(TeeFlavor::PenglaiHpmp, 2);
        let (id, _) = smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
        smp.switch_on(1, id).unwrap();
        smp.destroy_domain_on(0, id).unwrap();
        assert_eq!(smp.scheduled(1), DomainId::HOST);
        // And the parked hart's oracle answer is the host's.
        let probe = PhysAddr::new(RAM.base.raw() + (1 << 29));
        assert!(smp.oracle_check_on(1, probe, AccessKind::Read));
    }

    #[test]
    fn suppressed_shootdowns_leave_remote_images_stale() {
        let mut smp = boot(TeeFlavor::PenglaiPmp, 2);
        let before: Vec<_> = {
            let m = smp.mh.peek(1);
            (0..m.regs().len()).map(|i| m.regs().addr_reg(i)).collect()
        };
        smp.set_shootdown_suppression(true);
        // A new enclave region must appear as a deny entry in every
        // PMP-flavour host image — but the IPI never arrives.
        smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
        let after: Vec<_> = {
            let m = smp.mh.peek(1);
            (0..m.regs().len()).map(|i| m.regs().addr_reg(i)).collect()
        };
        assert_eq!(before, after, "suppression must freeze the remote image");
        let snap = smp.metrics_snapshot();
        assert_eq!(snap.value("hart.1.ipis_received"), 0);
    }

    #[test]
    fn single_hart_smp_matches_plain_monitor_costs() {
        // With one hart there is nobody to shoot down: op costs must equal
        // the single-hart monitor's exactly.
        let mut smp = boot(TeeFlavor::PenglaiHpmp, 1);
        let mut machine = Machine::new(MachineConfig::rocket());
        let mut mon = SecureMonitor::boot(&mut machine, TeeFlavor::PenglaiHpmp, RAM).unwrap();

        let (id_smp, c_smp) = smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
        let (id_mon, c_mon) = mon
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        assert_eq!(id_smp, id_mon);
        assert_eq!(c_smp, c_mon);
        assert_eq!(
            smp.switch_on(0, id_smp).unwrap(),
            mon.switch_to(&mut machine, id_mon).unwrap()
        );
    }

    #[test]
    fn ops_emit_causally_linked_shootdown_spans() {
        let mut smp = boot(TeeFlavor::PenglaiHpmp, 3);
        smp.enable_spans(1 << 16);
        let (id, cycles) = smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();

        let spans = smp.spans().spans().to_vec();
        let root = spans
            .iter()
            .find(|s| s.kind == SpanKind::CreateDomain)
            .expect("op span emitted");
        assert_eq!(root.hart, 0);
        assert_eq!(root.domain, Some(id.0));
        assert_eq!(root.cycles(), cycles, "op span covers the whole op");
        let recv: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::ShootdownRecv && s.parent == Some(root.id))
            .collect();
        assert_eq!(recv.len(), 2, "one umbrella per remote hart");
        // The sender's stall is exactly the slowest receiver umbrella.
        let snap = smp.metrics_snapshot();
        let slowest = recv.iter().map(|s| s.cycles()).max().unwrap();
        assert_eq!(snap.value("hart.0.fence_stall_cycles"), slowest);
        // Each umbrella decomposes into trap + fence (+ reprogram), and
        // the phase children sum to the umbrella minus the flight.
        for r in &recv {
            let phases: u64 = spans
                .iter()
                .filter(|s| s.parent == Some(r.id))
                .map(|s| s.cycles())
                .sum();
            assert_eq!(
                phases,
                r.cycles() - smp.machines().shootdown_cost().ipi_latency,
                "umbrella = flight + its phases"
            );
        }
        assert_eq!(snap.value("trace.dropped.spans"), 0);
        assert_eq!(snap.value("trace.spans"), spans.len() as u64);
    }

    #[test]
    fn span_overflow_is_counted_in_snapshots() {
        let mut smp = boot(TeeFlavor::PenglaiHpmp, 2);
        smp.enable_spans(1);
        smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
        let snap = smp.metrics_snapshot();
        assert_eq!(snap.value("trace.spans"), 1);
        assert!(snap.value("trace.dropped.spans") > 0, "overflow must count");
    }

    #[test]
    fn spans_do_not_perturb_costs_or_counters() {
        let run = |spans: bool| {
            let mut smp = boot(TeeFlavor::PenglaiHpmp, 2);
            if spans {
                smp.enable_spans(1 << 16);
            }
            let (id, c1) = smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
            let c2 = smp.switch_on(1, id).unwrap();
            let (_, c3) = smp.alloc_on(0, id, 1 << 20, GmsLabel::Fast).unwrap();
            (c1 + c2 + c3, smp.metrics_snapshot())
        };
        let (cycles_off, snap_off) = run(false);
        let (cycles_on, snap_on) = run(true);
        assert_eq!(cycles_off, cycles_on, "observation must not change costs");
        // Everything except the telemetry layer's own trace.* accounting
        // must be identical.
        let strip = |s: &Snapshot| -> Vec<(String, u64)> {
            s.iter()
                .filter(|(k, _)| !k.starts_with("trace."))
                .map(|(k, v)| (k.to_string(), v))
                .collect()
        };
        assert_eq!(strip(&snap_off), strip(&snap_on));
    }

    #[test]
    fn verify_accounting_holds_after_churn() {
        let mut smp = boot(TeeFlavor::PenglaiHpmp, 3);
        let (id, _) = smp.create_domain_on(0, 1 << 20, GmsLabel::Slow).unwrap();
        smp.switch_on(1, id).unwrap();
        let (region, _) = smp.alloc_on(0, id, 1 << 20, GmsLabel::Fast).unwrap();
        smp.free_on(0, id, region.base).unwrap();
        smp.verify_accounting().expect("counters must reconcile");
    }

    #[test]
    fn host_memory_is_shared_across_harts() {
        let mut smp = boot(TeeFlavor::PenglaiHpmp, 3);
        let addr = PhysAddr::new(RAM.base.raw() + (1 << 28));
        smp.machine(0).phys_mut().write_u64(addr, 0xabcd);
        assert_eq!(smp.machine(2).phys().read_u64(addr), 0xabcd);
        // Permission answer agrees everywhere while all run the host.
        for hart in 0..3 {
            assert!(smp.oracle_check_on(hart, addr, AccessKind::Write));
        }
    }
}
