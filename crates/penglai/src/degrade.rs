//! Staged degradation under GMS exhaustion.
//!
//! The monitor's allocation path runs a four-stage state machine instead
//! of failing outright when the fast path runs dry (DESIGN.md §12):
//!
//! * **Stage 0 — normal.** NAPOT-aligned first-fit from the region pool;
//!   the label the caller asked for is honoured.
//! * **Stage 1 — compacting.** A NAPOT fit failed: relocate movable GMS
//!   regions downward to merge free holes (with modeled copy costs and
//!   cross-hart shootdowns), then retry.
//! * **Stage 2 — table-only.** Compaction could not produce an aligned
//!   hole: new allocations degrade to exact-fit, page-aligned, forcibly
//!   [`crate::gms::GmsLabel::Slow`] regions that only the permission table
//!   backs. The table flavours lose speed, never correctness; the PMP
//!   flavour has no table to fall back on and skips this stage.
//! * **Stage 3 — admission control.** Even exact-fit failed: allocation
//!   returns the typed backpressure error
//!   [`crate::monitor::MonitorError::ResourceExhausted`] telling callers
//!   how long to back off, instead of a dead monitor.
//!
//! Recovery is hysteresis-based: once the pool's largest free range has
//! stayed above [`DegradationPolicy::healthy_free`] for
//! [`DegradationPolicy::promote_after`] consecutive settled operations,
//! the stage steps down by one. A successful exact-fit under stage 3 also
//! steps straight back to stage 2 (the monitor is serving again).

/// The degradation stage the monitor is currently in. Ordered: a higher
/// stage is strictly more degraded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeStage {
    /// Fast NAPOT allocation (stage 0).
    #[default]
    Normal,
    /// Allocation failures trigger segment compaction (stage 1).
    Compacting,
    /// New allocations degrade to exact-fit table-only regions (stage 2).
    TableOnly,
    /// Admission control: allocations are refused with backpressure
    /// (stage 3).
    Admission,
}

impl DegradeStage {
    /// The stage as the small integer used in counters and stdout.
    pub fn level(self) -> u8 {
        match self {
            DegradeStage::Normal => 0,
            DegradeStage::Compacting => 1,
            DegradeStage::TableOnly => 2,
            DegradeStage::Admission => 3,
        }
    }

    fn from_level(level: u8) -> DegradeStage {
        match level {
            0 => DegradeStage::Normal,
            1 => DegradeStage::Compacting,
            2 => DegradeStage::TableOnly,
            _ => DegradeStage::Admission,
        }
    }
}

impl std::fmt::Display for DegradeStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradeStage::Normal => "normal",
            DegradeStage::Compacting => "compacting",
            DegradeStage::TableOnly => "table-only",
            DegradeStage::Admission => "admission",
        })
    }
}

/// Tunable thresholds of the degradation state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Consecutive healthy settled operations required before the stage
    /// steps down by one.
    pub promote_after: u32,
    /// The pool's largest free range must be at least this large for an
    /// operation to count as healthy.
    pub healthy_free: u64,
    /// Advertised backoff carried by
    /// [`crate::monitor::MonitorError::ResourceExhausted`]: callers should
    /// retry after roughly this many operations of churn.
    pub retry_after_ops: u64,
}

impl Default for DegradationPolicy {
    fn default() -> DegradationPolicy {
        DegradationPolicy {
            promote_after: 24,
            healthy_free: 4 << 20,
            retry_after_ops: 16,
        }
    }
}

/// The live state machine: current stage plus the hysteresis streak.
#[derive(Clone, Debug, Default)]
pub(crate) struct DegradeState {
    stage: DegradeStage,
    healthy_streak: u32,
    pub(crate) policy: DegradationPolicy,
}

impl DegradeState {
    pub(crate) fn new(policy: DegradationPolicy) -> DegradeState {
        DegradeState {
            stage: DegradeStage::Normal,
            healthy_streak: 0,
            policy,
        }
    }

    pub(crate) fn stage(&self) -> DegradeStage {
        self.stage
    }

    /// The current hysteresis streak, for state fingerprinting: two
    /// monitors at the same stage but different streaks are *not*
    /// equivalent (one is closer to promotion), so the model checker must
    /// distinguish them.
    pub(crate) fn healthy_streak(&self) -> u32 {
        self.healthy_streak
    }

    /// Raises the stage to `to` if it is currently lower. Returns true
    /// when this was a genuine transition (for counting stage entries).
    pub(crate) fn escalate(&mut self, to: DegradeStage) -> bool {
        if self.stage >= to {
            return false;
        }
        self.stage = to;
        self.healthy_streak = 0;
        true
    }

    /// Drops the stage to `to` if it is currently higher (stage-3 exit via
    /// a successful exact-fit). Returns true on a genuine transition.
    pub(crate) fn recover_to(&mut self, to: DegradeStage) -> bool {
        if self.stage <= to {
            return false;
        }
        self.stage = to;
        self.healthy_streak = 0;
        true
    }

    /// Feeds one settled operation into the hysteresis: `largest_free` is
    /// the pool's current largest free range. Returns true when the streak
    /// just promoted the monitor one stage back toward normal.
    pub(crate) fn settle(&mut self, largest_free: u64) -> bool {
        if self.stage == DegradeStage::Normal {
            self.healthy_streak = 0;
            return false;
        }
        if largest_free < self.policy.healthy_free {
            self.healthy_streak = 0;
            return false;
        }
        self.healthy_streak += 1;
        if self.healthy_streak < self.policy.promote_after {
            return false;
        }
        self.stage = DegradeStage::from_level(self.stage.level() - 1);
        self.healthy_streak = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_ordered_and_level_round_trips() {
        let all = [
            DegradeStage::Normal,
            DegradeStage::Compacting,
            DegradeStage::TableOnly,
            DegradeStage::Admission,
        ];
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.level(), i as u8);
            assert_eq!(DegradeStage::from_level(i as u8), *s);
        }
        assert!(DegradeStage::Normal < DegradeStage::Admission);
    }

    #[test]
    fn escalate_only_raises() {
        let mut d = DegradeState::new(DegradationPolicy::default());
        assert!(d.escalate(DegradeStage::TableOnly));
        assert!(!d.escalate(DegradeStage::Compacting), "never lowers");
        assert!(!d.escalate(DegradeStage::TableOnly), "no re-entry count");
        assert!(d.escalate(DegradeStage::Admission));
        assert_eq!(d.stage(), DegradeStage::Admission);
    }

    #[test]
    fn hysteresis_promotes_one_stage_per_streak() {
        let policy = DegradationPolicy {
            promote_after: 3,
            healthy_free: 1 << 20,
            retry_after_ops: 8,
        };
        let mut d = DegradeState::new(policy);
        d.escalate(DegradeStage::TableOnly);
        // Two healthy ops then a lean one: streak resets.
        assert!(!d.settle(2 << 20));
        assert!(!d.settle(2 << 20));
        assert!(!d.settle(0));
        assert_eq!(d.stage(), DegradeStage::TableOnly);
        // Three healthy ops in a row: one step down, not two.
        assert!(!d.settle(2 << 20));
        assert!(!d.settle(2 << 20));
        assert!(d.settle(2 << 20));
        assert_eq!(d.stage(), DegradeStage::Compacting);
        assert!(!d.settle(2 << 20));
        assert!(!d.settle(2 << 20));
        assert!(d.settle(2 << 20));
        assert_eq!(d.stage(), DegradeStage::Normal);
        // At normal the streak is moot.
        assert!(!d.settle(2 << 20));
    }

    /// Boundary: `healthy_free` is inclusive. A pool whose largest hole is
    /// exactly the threshold counts as healthy; one byte less resets the
    /// streak to zero (not merely pauses it).
    #[test]
    fn healthy_free_boundary_is_inclusive() {
        let policy = DegradationPolicy {
            promote_after: 2,
            healthy_free: 1 << 20,
            retry_after_ops: 8,
        };
        let mut d = DegradeState::new(policy);
        d.escalate(DegradeStage::Compacting);
        // One byte short is never healthy, no matter how often.
        for _ in 0..5 {
            assert!(!d.settle((1 << 20) - 1));
        }
        assert_eq!(d.stage(), DegradeStage::Compacting);
        assert_eq!(d.healthy_streak(), 0, "lean settles must reset, not pause");
        // Exactly at the threshold is healthy.
        assert!(!d.settle(1 << 20));
        assert_eq!(d.healthy_streak(), 1);
        // A lean op in between throws the whole streak away…
        assert!(!d.settle((1 << 20) - 1));
        assert_eq!(d.healthy_streak(), 0);
        // …so promotion needs the full count again.
        assert!(!d.settle(1 << 20));
        assert!(d.settle(1 << 20));
        assert_eq!(d.stage(), DegradeStage::Normal);
    }

    /// Boundary: `promote_after` is an exact count — `promote_after - 1`
    /// healthy ops do nothing, the `promote_after`-th promotes, and the
    /// streak restarts from zero for the next stage.
    #[test]
    fn promote_after_is_an_exact_count() {
        let policy = DegradationPolicy {
            promote_after: 5,
            healthy_free: 4096,
            retry_after_ops: 8,
        };
        let mut d = DegradeState::new(policy);
        d.escalate(DegradeStage::Admission);
        for i in 0..4 {
            assert!(!d.settle(8192), "op {i} promoted one short of the count");
        }
        assert_eq!(d.stage(), DegradeStage::Admission);
        assert!(d.settle(8192), "the promote_after-th op must promote");
        assert_eq!(d.stage(), DegradeStage::TableOnly);
        // The streak restarted: four more ops are again not enough.
        for _ in 0..4 {
            assert!(!d.settle(8192));
        }
        assert_eq!(d.stage(), DegradeStage::TableOnly);
        assert!(d.settle(8192));
        assert_eq!(d.stage(), DegradeStage::Compacting);
    }

    /// Boundary: escalation zeroes a built streak — progress toward
    /// promotion at one stage must not carry into a deeper stage.
    #[test]
    fn a_streak_does_not_survive_escalation() {
        let policy = DegradationPolicy {
            promote_after: 3,
            healthy_free: 4096,
            retry_after_ops: 8,
        };
        let mut d = DegradeState::new(policy);
        d.escalate(DegradeStage::Compacting);
        assert!(!d.settle(8192));
        assert!(!d.settle(8192));
        assert_eq!(d.healthy_streak(), 2);
        d.escalate(DegradeStage::Admission);
        assert_eq!(d.healthy_streak(), 0, "escalation must zero the streak");
        // Two healthy ops (the would-be third of the old streak) are no
        // longer enough.
        assert!(!d.settle(8192));
        assert!(!d.settle(8192));
        assert_eq!(d.stage(), DegradeStage::Admission);
        assert!(d.settle(8192));
        assert_eq!(d.stage(), DegradeStage::TableOnly);
    }

    /// Degenerate boundary: `promote_after = 1` promotes one stage per
    /// healthy settle, never more — and at normal, settles stay no-ops.
    #[test]
    fn promote_after_one_steps_one_stage_per_settle() {
        let policy = DegradationPolicy {
            promote_after: 1,
            healthy_free: 4096,
            retry_after_ops: 8,
        };
        let mut d = DegradeState::new(policy);
        d.escalate(DegradeStage::Admission);
        assert!(d.settle(8192));
        assert_eq!(d.stage(), DegradeStage::TableOnly);
        assert!(d.settle(8192));
        assert_eq!(d.stage(), DegradeStage::Compacting);
        assert!(d.settle(8192));
        assert_eq!(d.stage(), DegradeStage::Normal);
        assert!(!d.settle(8192), "no promotion below normal");
        assert_eq!(d.stage(), DegradeStage::Normal);
    }

    #[test]
    fn recover_to_models_stage3_exit() {
        let mut d = DegradeState::new(DegradationPolicy::default());
        d.escalate(DegradeStage::Admission);
        assert!(d.recover_to(DegradeStage::TableOnly));
        assert!(!d.recover_to(DegradeStage::TableOnly));
        assert_eq!(d.stage(), DegradeStage::TableOnly);
    }
}
