//! Enclave measurement and attestation.
//!
//! Penglai's monitor is loaded and verified by the boot ROM (secure boot)
//! and manages enclave deployment, which includes *measuring* an enclave's
//! initial memory so a remote party can check what is running. The model:
//! the monitor hashes the enclave's initial region(s) page by page (reusing
//! the Merkle leaf hash), binds the measurement to the domain id and a
//! monotonic nonce, and tags the report with a key only the monitor holds.
//! The tag stands in for a signature — verifying it requires asking the
//! monitor, exactly like a local attestation flow.

use hpmp_machine::Machine;
use hpmp_memsim::{PhysAddr, PAGE_SIZE};
use hpmp_trace::TraceSink;

use crate::monitor::{cost, DomainId, MonitorError, SecureMonitor};

/// An attestation report for one domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttestationReport {
    /// The attested domain.
    pub domain: DomainId,
    /// Hash of the domain's memory at measurement time.
    pub measurement: u64,
    /// Monotonic freshness counter bound into the tag.
    pub nonce: u64,
    /// Monitor authentication tag over (domain, measurement, nonce).
    pub tag: u64,
}

/// Why report verification failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttestError {
    /// The tag does not match the report body (forged or corrupted).
    BadTag,
    /// The measurement does not match the monitor's records for the domain.
    MeasurementMismatch,
    /// The domain is unknown (destroyed since measurement).
    UnknownDomain(DomainId),
}

impl std::fmt::Display for AttestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestError::BadTag => f.write_str("report tag invalid"),
            AttestError::MeasurementMismatch => f.write_str("measurement mismatch"),
            AttestError::UnknownDomain(d) => write!(f, "unknown domain {d}"),
        }
    }
}

impl std::error::Error for AttestError {}

fn fnv_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for shift in (0..64).step_by(8) {
            hash ^= (w >> shift) & 0xff;
            hash = hash.wrapping_mul(0x1_0000_01b3);
        }
    }
    hash
}

/// Monitor-held attestation state: the device key (provisioned at secure
/// boot) and recorded measurements.
#[derive(Debug)]
pub struct Attestor {
    device_key: u64,
    nonce: u64,
    measurements: Vec<(DomainId, u64)>,
}

impl Attestor {
    /// Provisions the attestor with a device key (burned in at
    /// manufacturing; any value works for the model).
    pub fn new(device_key: u64) -> Attestor {
        Attestor {
            device_key,
            nonce: 0,
            measurements: Vec::new(),
        }
    }

    /// Measures `domain`'s memory (every page of every GMS it owns) and
    /// records the result. Returns `(measurement, cycles)` — the cycle cost
    /// models the hash engine at ~1 cycle per word plus monitor overhead.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains.
    pub fn measure<S: TraceSink>(
        &mut self,
        machine: &Machine<S>,
        monitor: &SecureMonitor,
        domain: DomainId,
    ) -> Result<(u64, u64), MonitorError> {
        let mut page_hashes = Vec::new();
        let mut pages = 0u64;
        for gms in monitor.regions_of(domain)? {
            let region = gms.region;
            for p in 0..region.size / PAGE_SIZE {
                let base = PhysAddr::new(region.base.raw() + p * PAGE_SIZE);
                page_hashes.push(fnv_words(
                    (0..PAGE_SIZE / 8).map(|i| machine.phys().read_u64(base + i * 8)),
                ));
                pages += 1;
            }
        }
        let measurement = fnv_words(page_hashes);
        self.measurements.retain(|(d, _)| *d != domain);
        self.measurements.push((domain, measurement));
        let cycles = cost::TRAP_ROUND_TRIP + pages * (PAGE_SIZE / 8) + cost::BOOKKEEPING;
        Ok((measurement, cycles))
    }

    /// Produces a fresh report for a previously measured domain.
    ///
    /// # Errors
    ///
    /// Fails if the domain was never measured.
    pub fn attest(&mut self, domain: DomainId) -> Result<AttestationReport, AttestError> {
        let measurement = self
            .measurements
            .iter()
            .find(|(d, _)| *d == domain)
            .map(|(_, m)| *m)
            .ok_or(AttestError::UnknownDomain(domain))?;
        self.nonce += 1;
        let nonce = self.nonce;
        Ok(AttestationReport {
            domain,
            measurement,
            nonce,
            tag: self.tag(domain, measurement, nonce),
        })
    }

    /// Verifies a report: the tag must authenticate the body, and the body
    /// must match the recorded measurement.
    ///
    /// # Errors
    ///
    /// Returns the specific failure so callers can distinguish forgery from
    /// re-measured (changed) enclaves.
    pub fn verify(&self, report: &AttestationReport) -> Result<(), AttestError> {
        if report.tag != self.tag(report.domain, report.measurement, report.nonce) {
            return Err(AttestError::BadTag);
        }
        let recorded = self
            .measurements
            .iter()
            .find(|(d, _)| *d == report.domain)
            .map(|(_, m)| *m)
            .ok_or(AttestError::UnknownDomain(report.domain))?;
        if recorded != report.measurement {
            return Err(AttestError::MeasurementMismatch);
        }
        Ok(())
    }

    fn tag(&self, domain: DomainId, measurement: u64, nonce: u64) -> u64 {
        fnv_words([self.device_key, domain.0 as u64, measurement, nonce])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gms::GmsLabel;
    use crate::monitor::TeeFlavor;
    use hpmp_core::PmpRegion;
    use hpmp_machine::MachineConfig;

    const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

    fn boot() -> (Machine, SecureMonitor, Attestor, DomainId) {
        let mut machine = Machine::new(MachineConfig::rocket());
        let mut monitor =
            SecureMonitor::boot(&mut machine, TeeFlavor::PenglaiHpmp, RAM).expect("monitor boots");
        let (domain, _) = monitor
            .create_domain(&mut machine, 64 * 1024, GmsLabel::Slow)
            .unwrap();
        (machine, monitor, Attestor::new(0x5ec2e7), domain)
    }

    #[test]
    fn measure_attest_verify_round_trip() {
        let (machine, monitor, mut attestor, domain) = boot();
        let (m, cycles) = attestor.measure(&machine, &monitor, domain).unwrap();
        assert!(cycles > 0);
        let report = attestor.attest(domain).unwrap();
        assert_eq!(report.measurement, m);
        attestor.verify(&report).expect("genuine report verifies");
    }

    #[test]
    fn forged_tag_rejected() {
        let (machine, monitor, mut attestor, domain) = boot();
        attestor.measure(&machine, &monitor, domain).unwrap();
        let mut report = attestor.attest(domain).unwrap();
        report.tag ^= 1;
        assert_eq!(attestor.verify(&report), Err(AttestError::BadTag));
    }

    #[test]
    fn tampered_measurement_rejected() {
        let (machine, monitor, mut attestor, domain) = boot();
        attestor.measure(&machine, &monitor, domain).unwrap();
        let mut report = attestor.attest(domain).unwrap();
        // An attacker cannot fix the tag without the device key, but even
        // if measurements leak, substituting one fails the tag first; with
        // a "re-signed" (same-attestor) report, the mismatch is caught.
        report.measurement ^= 0xff;
        assert_eq!(attestor.verify(&report), Err(AttestError::BadTag));
    }

    #[test]
    fn memory_change_changes_measurement() {
        let (mut machine, monitor, mut attestor, domain) = boot();
        let (before, _) = attestor.measure(&machine, &monitor, domain).unwrap();
        let base = monitor.regions_of(domain).unwrap()[0].region.base;
        machine.phys_mut().write_u64(base + 0x100, 0x1234);
        let (after, _) = attestor.measure(&machine, &monitor, domain).unwrap();
        assert_ne!(before, after, "measurement must track memory contents");
    }

    #[test]
    fn nonces_are_fresh() {
        let (machine, monitor, mut attestor, domain) = boot();
        attestor.measure(&machine, &monitor, domain).unwrap();
        let a = attestor.attest(domain).unwrap();
        let b = attestor.attest(domain).unwrap();
        assert_ne!(a.nonce, b.nonce);
        assert_ne!(a.tag, b.tag, "tags bind the nonce");
        attestor.verify(&a).unwrap();
        attestor.verify(&b).unwrap();
    }

    #[test]
    fn unmeasured_domain_rejected() {
        let (_, _, mut attestor, _) = boot();
        assert_eq!(
            attestor.attest(DomainId(99)),
            Err(AttestError::UnknownDomain(DomainId(99)))
        );
    }
}
