//! Inter-enclave communication (Figure 7).
//!
//! Penglai provides monitor-mediated channels between domains. The model:
//! the monitor allocates a shared buffer from protected memory, grants it
//! RW to exactly the two endpoints (in their permission tables, or as a
//! shared segment under the PMP flavour), and messages are copied through
//! the machine so the cost is real memory traffic plus the monitor's trap
//! overhead. Third domains never gain access — verified by the tests and
//! by `tests/security.rs`.

use hpmp_machine::Machine;
use hpmp_memsim::{AccessKind, Perms, PhysAddr, PrivMode, PAGE_SIZE};
use hpmp_trace::TraceSink;

use crate::monitor::{cost, DomainId, MonitorError, SecureMonitor};

/// Identifier of an IPC channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

/// One monitor-mediated channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Channel {
    /// The channel's id.
    pub id: ChannelId,
    /// First endpoint.
    pub a: DomainId,
    /// Second endpoint.
    pub b: DomainId,
    /// The shared buffer (one page).
    pub buffer: PhysAddr,
    /// Bytes of the pending message (0 = empty).
    pub pending: u64,
    /// Which endpoint wrote the pending message.
    pub sender: DomainId,
}

/// Monitor-mediated IPC state. Owned next to the [`SecureMonitor`]; methods
/// take the monitor and machine explicitly, mirroring the ecall interface.
#[derive(Debug, Default)]
pub struct IpcTable {
    channels: Vec<Channel>,
    next_id: u32,
}

/// Errors from IPC operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpcError {
    /// Unknown channel.
    NoSuchChannel(ChannelId),
    /// The calling domain is not an endpoint.
    NotEndpoint(DomainId),
    /// A message is already pending (the buffer is single-slot).
    Busy,
    /// No message is pending.
    Empty,
    /// The message exceeds the one-page buffer.
    TooLarge(u64),
    /// Monitor-side failure (allocation, programming).
    Monitor(MonitorError),
}

impl std::fmt::Display for IpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpcError::NoSuchChannel(id) => write!(f, "no such channel {id:?}"),
            IpcError::NotEndpoint(d) => write!(f, "domain {d} is not an endpoint"),
            IpcError::Busy => f.write_str("channel busy (message pending)"),
            IpcError::Empty => f.write_str("channel empty"),
            IpcError::TooLarge(n) => write!(f, "message of {n} bytes exceeds one page"),
            IpcError::Monitor(e) => write!(f, "monitor failure: {e}"),
        }
    }
}

impl std::error::Error for IpcError {}

impl From<MonitorError> for IpcError {
    fn from(e: MonitorError) -> IpcError {
        IpcError::Monitor(e)
    }
}

impl IpcTable {
    /// Creates an empty table.
    pub fn new() -> IpcTable {
        IpcTable::default()
    }

    /// Lists the channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Creates a channel between `a` and `b`: allocates a one-page shared
    /// buffer and grants it to both endpoints' permission tables. Returns
    /// the id and cycle cost.
    ///
    /// # Errors
    ///
    /// Fails if either domain is unknown or memory runs out.
    pub fn create<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        monitor: &mut SecureMonitor,
        a: DomainId,
        b: DomainId,
    ) -> Result<(ChannelId, u64), IpcError> {
        // The buffer comes from the monitor's region allocator, owned by
        // neither endpoint; grants are added to both tables below.
        let (region, mut cycles) = monitor.alloc_shared_buffer(machine, a, b, PAGE_SIZE)?;
        cycles += cost::TRAP_ROUND_TRIP;
        let id = ChannelId(self.next_id);
        self.next_id += 1;
        self.channels.push(Channel {
            id,
            a,
            b,
            buffer: region,
            pending: 0,
            sender: a,
        });
        Ok((id, cycles))
    }

    /// Sends `bytes` from `from` over the channel: copies through the
    /// shared buffer via the kernel direct map. Returns the cycle cost.
    ///
    /// # Errors
    ///
    /// Fails if the caller is not an endpoint, a message is pending, or the
    /// message exceeds one page.
    pub fn send<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        id: ChannelId,
        from: DomainId,
        bytes: u64,
    ) -> Result<u64, IpcError> {
        if bytes > PAGE_SIZE {
            return Err(IpcError::TooLarge(bytes));
        }
        let channel = self.channel_mut(id)?;
        if channel.a != from && channel.b != from {
            return Err(IpcError::NotEndpoint(from));
        }
        if channel.pending > 0 {
            return Err(IpcError::Busy);
        }
        channel.pending = bytes;
        channel.sender = from;
        let buffer = channel.buffer;
        Ok(cost::TRAP_ROUND_TRIP + Self::copy_cost(machine, buffer, bytes))
    }

    /// Receives the pending message at `to`, draining the slot. Returns
    /// `(bytes, cycles)`.
    ///
    /// # Errors
    ///
    /// Fails if the caller is not the *other* endpoint or nothing is
    /// pending.
    pub fn recv<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        id: ChannelId,
        to: DomainId,
    ) -> Result<(u64, u64), IpcError> {
        let channel = self.channel_mut(id)?;
        if channel.a != to && channel.b != to {
            return Err(IpcError::NotEndpoint(to));
        }
        if channel.pending == 0 {
            return Err(IpcError::Empty);
        }
        if channel.sender == to {
            return Err(IpcError::Empty); // cannot receive your own message
        }
        let bytes = channel.pending;
        channel.pending = 0;
        let buffer = channel.buffer;
        Ok((
            bytes,
            cost::TRAP_ROUND_TRIP + Self::copy_cost(machine, buffer, bytes),
        ))
    }

    /// Prices the buffer copy as real memory traffic (M-mode copies via
    /// physical addresses; the monitor is exempt from HPMP checks).
    fn copy_cost<S: TraceSink>(machine: &mut Machine<S>, buffer: PhysAddr, bytes: u64) -> u64 {
        let mut cycles = 0;
        let lines = bytes.div_ceil(64).max(1);
        for i in 0..lines {
            // M-mode access: direct physical, checked (and allowed) by HPMP.
            let regs_allow = machine
                .regs()
                .check(
                    machine.phys(),
                    &mut hpmp_core::PmptwCache::disabled(),
                    buffer + i * 64,
                    AccessKind::Write,
                    PrivMode::Machine,
                )
                .allowed;
            debug_assert!(regs_allow, "monitor copies are M-mode");
            cycles += machine.run_compute(4);
        }
        cycles + bytes / 8 // word moves
    }

    fn channel_mut(&mut self, id: ChannelId) -> Result<&mut Channel, IpcError> {
        self.channels
            .iter_mut()
            .find(|c| c.id == id)
            .ok_or(IpcError::NoSuchChannel(id))
    }
}

impl SecureMonitor {
    /// Allocates a one-page shared buffer granted RW to both `a` and `b`
    /// (IPC support). Returns the buffer base and the cycle cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains or exhausted memory.
    pub fn alloc_shared_buffer<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        a: DomainId,
        b: DomainId,
        len: u64,
    ) -> Result<(PhysAddr, u64), MonitorError> {
        // Internal allocation: carve from the region cursor without making
        // it a domain GMS (the monitor owns it; endpoints get table grants).
        let (region, mut cycles) = self.alloc_monitor_buffer(len)?;
        for domain in [a, b] {
            cycles += self.grant_in_domain_table(machine, domain, region, Perms::RW)?;
        }
        machine.sfence_vma_all();
        cycles += cost::FENCE;
        Ok((region.base, cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_core::PmpRegion;
    use hpmp_machine::MachineConfig;
    use hpmp_penglai_test_support::*;

    /// Minimal local support to avoid a cyclic dev-dependency.
    mod hpmp_penglai_test_support {
        pub use crate::gms::GmsLabel;
        pub use crate::monitor::TeeFlavor;
    }

    const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

    fn boot() -> (Machine, SecureMonitor, IpcTable, DomainId, DomainId) {
        let mut machine = Machine::new(MachineConfig::rocket());
        let mut monitor =
            SecureMonitor::boot(&mut machine, TeeFlavor::PenglaiHpmp, RAM).expect("monitor boots");
        let (a, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let (b, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        (machine, monitor, IpcTable::new(), a, b)
    }

    #[test]
    fn round_trip_message() {
        let (mut machine, mut monitor, mut ipc, a, b) = boot();
        let (ch, _) = ipc
            .create(&mut machine, &mut monitor, a, b)
            .expect("create");
        let send_cost = ipc.send(&mut machine, ch, a, 256).expect("send");
        assert!(send_cost > 0);
        let (bytes, recv_cost) = ipc.recv(&mut machine, ch, b).expect("recv");
        assert_eq!(bytes, 256);
        assert!(recv_cost > 0);
        // Drained: a second recv reports empty.
        assert_eq!(ipc.recv(&mut machine, ch, b), Err(IpcError::Empty));
    }

    #[test]
    fn single_slot_backpressure() {
        let (mut machine, mut monitor, mut ipc, a, b) = boot();
        let (ch, _) = ipc
            .create(&mut machine, &mut monitor, a, b)
            .expect("create");
        ipc.send(&mut machine, ch, a, 64).expect("first send");
        assert_eq!(ipc.send(&mut machine, ch, b, 64), Err(IpcError::Busy));
        ipc.recv(&mut machine, ch, b).expect("drain");
        ipc.send(&mut machine, ch, b, 64).expect("now free");
    }

    #[test]
    fn endpoints_only() {
        let (mut machine, mut monitor, mut ipc, a, b) = boot();
        let (c, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let (ch, _) = ipc
            .create(&mut machine, &mut monitor, a, b)
            .expect("create");
        assert_eq!(
            ipc.send(&mut machine, ch, c, 64),
            Err(IpcError::NotEndpoint(c))
        );
        ipc.send(&mut machine, ch, a, 64).expect("send");
        assert_eq!(ipc.recv(&mut machine, ch, c), Err(IpcError::NotEndpoint(c)));
        // The sender cannot receive its own message.
        assert_eq!(ipc.recv(&mut machine, ch, a), Err(IpcError::Empty));
    }

    #[test]
    fn buffer_granted_to_both_endpoints_only() {
        use hpmp_memsim::PrivMode;
        let (mut machine, mut monitor, mut ipc, a, b) = boot();
        let (c, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let (ch, _) = ipc
            .create(&mut machine, &mut monitor, a, b)
            .expect("create");
        let buffer = ipc.channels()[0].buffer;
        let mut cache = hpmp_core::PmptwCache::disabled();
        for (domain, expect) in [(a, true), (b, true), (c, false)] {
            monitor.switch_to(&mut machine, domain).expect("switch");
            let out = machine.regs().check(
                machine.phys(),
                &mut cache,
                buffer,
                AccessKind::Write,
                PrivMode::Supervisor,
            );
            assert_eq!(out.allowed, expect, "domain {domain} buffer access");
        }
        let _ = ch;
    }

    #[test]
    fn oversized_message_rejected() {
        let (mut machine, mut monitor, mut ipc, a, b) = boot();
        let (ch, _) = ipc
            .create(&mut machine, &mut monitor, a, b)
            .expect("create");
        assert_eq!(
            ipc.send(&mut machine, ch, a, PAGE_SIZE + 1),
            Err(IpcError::TooLarge(PAGE_SIZE + 1))
        );
    }
}
