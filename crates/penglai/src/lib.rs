//! # hpmp-penglai
//!
//! The software half of the co-design: a simulated Penglai-style secure
//! monitor (M-mode) with the general-memory-segment (GMS) abstraction, the
//! three comparison flavours (Penglai-PMP / Penglai-PMPT / Penglai-HPMP),
//! domain lifecycle and region management (§5, Figure 14), and a small
//! simulated OS kernel whose page-table pages come from a contiguous "fast"
//! pool or a scattered allocator — the ~700-line Linux change the paper
//! describes, reproduced behaviourally.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attest;
mod degrade;
mod gms;
mod ipc;
mod merkle;
mod monitor;
mod os;
mod pool;
mod sdk;
mod smp;

pub use attest::{AttestError, AttestationReport, Attestor};
pub use degrade::{DegradationPolicy, DegradeStage};
pub use gms::{Gms, GmsLabel};
pub use ipc::{Channel, ChannelId, IpcError, IpcTable};
pub use merkle::{IntegrityError, MerkleTree, SUBTREE_PAGES};
pub use monitor::{
    cost, CompactNote, CompactReport, DomainId, MonitorError, MonitorStats, ScrubReport,
    SecureMonitor, TeeFlavor,
};
pub use os::{
    HintId, OsError, OsStats, Pid, PtPlacement, RegionHint, SimOs, KERNEL_DIRECT_MAP,
    USER_CODE_BASE, USER_HEAP_BASE,
};
pub use pool::RegionPool;
pub use sdk::{CallError, EnclaveSdk};
pub use smp::SmpSystem;
