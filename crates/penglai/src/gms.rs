//! The general memory segment (GMS) abstraction (§5).
//!
//! A GMS is a contiguous physical region with one permission and a label.
//! The OS may *label* a GMS "fast" or "slow" as a hint, but cannot change
//! its range or permission — those are enforced by the secure monitor. The
//! monitor backs fast GMSs with HPMP segment entries (higher-priority,
//! cache-like: every GMS is also covered by the permission table, so
//! dropping a segment never changes correctness, only speed).

use hpmp_core::PmpRegion;
use hpmp_memsim::Perms;

/// The OS-provided placement hint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum GmsLabel {
    /// Back with a segment entry if one is free.
    Fast,
    /// Permission-table-only.
    #[default]
    Slow,
}

impl std::fmt::Display for GmsLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GmsLabel::Fast => "fast",
            GmsLabel::Slow => "slow",
        })
    }
}

/// A general memory segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Gms {
    /// The physical region.
    pub region: PmpRegion,
    /// Permission granted to the owning domain.
    pub perms: Perms,
    /// The OS hint; the monitor treats it as advisory.
    pub label: GmsLabel,
}

impl Gms {
    /// Builds a GMS.
    pub fn new(region: PmpRegion, perms: Perms, label: GmsLabel) -> Gms {
        Gms {
            region,
            perms,
            label,
        }
    }

    /// True if the monitor can express this GMS as one NAPOT segment.
    pub fn segment_compatible(&self) -> bool {
        self.region.is_napot()
    }
}

impl std::fmt::Display for Gms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.region, self.perms, self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_memsim::PhysAddr;

    #[test]
    fn labels_and_display() {
        let gms = Gms::new(
            PmpRegion::new(PhysAddr::new(0x8000_0000), 0x10_0000),
            Perms::RW,
            GmsLabel::Fast,
        );
        assert!(gms.segment_compatible());
        assert_eq!(gms.to_string(), "[0x80000000, 0x80100000) rw- fast");
        assert_eq!(GmsLabel::default(), GmsLabel::Slow);
    }

    #[test]
    fn non_napot_region_not_segment_compatible() {
        let gms = Gms::new(
            PmpRegion::new(PhysAddr::new(0x8000_0000), 0x18_0000),
            Perms::RW,
            GmsLabel::Fast,
        );
        assert!(!gms.segment_compatible());
    }
}
