//! The monitor's region-arena allocator.
//!
//! Until PR 9 the arena was a bump cursor: freed regions were never reused,
//! so any long-uptime churn run leaked its way to `OutOfMemory` regardless
//! of how much memory was actually live. This pool replaces it with a
//! sorted, coalescing free list:
//!
//! * `alloc_aligned` is lowest-aligned-first-fit: fully deterministic, and
//!   unlike the bump cursor it also reuses the *alignment gaps* the cursor
//!   left behind whenever a large NAPOT size followed a small one.
//! * `free` coalesces with both neighbours, so destroy/create churn of
//!   equal-sized domains reaches a fixed point instead of fragmenting.
//! * `alloc_at` carves an exact range, which is how segment compaction
//!   reserves a relocation destination it already chose.
//!
//! The pool tracks *free space only*; it holds no ownership information.
//! The monitor's GMS bookkeeping decides what may be returned (top-level
//! GMSs; never sub-GMS aliases of a still-live parent).

use hpmp_memsim::PhysAddr;

/// A sorted, coalescing free list over the monitor's region arena.
#[derive(Clone, Debug)]
pub struct RegionPool {
    /// Disjoint, coalesced `(base, size)` free ranges, sorted by base.
    free: Vec<(u64, u64)>,
}

impl RegionPool {
    /// A pool whose free space is the single range `[base, end)`.
    pub fn new(base: PhysAddr, end: PhysAddr) -> RegionPool {
        assert!(base.raw() <= end.raw(), "inverted pool range");
        let mut free = Vec::new();
        if end.raw() > base.raw() {
            free.push((base.raw(), end.raw() - base.raw()));
        }
        RegionPool { free }
    }

    /// Lowest base at which `size` bytes fit with `align` alignment, or
    /// `None`. Does not carve; see [`RegionPool::alloc_aligned`].
    pub fn lowest_fit(&self, size: u64, align: u64) -> Option<PhysAddr> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        for &(base, len) in &self.free {
            let aligned = base.next_multiple_of(align);
            if aligned + size <= base + len {
                return Some(PhysAddr::new(aligned));
            }
        }
        None
    }

    /// Carves `size` bytes at the lowest aligned fit, returning the base.
    pub fn alloc_aligned(&mut self, size: u64, align: u64) -> Option<PhysAddr> {
        let base = self.lowest_fit(size, align)?;
        assert!(self.alloc_at(base, size), "lowest_fit returned a bad fit");
        Some(base)
    }

    /// Carves the exact range `[base, base + size)` out of the free list.
    /// Returns false (and changes nothing) when the range is not entirely
    /// free.
    pub fn alloc_at(&mut self, base: PhysAddr, size: u64) -> bool {
        let (start, end) = (base.raw(), base.raw() + size);
        let Some(idx) = self
            .free
            .iter()
            .position(|&(b, l)| b <= start && end <= b + l)
        else {
            return false;
        };
        let (b, l) = self.free[idx];
        self.free.remove(idx);
        if end < b + l {
            self.free.insert(idx, (end, b + l - end));
        }
        if b < start {
            self.free.insert(idx, (b, start - b));
        }
        true
    }

    /// Returns `[base, base + size)` to the free list, coalescing with both
    /// neighbours.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the range overlaps existing free space —
    /// that is a double free, and the monitor's ownership bookkeeping is
    /// supposed to make it impossible.
    pub fn free(&mut self, base: PhysAddr, size: u64) {
        if size == 0 {
            return;
        }
        let (start, end) = (base.raw(), base.raw() + size);
        let idx = self.free.partition_point(|&(b, _)| b < start);
        debug_assert!(
            self.free.get(idx).is_none_or(|&(b, _)| end <= b)
                && (idx == 0 || {
                    let (b, l) = self.free[idx - 1];
                    b + l <= start
                }),
            "double free of [{start:#x}, {end:#x})"
        );
        self.free.insert(idx, (start, size));
        // Coalesce with the right neighbour, then the left.
        if idx + 1 < self.free.len() && self.free[idx].0 + self.free[idx].1 == self.free[idx + 1].0
        {
            self.free[idx].1 += self.free[idx + 1].1;
            self.free.remove(idx + 1);
        }
        if idx > 0 && self.free[idx - 1].0 + self.free[idx - 1].1 == self.free[idx].0 {
            self.free[idx - 1].1 += self.free[idx].1;
            self.free.remove(idx);
        }
    }

    /// Size of the largest free range — the degradation policy's health
    /// signal.
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }

    /// Total free bytes across all ranges.
    pub fn total_free(&self) -> u64 {
        self.free.iter().map(|&(_, l)| l).sum()
    }

    /// Number of disjoint free ranges (a fragmentation signal).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// The coalesced `(base, size)` free ranges, sorted by base. The free
    /// list is canonical (disjoint, coalesced, sorted), so it can be fed
    /// directly into a state fingerprint.
    pub fn free_ranges(&self) -> &[(u64, u64)] {
        &self.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(base: u64, len: u64) -> RegionPool {
        RegionPool::new(PhysAddr::new(base), PhysAddr::new(base + len))
    }

    #[test]
    fn alloc_is_lowest_fit_and_reuses_alignment_gaps() {
        let mut p = pool(0x1000, 1 << 20);
        assert_eq!(p.alloc_aligned(0x1000, 0x1000), Some(PhysAddr::new(0x1000)));
        // 0x8000-alignment skips over [0x2000, 0x8000)…
        assert_eq!(p.alloc_aligned(0x8000, 0x8000), Some(PhysAddr::new(0x8000)));
        // …but that gap is not leaked (the bump cursor leaked it): the next
        // allocation it can hold lands there.
        assert_eq!(p.alloc_aligned(0x2000, 0x2000), Some(PhysAddr::new(0x2000)));
        assert_eq!(
            p.alloc_aligned(0x4_0000, 0x4_0000),
            Some(PhysAddr::new(0x4_0000))
        );
        assert_eq!(p.alloc_aligned(0x1000, 0x1000), Some(PhysAddr::new(0x4000)));
    }

    #[test]
    fn free_coalesces_both_neighbours() {
        let mut p = pool(0x0, 0x4000);
        let a = p.alloc_aligned(0x1000, 0x1000).unwrap();
        let b = p.alloc_aligned(0x1000, 0x1000).unwrap();
        let c = p.alloc_aligned(0x1000, 0x1000).unwrap();
        let d = p.alloc_aligned(0x1000, 0x1000).unwrap();
        assert_eq!(p.total_free(), 0);
        p.free(a, 0x1000);
        p.free(c, 0x1000);
        assert_eq!(p.fragments(), 2);
        p.free(b, 0x1000); // merges with both a and c
        assert_eq!(p.fragments(), 1);
        p.free(d, 0x1000);
        assert_eq!(p.fragments(), 1);
        assert_eq!(p.largest_free(), 0x4000);
    }

    #[test]
    fn churn_of_equal_sizes_reaches_a_fixed_point() {
        let mut p = pool(0x10_0000, 1 << 20);
        for _ in 0..10_000 {
            let r = p.alloc_aligned(0x1_0000, 0x1_0000).expect("no leak");
            p.free(r, 0x1_0000);
        }
        assert_eq!(p.total_free(), 1 << 20);
        assert_eq!(p.fragments(), 1);
    }

    #[test]
    fn alloc_at_carves_exact_ranges() {
        let mut p = pool(0x0, 0x10000);
        assert!(p.alloc_at(PhysAddr::new(0x4000), 0x2000));
        assert!(!p.alloc_at(PhysAddr::new(0x4000), 0x1000), "already taken");
        assert_eq!(p.fragments(), 2);
        assert_eq!(p.lowest_fit(0x4000, 0x4000), Some(PhysAddr::new(0x0)));
        // Page-aligned fits can land where NAPOT alignment cannot.
        assert_eq!(p.lowest_fit(0x8000, 0x8000), Some(PhysAddr::new(0x8000)));
        assert_eq!(p.lowest_fit(0x6000, 0x1000), Some(PhysAddr::new(0x6000)));
        p.free(PhysAddr::new(0x4000), 0x2000);
        assert_eq!(p.fragments(), 1);
        assert_eq!(p.largest_free(), 0x10000);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut p = pool(0x0, 0x4000);
        assert!(p.alloc_aligned(0x4000, 0x4000).is_some());
        assert_eq!(p.alloc_aligned(0x1000, 0x1000), None);
        assert_eq!(p.largest_free(), 0);
    }
}
