//! The secure monitor (Penglai-HPMP's software TCB, §5).
//!
//! The monitor runs in M-mode, owns the HPMP register file, and isolates
//! domains: a **host** domain (the default OS) and any number of **enclave**
//! domains. Three flavours reproduce the paper's comparison systems:
//!
//! * **Penglai-PMP** — segment-per-region. The host's permitted memory is
//!   RAM minus every enclave region, which fragments as enclaves are carved
//!   out; once the fragments (plus the monitor's own entry) exceed 16 PMP
//!   entries, creation fails — the paper's "<16 domains" scalability wall.
//! * **Penglai-PMPT** — one permission table per domain; switching domains
//!   re-points one HPMP table entry at the target's table root.
//! * **Penglai-HPMP** — like PMPT, plus fast GMSs backed by segment entries
//!   (the cache-like management of §5): lower-numbered entries hold the fast
//!   GMSs, the table entry backs everything.
//!
//! Every operation's cycle cost is derived from the CSR writes, table-entry
//! writes and fence operations it performs — the quantities Figure 14
//! measures.

use hpmp_core::{
    CopyCost, DeviceId, FillPolicy, IoPmp, IoPmpEntry, IoPmpMode, PmpRegion, PmpTable, TableLevels,
};
use hpmp_machine::Machine;
use hpmp_memsim::{AccessKind, FrameAllocator, Perms, PhysAddr, PAGE_SIZE};
use hpmp_trace::{CounterId, MetricsRegistry, Snapshot, TraceSink, World};

use crate::degrade::{DegradationPolicy, DegradeStage, DegradeState};
use crate::gms::{Gms, GmsLabel};
use crate::pool::RegionPool;

/// Identifier of a domain. The host is always [`DomainId::HOST`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The host (default) domain.
    pub const HOST: DomainId = DomainId(0);
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == DomainId::HOST {
            f.write_str("host")
        } else {
            write!(f, "domain-{}", self.0)
        }
    }
}

/// Which comparison system the monitor implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TeeFlavor {
    /// Penglai with PMP (segment-per-region).
    PenglaiPmp,
    /// Penglai with PMP Table for everything.
    PenglaiPmpt,
    /// Penglai-HPMP (hybrid).
    PenglaiHpmp,
}

impl std::fmt::Display for TeeFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TeeFlavor::PenglaiPmp => "Penglai-PMP",
            TeeFlavor::PenglaiPmpt => "Penglai-PMPT",
            TeeFlavor::PenglaiHpmp => "Penglai-HPMP",
        })
    }
}

/// Errors surfaced by monitor calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorError {
    /// PMP flavour ran out of segment entries (the scalability wall).
    OutOfPmpEntries,
    /// No physical memory left for regions or tables.
    OutOfMemory,
    /// Unknown domain.
    NoSuchDomain(DomainId),
    /// The region does not belong to the domain.
    NotOwned,
    /// Underlying HPMP programming failed.
    Hpmp(hpmp_core::HpmpError),
    /// Underlying table programming failed.
    Table(hpmp_core::TableError),
    /// Boot parameters are unusable (RAM not NAPOT or too small).
    BadBootRam(&'static str),
    /// The monitor's authoritative state for a domain no longer matches
    /// the hardware-visible state (corrupt permission table, missing table
    /// root, …). The domain is quarantined until
    /// [`SecureMonitor::rebuild_domain_table`] reconstructs it.
    IntegrityLost(DomainId),
    /// The domain is already scheduled on another hart. An enclave's
    /// register image exists on at most one hart at a time; running it
    /// twice would let two harts race the same private memory.
    AlreadyScheduled(DomainId),
    /// Admission control (degradation stage 3): the monitor is out of
    /// region memory even after compaction and the table-mode fallback.
    /// Unlike [`MonitorError::OutOfMemory`] this is *backpressure*, not a
    /// dead end — the caller should retry after roughly `retry_after_ops`
    /// further operations of churn (frees and destroys re-open capacity
    /// and step the monitor back down the degradation ladder).
    ResourceExhausted {
        /// Advertised backoff, in monitor operations.
        retry_after_ops: u64,
    },
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::OutOfPmpEntries => f.write_str("no available PMP entries"),
            MonitorError::OutOfMemory => f.write_str("out of protected memory"),
            MonitorError::NoSuchDomain(id) => write!(f, "no such domain {id}"),
            MonitorError::NotOwned => f.write_str("region not owned by domain"),
            MonitorError::Hpmp(e) => write!(f, "HPMP programming failed: {e}"),
            MonitorError::Table(e) => write!(f, "PMP-table programming failed: {e}"),
            MonitorError::BadBootRam(why) => write!(f, "unusable RAM region: {why}"),
            MonitorError::IntegrityLost(id) => {
                write!(f, "integrity lost for {id}; domain quarantined")
            }
            MonitorError::AlreadyScheduled(id) => {
                write!(f, "{id} is already scheduled on another hart")
            }
            MonitorError::ResourceExhausted { retry_after_ops } => {
                write!(
                    f,
                    "region memory exhausted (admission control); retry after \
                     ~{retry_after_ops} ops"
                )
            }
        }
    }
}

impl std::error::Error for MonitorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MonitorError::Hpmp(e) => Some(e),
            MonitorError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hpmp_core::HpmpError> for MonitorError {
    fn from(e: hpmp_core::HpmpError) -> MonitorError {
        MonitorError::Hpmp(e)
    }
}

impl From<hpmp_core::TableError> for MonitorError {
    fn from(e: hpmp_core::TableError) -> MonitorError {
        MonitorError::Table(e)
    }
}

/// Cycle-cost constants for monitor operations (M-mode software costs,
/// calibrated to the magnitudes of Figure 14).
pub mod cost {
    /// Trap into and out of M-mode (ecall + context save/restore).
    pub const TRAP_ROUND_TRIP: u64 = 260;
    /// One CSR write to an HPMP register.
    pub const CSR_WRITE: u64 = 4;
    /// One pmpte read-modify-write in DRAM-resident tables.
    pub const TABLE_ENTRY_WRITE: u64 = 14;
    /// `sfence.vma` plus the TLB-refill ramp it causes.
    pub const FENCE: u64 = 120;
    /// Monitor bookkeeping per operation (list walks, checks).
    pub const BOOKKEEPING: u64 = 90;
}

#[derive(Clone, Debug)]
struct Domain {
    id: DomainId,
    gmss: Vec<Gms>,
    /// Per-domain permission table (table flavours).
    table: Option<PmpTable>,
}

/// Counters for monitor activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Domain switches performed.
    pub switches: u64,
    /// Total CSR writes.
    pub csr_writes: u64,
    /// Total pmpte writes.
    pub table_writes: u64,
    /// Total modelled cycles spent inside the monitor.
    pub cycles: u64,
}

/// Interned counter handles for the monitor's activity accounting; wired
/// once at boot so every bump is a plain `Vec<u64>` index operation.
#[derive(Clone, Debug)]
struct MonitorWiring {
    switches: CounterId,
    csr_writes: CounterId,
    table_writes: CounterId,
    cycles: CounterId,
    /// Current degradation stage (a gauge: set, not bumped).
    degrade_stage: CounterId,
    /// First entries into stages 1..=3, one counter each.
    degrade_enter: [CounterId; 3],
    /// Hysteresis promotions back toward normal.
    degrade_repromotions: CounterId,
    /// Allocations forcibly degraded to table-only `Slow` regions.
    degrade_slow_allocs: CounterId,
    /// Allocations refused with `ResourceExhausted` backpressure.
    degrade_rejected: CounterId,
    compact_passes: CounterId,
    compact_moved_regions: CounterId,
    compact_moved_pages: CounterId,
    compact_cycles: CounterId,
}

impl MonitorWiring {
    fn wire(reg: &mut MetricsRegistry) -> MonitorWiring {
        MonitorWiring {
            switches: reg.counter("monitor.switches"),
            csr_writes: reg.counter("monitor.csr_writes"),
            table_writes: reg.counter("monitor.table_writes"),
            cycles: reg.counter("monitor.cycles"),
            degrade_stage: reg.counter("monitor.degrade.stage"),
            degrade_enter: [
                reg.counter("monitor.degrade.enter_stage1"),
                reg.counter("monitor.degrade.enter_stage2"),
                reg.counter("monitor.degrade.enter_stage3"),
            ],
            degrade_repromotions: reg.counter("monitor.degrade.repromotions"),
            degrade_slow_allocs: reg.counter("monitor.degrade.slow_allocs"),
            degrade_rejected: reg.counter("monitor.degrade.rejected"),
            compact_passes: reg.counter("monitor.compact.passes"),
            compact_moved_regions: reg.counter("monitor.compact.moved_regions"),
            compact_moved_pages: reg.counter("monitor.compact.moved_pages"),
            compact_cycles: reg.counter("monitor.compact.cycles"),
        }
    }
}

/// What one [`SecureMonitor::compact`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// GMS regions relocated downward.
    pub moved_regions: u64,
    /// 4 KiB pages copied.
    pub moved_pages: u64,
    /// Modelled cycles the pass cost (copies, table rewrites, fences).
    pub cycles: u64,
    /// Movable regions that could still slide down when the pass stopped —
    /// nonzero only when a `max_moves` budget cut the pass short.
    pub remaining: u64,
}

/// Where inside an allocation's cycle interval its compaction pass sat, so
/// the SMP layer can emit a `compact` child span under the op span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactNote {
    /// Cycles into the op when compaction began.
    pub offset: u64,
    /// The pass's own cycles.
    pub cycles: u64,
    /// Regions it moved.
    pub moved_regions: u64,
}

/// The secure monitor.
#[derive(Clone, Debug)]
pub struct SecureMonitor {
    flavor: TeeFlavor,
    ram: PmpRegion,
    monitor_region: PmpRegion,
    /// Free-list allocator over the region arena. Freed top-level GMSs
    /// are returned and coalesced, so churn no longer leaks the arena.
    pool: RegionPool,
    /// The host's boot-time whole-arena GMS. It overlaps everything the
    /// pool ever hands out (enclave carve-outs punch holes in it through
    /// the host table / deny entries, not through the GMS list), so it is
    /// excluded from every reclamation-overlap check.
    host_backdrop: PmpRegion,
    /// The degradation state machine (DESIGN.md §12).
    degrade: DegradeState,
    /// Domains whose memory must not be relocated by compaction — their
    /// owners hold live guest-physical mappings into it (page tables the
    /// monitor does not rewrite).
    pinned: Vec<DomainId>,
    /// Span breadcrumb for the most recent compaction pass; drained by the
    /// SMP layer after every op.
    compaction_note: Option<CompactNote>,
    /// Frames for per-domain permission tables.
    table_frames: FrameAllocator,
    domains: Vec<Domain>,
    current: DomainId,
    next_id: u32,
    iopmp: IoPmp,
    devices: Vec<(DeviceId, DomainId)>,
    metrics: MetricsRegistry,
    ids: MonitorWiring,
    /// Monitor-private copy of the register values it last programmed —
    /// `(addr, cfg)` per entry. [`SecureMonitor::scrub`] compares the live
    /// file against this and force-restores any divergence, so register
    /// corruption (bit flips, interposed CSR writes) is bounded by one
    /// scrub period instead of persisting silently.
    shadow_regs: Vec<(u64, hpmp_core::PmpConfig)>,
    /// Domains whose *holdings* changed during the current op (grant,
    /// revoke, teardown, relabel, rebuild, compaction move) — the
    /// cross-hart shootdown obligations. Single-hart callers never look at
    /// it (the machine the op ran on was fenced inline); the SMP layer
    /// drains it after every op via [`SecureMonitor::take_shootdowns`] and
    /// converts it into one coalesced IPI round. A compaction pass can
    /// touch several domains in one allocation, which is why this is a
    /// list rather than the single slot it used to be.
    pending_shootdowns: Vec<DomainId>,
}

/// What one [`SecureMonitor::scrub`] pass found and repaired.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Register-file entries whose live value diverged from the shadow and
    /// were force-restored.
    pub repaired_registers: u64,
    /// Domains whose permission table failed its integrity sampling; each
    /// is quarantined until [`SecureMonitor::rebuild_domain_table`] runs.
    pub corrupt_domains: Vec<DomainId>,
}

impl ScrubReport {
    /// True when the pass found nothing to repair.
    pub fn clean(&self) -> bool {
        self.repaired_registers == 0 && self.corrupt_domains.is_empty()
    }
}

impl SecureMonitor {
    /// Boots the monitor on `machine`, claiming the bottom of RAM for its
    /// own memory and (for table flavours) the per-domain tables.
    ///
    /// Layout: `[monitor 4 MiB][tables 60 MiB][domain regions ...]`.
    ///
    /// # Errors
    ///
    /// Fails if `ram` is not NAPOT-encodable or smaller than 128 MiB, or if
    /// the initial HPMP/table programming cannot be expressed.
    pub fn boot<S: TraceSink>(
        machine: &mut Machine<S>,
        flavor: TeeFlavor,
        ram: PmpRegion,
    ) -> Result<SecureMonitor, MonitorError> {
        if !ram.is_napot() {
            return Err(MonitorError::BadBootRam("RAM must be NAPOT-encodable"));
        }
        if ram.size < 128 << 20 {
            return Err(MonitorError::BadBootRam("need at least 128 MiB of RAM"));
        }
        let monitor_region = PmpRegion::new(ram.base, 4 << 20);
        let tables_base = PhysAddr::new(ram.base.raw() + (4 << 20));
        let tables_size = 60u64 << 20;
        let region_base = PhysAddr::new(tables_base.raw() + tables_size);

        // Entry 0: the monitor's own memory — matched first, no S/U perms.
        machine
            .regs_mut()
            .configure_segment(0, monitor_region, Perms::NONE)?;

        let mut metrics = MetricsRegistry::new();
        let ids = MonitorWiring::wire(&mut metrics);
        let host_region = PmpRegion::new(region_base, ram.end().raw() - region_base.raw());
        let mut monitor = SecureMonitor {
            flavor,
            ram,
            monitor_region,
            // Offset by one page so no allocated region shares a base with
            // the host's whole-memory GMS.
            pool: RegionPool::new(PhysAddr::new(region_base.raw() + PAGE_SIZE), ram.end()),
            host_backdrop: host_region,
            degrade: DegradeState::new(DegradationPolicy::default()),
            pinned: Vec::new(),
            compaction_note: None,
            table_frames: FrameAllocator::new(tables_base, tables_size),
            domains: Vec::new(),
            current: DomainId::HOST,
            next_id: 1,
            iopmp: IoPmp::new(),
            devices: Vec::new(),
            metrics,
            ids,
            shadow_regs: Vec::new(),
            pending_shootdowns: Vec::new(),
        };

        // The host domain starts owning all remaining memory as one slow GMS.
        let mut host = Domain {
            id: DomainId::HOST,
            gmss: Vec::new(),
            table: None,
        };
        if flavor != TeeFlavor::PenglaiPmp {
            let mut table =
                PmpTable::new(monitor.ram, machine.phys_mut(), &mut monitor.table_frames)
                    .map_err(|_| MonitorError::OutOfMemory)?;
            let writes = table.set_range_perm(
                machine.phys_mut(),
                &mut monitor.table_frames,
                host_region.base,
                host_region.size,
                Perms::RWX,
                FillPolicy::HugeWhenAligned,
            )?;
            monitor.metrics.bump(monitor.ids.table_writes, writes);
            host.table = Some(table);
        }
        host.gmss
            .push(Gms::new(host_region, Perms::RWX, GmsLabel::Slow));
        monitor.domains.push(host);

        monitor.program_current(machine)?;
        Ok(monitor)
    }

    /// The flavour this monitor implements.
    pub fn flavor(&self) -> TeeFlavor {
        self.flavor
    }

    /// The monitor's own protected memory (entry 0's segment).
    pub fn monitor_region(&self) -> PmpRegion {
        self.monitor_region
    }

    /// The currently running domain.
    pub fn current(&self) -> DomainId {
        self.current
    }

    /// Number of domains (including the host).
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Ids of every live domain, host first, in creation order. The model
    /// checker enumerates its op menu from this list, so the order must be
    /// deterministic (and it is: `domains` is append-ordered).
    pub fn domain_ids(&self) -> Vec<DomainId> {
        self.domains.iter().map(|d| d.id).collect()
    }

    /// Activity counters, reconstructed from the interned registry (the
    /// live accounting is a `Vec<u64>` behind [`CounterId`] handles).
    pub fn stats(&self) -> MonitorStats {
        MonitorStats {
            switches: self.metrics.get(self.ids.switches),
            csr_writes: self.metrics.get(self.ids.csr_writes),
            table_writes: self.metrics.get(self.ids.table_writes),
            cycles: self.metrics.get(self.ids.cycles),
        }
    }

    /// A point-in-time view of the monitor's activity counters under the
    /// `monitor.*` prefix, for merging into experiment-level metrics.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// GMSs owned by `domain`.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains.
    pub fn regions_of(&self, domain: DomainId) -> Result<&[Gms], MonitorError> {
        self.domain(domain).map(|d| d.gmss.as_slice())
    }

    /// Feeds the monitor's *logical* state into a fingerprint hasher, for
    /// the bounded model checker's convergence pruning.
    ///
    /// Covered: everything the monitor's op transition functions read —
    /// flavour, layout, the pool free list, degradation stage + hysteresis
    /// streak + policy, pins, the table-frame allocator, every domain's id
    /// and GMS list and table shape, scheduling state, id allocation,
    /// device assignments, the register shadow, and undrained shootdown
    /// obligations. Excluded: cycle counters and metrics (pure accounting —
    /// two states differing only there behave identically forever), and
    /// table *contents* in simulated DRAM, which are a deterministic
    /// function of the covered state (tables are only ever written by
    /// monitor ops, and the frame allocator's hash pins frame assignment).
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        h.write_u8(match self.flavor {
            TeeFlavor::PenglaiPmp => 0,
            TeeFlavor::PenglaiPmpt => 1,
            TeeFlavor::PenglaiHpmp => 2,
        });
        for region in [self.ram, self.monitor_region, self.host_backdrop] {
            h.write_u64(region.base.raw());
            h.write_u64(region.size);
        }
        h.write_usize(self.pool.free_ranges().len());
        for &(base, size) in self.pool.free_ranges() {
            h.write_u64(base);
            h.write_u64(size);
        }
        h.write_u8(self.degrade.stage().level());
        h.write_u32(self.degrade.healthy_streak());
        h.write_u32(self.degrade.policy.promote_after);
        h.write_u64(self.degrade.policy.healthy_free);
        h.write_u64(self.degrade.policy.retry_after_ops);
        h.write_usize(self.pinned.len());
        for d in &self.pinned {
            h.write_u32(d.0);
        }
        self.table_frames.hash_into(h);
        h.write_usize(self.domains.len());
        for d in &self.domains {
            h.write_u32(d.id.0);
            h.write_usize(d.gmss.len());
            for gms in &d.gmss {
                h.write_u64(gms.region.base.raw());
                h.write_u64(gms.region.size);
                h.write_u8(gms.perms.bits());
                h.write_u8(match gms.label {
                    GmsLabel::Fast => 0,
                    GmsLabel::Slow => 1,
                });
            }
            match &d.table {
                None => h.write_u8(0),
                Some(t) => {
                    h.write_u8(1);
                    h.write_u64(t.root().raw());
                    h.write_u64(t.region().base.raw());
                    h.write_u64(t.region().size);
                    h.write_usize(t.table_pages().len());
                    for page in t.table_pages() {
                        h.write_u64(page.raw());
                    }
                }
            }
        }
        h.write_u32(self.current.0);
        h.write_u32(self.next_id);
        h.write_usize(self.devices.len());
        for &(dev, owner) in &self.devices {
            h.write_u8(dev.0);
            h.write_u32(owner.0);
        }
        h.write_usize(self.shadow_regs.len());
        for &(addr, cfg) in &self.shadow_regs {
            h.write_u64(addr);
            h.write_u8(cfg.to_bits());
        }
        h.write_usize(self.pending_shootdowns.len());
        for d in &self.pending_shootdowns {
            h.write_u32(d.0);
        }
    }

    /// Creates an enclave domain with one initial private region of
    /// `initial_size` bytes (rounded up to a NAPOT size). Returns the id and
    /// the modelled cycle cost.
    ///
    /// # Errors
    ///
    /// Fails when memory or (for the PMP flavour) segment entries run out.
    pub fn create_domain<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        initial_size: u64,
        label: GmsLabel,
    ) -> Result<(DomainId, u64), MonitorError> {
        let id = DomainId(self.next_id);
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;

        let mut domain = Domain {
            id,
            gmss: Vec::new(),
            table: None,
        };
        if self.flavor != TeeFlavor::PenglaiPmp {
            let table = PmpTable::new(self.ram, machine.phys_mut(), &mut self.table_frames)
                .map_err(|_| MonitorError::OutOfMemory)?;
            domain.table = Some(table);
        }
        self.domains.push(domain);
        self.next_id += 1;

        match self.alloc_region(machine, id, initial_size, label) {
            Ok((_, alloc_cycles)) => cycles += alloc_cycles,
            Err(e) => {
                // Roll back the half-created domain — without this, every
                // failed create leaked an empty domain *and* its table
                // frames, so exhaustion could never recover.
                self.rollback_created_domain(machine, id);
                return Err(e);
            }
        }

        // For the PMP flavour, verify the host can still be expressed: when
        // the host runs, every enclave region needs a higher-priority deny
        // entry (Keystone-style), plus the monitor entry and at least one
        // host allow entry.
        if self.flavor == TeeFlavor::PenglaiPmp
            && self.enclave_region_count() + 2 > machine.regs().len()
        {
            self.rollback_created_domain(machine, id);
            return Err(MonitorError::OutOfPmpEntries);
        }

        self.metrics.bump(self.ids.cycles, cycles);
        Ok((id, cycles))
    }

    /// Unwinds a domain pushed by [`SecureMonitor::create_domain`] whose
    /// creation then failed: removes it, reclaims any region it was
    /// granted, and recycles its table frames (scrubbed, so a later table
    /// build cannot decode stale pmptes).
    fn rollback_created_domain<S: TraceSink>(&mut self, machine: &mut Machine<S>, id: DomainId) {
        let Some(idx) = self.domains.iter().position(|d| d.id == id) else {
            return;
        };
        let domain = self.domains.remove(idx);
        self.next_id -= 1;
        for gms in &domain.gmss {
            // A just-created domain has no sub-GMSs; every region is
            // top-level and pool-owned.
            let _ = self.grant_in_host_table(machine, gms.region, Perms::RWX);
            self.reclaim_region(gms.region);
        }
        self.recycle_table(machine, domain.table);
    }

    /// Scrubs and releases a retired permission table's frames back to the
    /// table-frame allocator.
    fn recycle_table<S: TraceSink>(&mut self, machine: &mut Machine<S>, table: Option<PmpTable>) {
        let Some(table) = table else {
            return;
        };
        for &frame in table.table_pages() {
            machine.phys_mut().zero_page(frame);
            self.table_frames.release(frame);
        }
    }

    /// Returns `region` to the pool unless something still references it:
    /// the host's whole-arena backdrop is never pool-owned, and a range
    /// still overlapped by any live GMS (a parent with a labelled sub-GMS,
    /// or vice versa) must stay allocated or the pool would hand out
    /// aliased memory.
    fn reclaim_region(&mut self, region: PmpRegion) {
        if region == self.host_backdrop {
            return;
        }
        let overlaps = |g: PmpRegion| {
            g != self.host_backdrop && g.base < region.end() && region.base < g.end()
        };
        if self
            .domains
            .iter()
            .flat_map(|d| d.gmss.iter())
            .any(|g| overlaps(g.region))
        {
            return;
        }
        self.pool.free(region.base, region.size);
    }

    /// Destroys an enclave domain, returning its memory to the host.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains or the host.
    pub fn destroy_domain<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        id: DomainId,
    ) -> Result<u64, MonitorError> {
        if id == DomainId::HOST {
            return Err(MonitorError::NoSuchDomain(id));
        }
        let idx = self
            .domains
            .iter()
            .position(|d| d.id == id)
            .ok_or(MonitorError::NoSuchDomain(id))?;
        let mut domain = self.domains.remove(idx);
        self.devices.retain(|(_, owner)| *owner != id);
        self.pinned.retain(|p| *p != id);
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        cycles += self.sync_iopmp(machine);
        // Return regions to the host's table (scrub + grant).
        for gms in &domain.gmss {
            cycles += self.grant_in_host_table(machine, gms.region, Perms::RWX)?;
        }
        // Hand the domain's top-level regions back to the pool. Sub-GMSs
        // alias a slice of their parent's range, so freeing them as well
        // would double-free it — this was the leak's twin bug: before PR 9
        // *nothing* was returned, so churn bled the arena dry.
        for gms in &domain.gmss {
            if is_top_level(&domain.gmss, gms.region) {
                self.reclaim_region(gms.region);
            }
        }
        self.recycle_table(machine, domain.table.take());
        if self.current == id {
            cycles += self.switch_to(machine, DomainId::HOST)?;
        } else if self.image_depends_on(id) {
            // PMP flavour, host running: drop the destroyed enclave's deny
            // entries so the host regains the returned memory immediately.
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.note_shootdown(id);
        self.settle_degradation();
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Allocates a private region for `domain`. Returns the region and the
    /// modelled cycle cost.
    ///
    /// # Errors
    ///
    /// Fails when memory runs out, the domain is unknown, or (PMP flavour)
    /// the per-domain segment budget is exhausted.
    pub fn alloc_region<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        size: u64,
        label: GmsLabel,
    ) -> Result<(PmpRegion, u64), MonitorError> {
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        let flavor = self.flavor;

        // PMP flavour: each region consumes a segment entry when active.
        // Checked before any placement so a failed alloc leaves the
        // monitor's state (pool included) untouched.
        if flavor == TeeFlavor::PenglaiPmp {
            let d = self.domain(domain)?;
            // Entry 0 is the monitor; a region list longer than the file
            // cannot be programmed.
            if d.gmss.len() + 2 > machine.regs().len() {
                return Err(MonitorError::OutOfPmpEntries);
            }
            // The host's Keystone-style image must also keep fitting:
            // monitor entry + one deny per enclave region + the host's own
            // allow entries.
            let host_allows =
                self.domain(DomainId::HOST)?.gmss.len() + usize::from(domain == DomainId::HOST);
            let enclave_denies =
                self.enclave_region_count() + usize::from(domain != DomainId::HOST);
            if 1 + enclave_denies + host_allows > machine.regs().len() {
                return Err(MonitorError::OutOfPmpEntries);
            }
        } else {
            self.domain(domain)?;
        }

        let (region, label) = self.place_region(machine, size, label, &mut cycles)?;

        // Revoke from the host's table, grant in the owner's table.
        if flavor != TeeFlavor::PenglaiPmp && domain != DomainId::HOST {
            cycles += self.grant_in_host_table(machine, region, Perms::NONE)?;
        }
        if flavor != TeeFlavor::PenglaiPmp {
            let table_writes_id = self.ids.table_writes;
            let metrics = &mut self.metrics;
            let table_frames = &mut self.table_frames;
            let d = self
                .domains
                .iter_mut()
                .find(|d| d.id == domain)
                .ok_or(MonitorError::NoSuchDomain(domain))?;
            let table = d
                .table
                .as_mut()
                .ok_or(MonitorError::IntegrityLost(domain))?;
            let writes = table.set_range_perm(
                machine.phys_mut(),
                table_frames,
                region.base,
                region.size,
                Perms::RWX,
                if flavor == TeeFlavor::PenglaiHpmp {
                    FillPolicy::HugeWhenAligned
                } else {
                    FillPolicy::PerPage
                },
            )?;
            metrics.bump(table_writes_id, writes);
            cycles += writes * cost::TABLE_ENTRY_WRITE;
        }

        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        d.gmss.push(Gms::new(region, Perms::RWX, label));
        if self.devices.iter().any(|(_, owner)| *owner == domain) {
            cycles += self.sync_iopmp(machine);
        }

        // If the running image depends on this domain's holdings (the
        // domain itself, or the PMP host's deny entries), reprogram and
        // fence.
        if self.image_depends_on(domain) {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.note_shootdown(domain);
        self.settle_degradation();
        self.metrics.bump(self.ids.cycles, cycles);
        Ok((region, cycles))
    }

    /// Releases a region owned by `domain`, returning the cycle cost.
    ///
    /// # Errors
    ///
    /// Fails if the region is not owned by the domain.
    pub fn free_region<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        base: PhysAddr,
    ) -> Result<u64, MonitorError> {
        let flavor = self.flavor;
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        let d_idx = self
            .domains
            .iter()
            .position(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        let g_idx = self.domains[d_idx]
            .gmss
            .iter()
            .position(|g| g.region.base == base)
            .ok_or(MonitorError::NotOwned)?;
        let gms = self.domains[d_idx].gmss.remove(g_idx);

        if flavor != TeeFlavor::PenglaiPmp {
            // Revoke in the owner's table…
            let table_writes_id = self.ids.table_writes;
            let metrics = &mut self.metrics;
            let table_frames = &mut self.table_frames;
            let table = self.domains[d_idx]
                .table
                .as_mut()
                .ok_or(MonitorError::IntegrityLost(domain))?;
            let writes = table.set_range_perm(
                machine.phys_mut(),
                table_frames,
                gms.region.base,
                gms.region.size,
                Perms::NONE,
                FillPolicy::PerPage,
            )?;
            metrics.bump(table_writes_id, writes);
            cycles += writes * cost::TABLE_ENTRY_WRITE;
            // …and return it to the host.
            if domain != DomainId::HOST {
                cycles += self.grant_in_host_table(machine, gms.region, Perms::RWX)?;
            }
        }
        if self.image_depends_on(domain) {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.reclaim_region(gms.region);
        self.note_shootdown(domain);
        self.settle_degradation();
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Relabels a GMS (the OS hint path); only HPMP acts on it, by
    /// reprogramming registers — no table updates, which is why it is cheap.
    ///
    /// # Errors
    ///
    /// Fails if the region is not owned by the domain.
    pub fn relabel<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        base: PhysAddr,
        label: GmsLabel,
    ) -> Result<u64, MonitorError> {
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        let gms = d
            .gmss
            .iter_mut()
            .find(|g| g.region.base == base)
            .ok_or(MonitorError::NotOwned)?;
        gms.label = label;
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        if self.current == domain {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.note_shootdown(domain);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Carves a monitor-owned buffer (not a domain GMS) from the region
    /// area. Returns `(region, cycles)`. Monitor buffers are permanent:
    /// they are never returned to the pool.
    ///
    /// # Errors
    ///
    /// Fails when memory runs out.
    pub(crate) fn alloc_monitor_buffer(
        &mut self,
        len: u64,
    ) -> Result<(PmpRegion, u64), MonitorError> {
        let size = len.next_power_of_two().max(PAGE_SIZE);
        let base = self
            .pool
            .alloc_aligned(size, size)
            .ok_or(MonitorError::OutOfMemory)?;
        Ok((PmpRegion::new(base, size), cost::BOOKKEEPING))
    }

    /// Chooses where a new region lands under the degradation state machine
    /// (DESIGN.md §12), escalating through compaction, the table-only
    /// fallback and admission control as the pool runs dry. Returns the
    /// placed region and the (possibly downgraded) label.
    fn place_region<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        size: u64,
        label: GmsLabel,
        cycles: &mut u64,
    ) -> Result<(PmpRegion, GmsLabel), MonitorError> {
        let napot = size.next_power_of_two().max(PAGE_SIZE);
        // The PMP flavour has no permission table to fall back on, so it
        // never enters the table-only stage: its ladder is 0 → 1 → 3.
        let fast_eligible =
            self.flavor == TeeFlavor::PenglaiPmp || self.degrade.stage() < DegradeStage::TableOnly;
        if fast_eligible {
            if let Some(base) = self.pool.alloc_aligned(napot, napot) {
                // A PMP-flavour monitor in admission control just served a
                // fast allocation again: step off stage 3.
                if self.degrade.recover_to(DegradeStage::Compacting) {
                    self.store_stage_gauge();
                }
                return Ok((PmpRegion::new(base, napot), label));
            }
            // Stage 1: compact the arena and retry the fast path.
            self.enter_stage(DegradeStage::Compacting);
            *cycles += self.compact_pass(machine, None, *cycles)?.cycles;
            if let Some(base) = self.pool.alloc_aligned(napot, napot) {
                return Ok((PmpRegion::new(base, napot), label));
            }
            if self.flavor == TeeFlavor::PenglaiPmp {
                return self.refuse_admission();
            }
            self.enter_stage(DegradeStage::TableOnly);
        }
        // Stage 2/3: exact-fit, page-aligned, table-backed, forcibly slow —
        // the table flavours lose speed, never correctness.
        let exact = size.next_multiple_of(PAGE_SIZE).max(PAGE_SIZE);
        let placed = match self.pool.alloc_aligned(exact, PAGE_SIZE) {
            Some(base) => Some(base),
            None => {
                // One more compaction attempt before refusing admission.
                *cycles += self.compact_pass(machine, None, *cycles)?.cycles;
                self.pool.alloc_aligned(exact, PAGE_SIZE)
            }
        };
        match placed {
            Some(base) => {
                // A successful exact-fit under admission control means the
                // monitor is serving again: step straight back to stage 2.
                if self.degrade.recover_to(DegradeStage::TableOnly) {
                    self.store_stage_gauge();
                }
                self.metrics.bump(self.ids.degrade_slow_allocs, 1);
                Ok((PmpRegion::new(base, exact), GmsLabel::Slow))
            }
            None => self.refuse_admission(),
        }
    }

    /// Stage 3: refuses the allocation with typed backpressure instead of a
    /// hard failure.
    fn refuse_admission<T>(&mut self) -> Result<T, MonitorError> {
        self.enter_stage(DegradeStage::Admission);
        self.metrics.bump(self.ids.degrade_rejected, 1);
        Err(MonitorError::ResourceExhausted {
            retry_after_ops: self.degrade.policy.retry_after_ops,
        })
    }

    /// Records a genuine escalation in the stage-entry counters and gauge.
    fn enter_stage(&mut self, to: DegradeStage) {
        if self.degrade.escalate(to) {
            self.metrics
                .bump(self.ids.degrade_enter[usize::from(to.level() - 1)], 1);
            self.store_stage_gauge();
        }
    }

    fn store_stage_gauge(&mut self) {
        self.metrics.store(
            self.ids.degrade_stage,
            u64::from(self.degrade.stage().level()),
        );
    }

    /// Feeds the pool's recovery signal into the hysteresis after every
    /// capacity-changing operation.
    fn settle_degradation(&mut self) {
        if self.degrade.settle(self.pool.largest_free()) {
            // The PMP flavour's ladder has no table-only rung (0 → 1 → 3),
            // so a repromotion out of admission lands on compaction
            // directly — stage 2 must never be observable on PMP.
            if self.flavor == TeeFlavor::PenglaiPmp {
                self.degrade.recover_to(DegradeStage::Compacting);
            }
            self.metrics.bump(self.ids.degrade_repromotions, 1);
            self.store_stage_gauge();
        }
    }

    /// The degradation stage the monitor is currently in.
    pub fn degrade_stage(&self) -> DegradeStage {
        self.degrade.stage()
    }

    /// Replaces the degradation policy's thresholds; the current stage and
    /// hysteresis streak are kept.
    pub fn set_degradation_policy(&mut self, policy: DegradationPolicy) {
        self.degrade.policy = policy;
    }

    /// Excludes `domain`'s memory from compaction: its owner holds live
    /// guest-physical mappings into it (page tables the monitor does not
    /// rewrite), so relocating it would tear them.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains.
    pub fn pin_domain(&mut self, domain: DomainId) -> Result<(), MonitorError> {
        self.domain(domain)?;
        if !self.pinned.contains(&domain) {
            self.pinned.push(domain);
        }
        Ok(())
    }

    /// Makes `domain`'s memory movable by compaction again.
    pub fn unpin_domain(&mut self, domain: DomainId) {
        self.pinned.retain(|d| *d != domain);
    }

    /// Takes the span breadcrumb of the most recent compaction pass; the
    /// SMP layer drains this after every op to emit a `compact` child span.
    pub fn take_compaction_note(&mut self) -> Option<CompactNote> {
        self.compaction_note.take()
    }

    /// Size of the region arena's largest free range.
    pub fn arena_largest_free(&self) -> u64 {
        self.pool.largest_free()
    }

    /// Total free bytes in the region arena.
    pub fn arena_total_free(&self) -> u64 {
        self.pool.total_free()
    }

    /// Number of disjoint free ranges in the arena (fragmentation signal).
    pub fn arena_fragments(&self) -> usize {
        self.pool.fragments()
    }

    /// Runs segment compaction explicitly (outside an allocation): slides
    /// movable GMS regions downward to merge free holes. `max_moves` bounds
    /// the pass, letting callers — fault campaigns especially — stop
    /// mid-compaction, interleave other work, and resume. Returns what the
    /// pass did, including the trap overhead of invoking it.
    ///
    /// # Errors
    ///
    /// Propagates relocation failures (the affected domain is quarantined).
    pub fn compact<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        max_moves: Option<u64>,
    ) -> Result<CompactReport, MonitorError> {
        let pre = cost::TRAP_ROUND_TRIP;
        let mut report = self.compact_pass(machine, max_moves, pre)?;
        report.cycles += pre;
        self.metrics.bump(self.ids.cycles, report.cycles);
        Ok(report)
    }

    /// One compaction pass: repeatedly slides the lowest movable GMS region
    /// into the lowest free hole below it until nothing moves (or the
    /// `max_moves` budget runs out). `note_offset` records where inside the
    /// surrounding operation the pass began, for span attribution. Callers
    /// fold the returned cycles into their own accounting.
    fn compact_pass<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        max_moves: Option<u64>,
        note_offset: u64,
    ) -> Result<CompactReport, MonitorError> {
        let mut report = CompactReport {
            cycles: cost::BOOKKEEPING,
            ..CompactReport::default()
        };
        while max_moves.is_none_or(|m| report.moved_regions < m) {
            let Some((domain, old, new_base)) = self.next_compaction_move() else {
                break;
            };
            report.cycles += self.relocate_region(machine, domain, old, new_base)?;
            report.moved_regions += 1;
            report.moved_pages += old.size / PAGE_SIZE;
        }
        report.remaining = self.compaction_candidates().len() as u64;
        self.metrics.bump(self.ids.compact_passes, 1);
        self.metrics
            .bump(self.ids.compact_moved_regions, report.moved_regions);
        self.metrics
            .bump(self.ids.compact_moved_pages, report.moved_pages);
        self.metrics.bump(self.ids.compact_cycles, report.cycles);
        self.compaction_note = Some(CompactNote {
            offset: note_offset,
            cycles: report.cycles,
            moved_regions: report.moved_regions,
        });
        Ok(report)
    }

    /// Every `(domain, region, destination)` triple compaction could move
    /// right now: top-level, unpinned, non-host GMS regions with a free
    /// hole strictly below their current base that fits their alignment
    /// (NAPOT regions keep size-alignment so segment backing and the PMP
    /// flavour's encoding survive the move).
    fn compaction_candidates(&self) -> Vec<(DomainId, PmpRegion, PhysAddr)> {
        let mut out = Vec::new();
        for d in &self.domains {
            if d.id == DomainId::HOST || self.pinned.contains(&d.id) {
                continue;
            }
            for g in &d.gmss {
                if !is_top_level(&d.gmss, g.region) {
                    continue;
                }
                let align = if g.region.is_napot() {
                    g.region.size
                } else {
                    PAGE_SIZE
                };
                let Some(fit) = self.pool.lowest_fit(g.region.size, align) else {
                    continue;
                };
                if fit.raw() < g.region.base.raw() {
                    out.push((d.id, g.region, fit));
                }
            }
        }
        out
    }

    fn next_compaction_move(&self) -> Option<(DomainId, PmpRegion, PhysAddr)> {
        self.compaction_candidates()
            .into_iter()
            .min_by_key(|&(_, region, _)| region.base)
    }

    /// Relocates one of `domain`'s top-level GMS regions from `old` to the
    /// already-chosen destination base `new_base`: copies its pages and
    /// rewrites every affected permission structure, fail-closed — the
    /// destination is revoked from the host *before* the owner gains it, so
    /// at no point can both reach the range. Returns the modelled cycles.
    fn relocate_region<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        old: PmpRegion,
        new_base: PhysAddr,
    ) -> Result<u64, MonitorError> {
        let flavor = self.flavor;
        let new = PmpRegion::new(new_base, old.size);
        assert!(
            self.pool.alloc_at(new_base, old.size),
            "compaction destination vanished"
        );
        let pages = old.size / PAGE_SIZE;
        let mut cycles = 0u64;

        // 1. The destination leaves the host's reach first.
        cycles += self.grant_in_host_table(machine, new, Perms::NONE)?;

        // 2. The owner's table gains the new range with the moved GMS's
        //    permissions and loses the old one. (Sub-GMSs alias slices of
        //    the parent's range, so one grant covers them.)
        let perms = self
            .domain(domain)?
            .gmss
            .iter()
            .find(|g| g.region == old)
            .ok_or(MonitorError::NotOwned)?
            .perms;
        if flavor != TeeFlavor::PenglaiPmp {
            let table_writes_id = self.ids.table_writes;
            let table_frames = &mut self.table_frames;
            let d = self
                .domains
                .iter_mut()
                .find(|d| d.id == domain)
                .ok_or(MonitorError::NoSuchDomain(domain))?;
            let table = d
                .table
                .as_mut()
                .ok_or(MonitorError::IntegrityLost(domain))?;
            let mut writes = table.set_range_perm(
                machine.phys_mut(),
                table_frames,
                new.base,
                new.size,
                perms,
                if flavor == TeeFlavor::PenglaiHpmp {
                    FillPolicy::HugeWhenAligned
                } else {
                    FillPolicy::PerPage
                },
            )?;
            writes += table.set_range_perm(
                machine.phys_mut(),
                table_frames,
                old.base,
                old.size,
                Perms::NONE,
                FillPolicy::PerPage,
            )?;
            self.metrics.bump(table_writes_id, writes);
            cycles += writes * cost::TABLE_ENTRY_WRITE;
        }

        // 3. The M-mode memcpy.
        for page in 0..pages {
            machine.phys_mut().copy_page_within(
                PhysAddr::new(old.base.raw() + page * PAGE_SIZE),
                PhysAddr::new(new.base.raw() + page * PAGE_SIZE),
            );
        }
        cycles += CopyCost::DEFAULT.relocation(pages);

        // 4. The vacated range returns to the host.
        cycles += self.grant_in_host_table(machine, old, Perms::RWX)?;

        // 5. Bookkeeping: slide the GMS — and every sub-GMS inside it — down
        //    by the same delta, then free the vacated range.
        let delta = old.base.raw() - new.base.raw();
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        for g in d.gmss.iter_mut() {
            if old.base <= g.region.base && g.region.end() <= old.end() {
                g.region =
                    PmpRegion::new(PhysAddr::new(g.region.base.raw() - delta), g.region.size);
            }
        }
        self.pool.free(old.base, old.size);

        if self.devices.iter().any(|(_, owner)| *owner == domain) {
            cycles += self.sync_iopmp(machine);
        }
        if self.image_depends_on(domain) {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.note_shootdown(domain);
        self.verify_relocation(machine, domain, new, old.base)?;
        Ok(cycles)
    }

    /// Fail-closed post-condition of a relocation: the hardware-visible
    /// fast path must agree with the oracle at the moved range's edges and
    /// at the vacated base, for both the owner and the host. Any
    /// disagreement quarantines the domain rather than risking a silent
    /// grant of memory its owner no longer holds.
    fn verify_relocation<S: TraceSink>(
        &self,
        machine: &Machine<S>,
        domain: DomainId,
        new: PmpRegion,
        old_base: PhysAddr,
    ) -> Result<(), MonitorError> {
        if self.flavor == TeeFlavor::PenglaiPmp {
            // No tables: the only hardware-visible state is the register
            // image, rebuilt above when the running image depends on the
            // move and on the next switch otherwise; the oracle-lockstep
            // harnesses keep probing it afterwards.
            return Ok(());
        }
        let probes = [
            new.base,
            PhysAddr::new(new.end().raw() - PAGE_SIZE),
            old_base,
        ];
        for who in [domain, DomainId::HOST] {
            let d = self.domain(who)?;
            let table = d.table.as_ref().ok_or(MonitorError::IntegrityLost(who))?;
            for probe in probes {
                let fast = table
                    .lookup(machine.phys(), probe)
                    .is_some_and(|p| p.allows(AccessKind::Read));
                let oracle = self.oracle_check_for(who, probe, AccessKind::Read);
                if fast != oracle {
                    return Err(MonitorError::IntegrityLost(who));
                }
            }
        }
        Ok(())
    }

    /// Grants `region` with `perms` in `domain`'s permission table without
    /// making it a GMS of the domain (shared-buffer support). No-op access
    /// change for the PMP flavour (segments are per-GMS); callers that need
    /// PMP-flavour sharing must use whole GMSs.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains.
    pub(crate) fn grant_in_domain_table<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        region: PmpRegion,
        perms: Perms,
    ) -> Result<u64, MonitorError> {
        let table_writes_id = self.ids.table_writes;
        let metrics = &mut self.metrics;
        let table_frames = &mut self.table_frames;
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        let Some(table) = d.table.as_mut() else {
            return Ok(0);
        };
        let writes = table.set_range_perm(
            machine.phys_mut(),
            table_frames,
            region.base,
            region.size,
            perms,
            FillPolicy::PerPage,
        )?;
        metrics.bump(table_writes_id, writes);
        Ok(writes * cost::TABLE_ENTRY_WRITE)
    }

    /// The IOPMP checker for DMA initiators (§9). Pass to
    /// [`hpmp_machine::Machine::dma_transfer`].
    pub fn iopmp(&self) -> &IoPmp {
        &self.iopmp
    }

    /// Assigns a DMA initiator to `domain`: the device may then DMA into
    /// (and only into) that domain's memory. Returns the cycle cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains.
    pub fn assign_device<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        device: DeviceId,
        domain: DomainId,
    ) -> Result<u64, MonitorError> {
        self.domain(domain)?;
        self.devices.retain(|(d, _)| *d != device);
        self.devices.push((device, domain));
        let cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING + self.sync_iopmp(machine);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Revokes a DMA initiator's assignment (back to no access).
    pub fn revoke_device<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        device: DeviceId,
    ) -> u64 {
        self.devices.retain(|(d, _)| *d != device);
        let cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING + self.sync_iopmp(machine);
        self.metrics.bump(self.ids.cycles, cycles);
        cycles
    }

    /// Rebuilds the IOPMP entry list from device ownership. DMA is
    /// asynchronous, so entries reflect *ownership*, not the scheduled
    /// domain; every mutation of a device-owning domain's memory re-syncs.
    fn sync_iopmp<S: TraceSink>(&mut self, machine: &mut Machine<S>) -> u64 {
        let _ = &machine;
        let mut iopmp = IoPmp::new();
        let mut writes = 0u64;
        for (device, domain) in &self.devices {
            let Some(d) = self.domains.iter().find(|d| d.id == *domain) else {
                continue;
            };
            match (&d.table, self.flavor) {
                (Some(table), TeeFlavor::PenglaiPmpt | TeeFlavor::PenglaiHpmp) => {
                    // One table-mode entry: the domain's permission table is
                    // the single source of truth for its pages.
                    iopmp.push(IoPmpEntry {
                        source_mask: 1 << (device.0 & 31),
                        region: self.ram,
                        mode: IoPmpMode::Table {
                            root: table.root(),
                            levels: TableLevels::Two,
                        },
                    });
                    writes += 1;
                }
                _ => {
                    // PMP flavour: the host's whole-memory GMS still covers
                    // enclave carve-outs, so (as on the CPU side) deny
                    // entries for every enclave region match first.
                    if *domain == DomainId::HOST {
                        for hole in self
                            .domains
                            .iter()
                            .filter(|other| other.id != DomainId::HOST)
                            .flat_map(|other| other.gmss.iter().map(|g| g.region))
                        {
                            iopmp.push(IoPmpEntry {
                                source_mask: 1 << (device.0 & 31),
                                region: hole,
                                mode: IoPmpMode::Segment(hpmp_memsim::Perms::NONE),
                            });
                            writes += 1;
                        }
                    }
                    for gms in &d.gmss {
                        iopmp.push(IoPmpEntry {
                            source_mask: 1 << (device.0 & 31),
                            region: gms.region,
                            mode: IoPmpMode::Segment(gms.perms),
                        });
                        writes += 1;
                    }
                }
            }
        }
        self.iopmp = iopmp;
        writes * cost::CSR_WRITE
    }

    /// Labels a sub-range of one of `domain`'s GMSs as its own GMS — the
    /// §9 "efficient isolation through new abstractions" path, fed by the
    /// OS's hint ioctls. The sub-GMS inherits the parent's permission; a
    /// `Fast` label asks for segment backing on the next programming.
    ///
    /// Only meaningful for Penglai-HPMP (the other flavours have no
    /// fast/slow distinction for data).
    ///
    /// # Errors
    ///
    /// Fails if the flavour is not HPMP, the region is not contained in a
    /// GMS the domain owns, or it is already labelled.
    pub fn label_subregion<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        region: PmpRegion,
        label: GmsLabel,
    ) -> Result<u64, MonitorError> {
        if self.flavor != TeeFlavor::PenglaiHpmp {
            return Err(MonitorError::NotOwned);
        }
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        let parent = d
            .gmss
            .iter()
            .find(|g| {
                g.region.base <= region.base && g.region.end() >= region.end() && g.region != region
            })
            .copied()
            .ok_or(MonitorError::NotOwned)?;
        if d.gmss.iter().any(|g| g.region == region) {
            return Err(MonitorError::NotOwned);
        }
        d.gmss.push(Gms::new(region, parent.perms, label));
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        if self.image_depends_on(domain) {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Removes a sub-GMS added by [`SecureMonitor::label_subregion`].
    ///
    /// # Errors
    ///
    /// Fails if the exact region is not a labelled sub-GMS of the domain.
    pub fn unlabel_subregion<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        region: PmpRegion,
    ) -> Result<u64, MonitorError> {
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        let idx = d
            .gmss
            .iter()
            .position(|g| g.region == region)
            .ok_or(MonitorError::NotOwned)?;
        d.gmss.remove(idx);
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        if self.image_depends_on(domain) {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Switches execution to `target`, reprogramming the HPMP entries.
    /// Returns the modelled cycle cost — the Figure 14-a quantity.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains, or for the PMP flavour when the target's
    /// allow-list does not fit the register file.
    pub fn switch_to<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        target: DomainId,
    ) -> Result<u64, MonitorError> {
        self.domain(target)?;
        self.current = target;
        // Tag subsequent trace events with the world we switched into.
        machine.set_world(if target == DomainId::HOST {
            World::Host
        } else {
            World::Enclave
        });
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        cycles += self.program_current(machine)?;
        machine.invalidate_isolation();
        cycles += cost::FENCE;
        self.metrics.bump(self.ids.switches, 1);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// One integrity-scrub pass, the monitor's periodic corruption sweep:
    /// compares the live register file against the monitor's shadow copy
    /// (force-restoring any divergence, lock bit included) and samples the
    /// first and last page of every GMS in every domain's permission table
    /// for malformed pmptes. Sampling bounds the pass's cost; pmptes it
    /// does not visit are still caught at access time by the parity check.
    /// Never panics: corruption is repaired where possible and reported
    /// for quarantine otherwise.
    pub fn scrub<S: TraceSink>(&mut self, machine: &mut Machine<S>) -> ScrubReport {
        let mut report = ScrubReport::default();
        for (idx, &(addr, cfg)) in self.shadow_regs.iter().enumerate() {
            let live_addr = machine.regs().addr_reg(idx);
            let live_cfg = machine.regs().cfg_reg(idx);
            if live_addr != addr || live_cfg.to_bits() != cfg.to_bits() {
                machine.regs_mut().force_restore(idx, addr, cfg);
                report.repaired_registers += 1;
            }
        }
        if report.repaired_registers > 0 {
            // Stale TLB entries may inline permissions derived from the
            // corrupted registers.
            machine.invalidate_isolation();
        }
        for d in &self.domains {
            let Some(table) = d.table.as_ref() else {
                continue;
            };
            let corrupt = d.gmss.iter().any(|gms| {
                let last_page = PhysAddr::new(gms.region.end().raw() - PAGE_SIZE);
                table.walk(machine.phys(), gms.region.base).malformed
                    || table.walk(machine.phys(), last_page).malformed
            });
            if corrupt {
                report.corrupt_domains.push(d.id);
            }
        }
        let cycles = cost::BOOKKEEPING + report.repaired_registers * 2 * cost::CSR_WRITE;
        self.metrics.bump(self.ids.cycles, cycles);
        report
    }

    /// Quarantine recovery: discards `domain`'s (possibly corrupt)
    /// permission table and rebuilds it from the monitor's authoritative
    /// GMS bookkeeping. Grants made outside the GMS list (shared IPC
    /// buffers) are conservatively dropped — fail-closed — and must be
    /// re-granted by their owners. Returns the modelled cycle cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains, for the PMP flavour (which has no
    /// tables to rebuild), or when table memory is exhausted.
    pub fn rebuild_domain_table<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
    ) -> Result<u64, MonitorError> {
        if self.flavor == TeeFlavor::PenglaiPmp {
            return Err(MonitorError::IntegrityLost(domain));
        }
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        let mut table = PmpTable::new(self.ram, machine.phys_mut(), &mut self.table_frames)
            .map_err(|_| MonitorError::OutOfMemory)?;
        let fill = if self.flavor == TeeFlavor::PenglaiHpmp {
            FillPolicy::HugeWhenAligned
        } else {
            FillPolicy::PerPage
        };
        let grants: Vec<(PmpRegion, Perms)> = self
            .domain(domain)?
            .gmss
            .iter()
            .map(|g| (g.region, g.perms))
            .collect();
        let mut writes = 0u64;
        for (region, perms) in grants {
            writes += table.set_range_perm(
                machine.phys_mut(),
                &mut self.table_frames,
                region.base,
                region.size,
                perms,
                fill,
            )?;
        }
        if domain == DomainId::HOST {
            let holes: Vec<PmpRegion> = self
                .domains
                .iter()
                .filter(|d| d.id != DomainId::HOST)
                .flat_map(|d| d.gmss.iter().map(|g| g.region))
                .collect();
            for hole in holes {
                writes += table.set_range_perm(
                    machine.phys_mut(),
                    &mut self.table_frames,
                    hole.base,
                    hole.size,
                    Perms::NONE,
                    FillPolicy::PerPage,
                )?;
            }
        }
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        d.table = Some(table);
        self.metrics.bump(self.ids.table_writes, writes);
        cycles += writes * cost::TABLE_ENTRY_WRITE;
        // IOPMP entries may reference the replaced table root.
        cycles += self.sync_iopmp(machine);
        if self.current == domain {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.note_shootdown(domain);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// The reference permission oracle: re-derives the access decision for
    /// the *current* domain's S/U-mode accesses from the monitor's own
    /// bookkeeping — no registers, no DRAM-resident tables, no caches. The
    /// fast path may deny an access the oracle would allow (graceful
    /// degradation under faults), but any access the fast path grants and
    /// the oracle denies is an isolation violation; fault campaigns fail
    /// on that invariant.
    pub fn oracle_check(&self, addr: PhysAddr, kind: AccessKind) -> bool {
        self.oracle_check_for(self.current, addr, kind)
    }

    /// [`SecureMonitor::oracle_check`], for an arbitrary domain.
    pub fn oracle_check_for(&self, domain: DomainId, addr: PhysAddr, kind: AccessKind) -> bool {
        let Ok(d) = self.domain(domain) else {
            return false;
        };
        if self.monitor_region.contains(addr) {
            return false;
        }
        // The PMP flavour programs the smallest NAPOT superset of each
        // region, so its *intended* policy is the widened one.
        let widen = self.flavor == TeeFlavor::PenglaiPmp;
        let covered = |region: PmpRegion| {
            let region = if widen {
                napot_superset(region)
            } else {
                region
            };
            region.contains(addr)
        };
        if !d
            .gmss
            .iter()
            .any(|g| covered(g.region) && g.perms.allows(kind))
        {
            return false;
        }
        // Enclave carve-outs override the host's whole-memory GMS: they
        // are deny entries (PMP flavour) or host-table revocations.
        if domain == DomainId::HOST {
            let carved = self
                .domains
                .iter()
                .filter(|other| other.id != DomainId::HOST)
                .any(|other| other.gmss.iter().any(|g| covered(g.region)));
            if carved {
                return false;
            }
        }
        true
    }

    /// True if changing `domain`'s region holdings invalidates the image
    /// programmed for the *currently running* domain: either `domain`
    /// itself is running, or the PMP flavour's host is — the Keystone-style
    /// host image carries one deny entry per enclave region, so any
    /// enclave's holdings are part of it. (The table flavours revoke
    /// through the host's permission table instead, which the fast path
    /// re-walks, so they never need this.) Caught by the oracle-lockstep
    /// fuzzer: without the host-image reprogram, the window between an
    /// enclave alloc and the next domain switch left the running host with
    /// a stale image granting it the enclave's new region.
    fn image_depends_on(&self, domain: DomainId) -> bool {
        self.image_depends(self.current, domain)
    }

    /// The hart-generic form of [`SecureMonitor::image_depends_on`]: does a
    /// hart whose scheduled domain is `scheduled` carry `changed`'s
    /// holdings in its register image? True when the changed domain itself
    /// is scheduled there, or when the PMP flavour's host is — its
    /// Keystone-style image holds one deny entry per enclave region, so
    /// *any* enclave's holdings are part of every host image.
    pub(crate) fn image_depends(&self, scheduled: DomainId, changed: DomainId) -> bool {
        scheduled == changed
            || (self.flavor == TeeFlavor::PenglaiPmp
                && scheduled == DomainId::HOST
                && changed != DomainId::HOST)
    }

    /// Takes the pending cross-hart shootdown obligations. See the field
    /// docs; the SMP layer calls this after every monitor op. A plain
    /// allocation yields at most one domain; an allocation that triggered
    /// compaction yields every domain whose memory moved.
    pub fn take_shootdowns(&mut self) -> Vec<DomainId> {
        std::mem::take(&mut self.pending_shootdowns)
    }

    /// Notes a cross-hart shootdown obligation for `domain` (deduplicated —
    /// one IPI round covers all changes of one op).
    fn note_shootdown(&mut self, domain: DomainId) {
        if !self.pending_shootdowns.contains(&domain) {
            self.pending_shootdowns.push(domain);
        }
    }

    /// Re-points `current` without reprogramming anything. The SMP layer
    /// uses this to bank the monitor's notion of "the running domain" to
    /// whichever hart an op (or a remote reprogram) is being performed on;
    /// every register write still goes through
    /// [`SecureMonitor::program_current`].
    pub(crate) fn set_current_unchecked(&mut self, id: DomainId) {
        self.current = id;
    }

    /// Reprograms the register file for the current domain. Returns cycles.
    pub(crate) fn program_current<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
    ) -> Result<u64, MonitorError> {
        let before = machine.regs().csr_writes();
        let current = self.current;
        let flavor = self.flavor;

        // Disable everything except entry 0 (the monitor's own segment).
        for idx in 1..machine.regs().len() {
            if !machine.regs().cfg_reg(idx).locked() {
                machine.regs_mut().disable(idx).ok();
            }
        }

        match flavor {
            TeeFlavor::PenglaiPmp => {
                let mut next = 1;
                if current == DomainId::HOST {
                    // Keystone-style: deny entries for every enclave region
                    // (they match first), then allow entries for the host.
                    let enclaves: Vec<PmpRegion> = self
                        .domains
                        .iter()
                        .filter(|d| d.id != DomainId::HOST)
                        .flat_map(|d| d.gmss.iter().map(|g| g.region))
                        .collect();
                    let host: Vec<PmpRegion> = self
                        .domain(DomainId::HOST)?
                        .gmss
                        .iter()
                        .map(|g| g.region)
                        .collect();
                    if 1 + enclaves.len() + host.len() > machine.regs().len() {
                        return Err(MonitorError::OutOfPmpEntries);
                    }
                    for region in enclaves {
                        machine.regs_mut().configure_segment(
                            next,
                            napot_superset(region),
                            Perms::NONE,
                        )?;
                        next += 1;
                    }
                    for region in host {
                        machine.regs_mut().configure_segment(
                            next,
                            napot_superset(region),
                            Perms::RWX,
                        )?;
                        next += 1;
                    }
                } else {
                    let regions: Vec<PmpRegion> = self
                        .domain(current)?
                        .gmss
                        .iter()
                        .map(|g| g.region)
                        .collect();
                    if 1 + regions.len() > machine.regs().len() {
                        return Err(MonitorError::OutOfPmpEntries);
                    }
                    for region in regions {
                        machine.regs_mut().configure_segment(
                            next,
                            napot_superset(region),
                            Perms::RWX,
                        )?;
                        next += 1;
                    }
                }
            }
            TeeFlavor::PenglaiPmpt | TeeFlavor::PenglaiHpmp => {
                let d = self
                    .domains
                    .iter()
                    .find(|d| d.id == current)
                    .ok_or(MonitorError::NoSuchDomain(current))?;
                let root = d
                    .table
                    .as_ref()
                    .ok_or(MonitorError::IntegrityLost(current))?
                    .root();
                let mut next = 1;
                if flavor == TeeFlavor::PenglaiHpmp {
                    // Fast GMSs become segments, lowest entries first.
                    for gms in d.gmss.iter().filter(|g| g.label == GmsLabel::Fast) {
                        if next + 2 >= machine.regs().len() || !gms.segment_compatible() {
                            continue; // cache-like: fall back to the table
                        }
                        machine
                            .regs_mut()
                            .configure_segment(next, gms.region, gms.perms)?;
                        next += 1;
                    }
                }
                machine
                    .regs_mut()
                    .configure_table(next, self.ram, root, TableLevels::Two)?;
            }
        }

        let writes = machine.regs().csr_writes() - before;
        self.metrics.bump(self.ids.csr_writes, writes);
        // Refresh the shadow copy scrub compares against.
        let regs = machine.regs();
        self.shadow_regs = (0..regs.len())
            .map(|idx| (regs.addr_reg(idx), regs.cfg_reg(idx)))
            .collect();
        Ok(writes * cost::CSR_WRITE)
    }

    /// Grants or revokes a region in the host's table.
    fn grant_in_host_table<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        region: PmpRegion,
        perms: Perms,
    ) -> Result<u64, MonitorError> {
        let table_writes_id = self.ids.table_writes;
        let metrics = &mut self.metrics;
        let table_frames = &mut self.table_frames;
        let host = self
            .domains
            .iter_mut()
            .find(|d| d.id == DomainId::HOST)
            .ok_or(MonitorError::NoSuchDomain(DomainId::HOST))?;
        // The PMP flavour has no host table: region return is a pure
        // bookkeeping operation there (segments reprogram on switch).
        let Some(table) = host.table.as_mut() else {
            return Ok(0);
        };
        let writes = table.set_range_perm(
            machine.phys_mut(),
            table_frames,
            region.base,
            region.size,
            perms,
            FillPolicy::PerPage,
        )?;
        metrics.bump(table_writes_id, writes);
        Ok(writes * cost::TABLE_ENTRY_WRITE)
    }

    /// Total enclave regions — each needs a deny entry while the host runs
    /// (PMP flavour).
    fn enclave_region_count(&self) -> usize {
        self.domains
            .iter()
            .filter(|d| d.id != DomainId::HOST)
            .map(|d| d.gmss.len())
            .sum()
    }

    fn domain(&self, id: DomainId) -> Result<&Domain, MonitorError> {
        self.domains
            .iter()
            .find(|d| d.id == id)
            .ok_or(MonitorError::NoSuchDomain(id))
    }
}

/// True when `region` is not strictly contained in another GMS of the same
/// domain — i.e. it owns its physical range rather than aliasing a slice of
/// a parent's.
fn is_top_level(gmss: &[Gms], region: PmpRegion) -> bool {
    !gmss.iter().any(|o| {
        o.region != region && o.region.base <= region.base && o.region.end() >= region.end()
    })
}

/// Smallest NAPOT region containing `region`.
fn napot_superset(region: PmpRegion) -> PmpRegion {
    let mut size = region.size.next_power_of_two().max(8);
    loop {
        let base = PhysAddr::new(region.base.raw() & !(size - 1));
        if base.raw() + size >= region.end().raw() {
            return PmpRegion::new(base, size);
        }
        size *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_machine::MachineConfig;

    const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

    fn boot(flavor: TeeFlavor) -> (Machine, SecureMonitor) {
        let mut machine = Machine::new(MachineConfig::rocket());
        let monitor = SecureMonitor::boot(&mut machine, flavor, RAM).expect("monitor boots");
        (machine, monitor)
    }

    #[test]
    fn boot_programs_monitor_segment() {
        let (machine, monitor) = boot(TeeFlavor::PenglaiHpmp);
        assert_eq!(monitor.domain_count(), 1);
        assert_eq!(monitor.current(), DomainId::HOST);
        // Entry 0 covers the monitor region with no S/U permissions.
        let region = machine.regs().entry_region(0).unwrap();
        assert_eq!(region.base, RAM.base);
    }

    #[test]
    fn create_and_switch_domains() {
        for flavor in [
            TeeFlavor::PenglaiPmp,
            TeeFlavor::PenglaiPmpt,
            TeeFlavor::PenglaiHpmp,
        ] {
            let (mut machine, mut monitor) = boot(flavor);
            let (id, _) = monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
            let cycles = monitor.switch_to(&mut machine, id).unwrap();
            assert!(cycles > 0);
            assert_eq!(monitor.current(), id);
            monitor.switch_to(&mut machine, DomainId::HOST).unwrap();
            assert_eq!(monitor.current(), DomainId::HOST);
        }
    }

    #[test]
    fn switch_cost_stable_in_domain_count() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (first, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let cost_2 = monitor.switch_to(&mut machine, first).unwrap();
        for _ in 0..99 {
            monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
        }
        assert_eq!(monitor.domain_count(), 101);
        let cost_101 = monitor.switch_to(&mut machine, first).unwrap();
        let ratio = cost_101 as f64 / cost_2 as f64;
        assert!(
            (0.99..=1.01).contains(&ratio),
            "switch cost must be stable: {ratio}"
        );
    }

    #[test]
    fn pmp_flavor_hits_entry_wall() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiPmp);
        let mut created = 0;
        loop {
            match monitor.create_domain(&mut machine, 1 << 20, GmsLabel::Slow) {
                Ok(_) => created += 1,
                Err(MonitorError::OutOfPmpEntries) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(created < 100, "PMP flavour must hit the entry wall");
        }
        assert!(created <= 15, "wall at <16 domains, got {created}");
    }

    #[test]
    fn hpmp_supports_over_100_domains() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        for _ in 0..100 {
            monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
        }
        assert_eq!(monitor.domain_count(), 101);
    }

    #[test]
    fn pmp_flavor_region_limit_per_domain() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiPmp);
        let mut allocated = 0;
        loop {
            match monitor.alloc_region(&mut machine, DomainId::HOST, 64 * 1024, GmsLabel::Slow) {
                Ok(_) => allocated += 1,
                Err(MonitorError::OutOfPmpEntries) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(allocated < 64);
        }
        assert!(
            allocated <= 14,
            "PMP flavour regions bounded by entries: {allocated}"
        );
    }

    #[test]
    fn hpmp_supports_over_100_regions() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        for _ in 0..110 {
            monitor
                .alloc_region(&mut machine, DomainId::HOST, 64 * 1024, GmsLabel::Slow)
                .unwrap();
        }
        assert!(monitor.regions_of(DomainId::HOST).unwrap().len() > 100);
    }

    #[test]
    fn free_region_round_trip() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (region, _) = monitor
            .alloc_region(&mut machine, DomainId::HOST, 64 * 1024, GmsLabel::Slow)
            .unwrap();
        let before = monitor.regions_of(DomainId::HOST).unwrap().len();
        monitor
            .free_region(&mut machine, DomainId::HOST, region.base)
            .unwrap();
        assert_eq!(
            monitor.regions_of(DomainId::HOST).unwrap().len(),
            before - 1
        );
        assert_eq!(
            monitor.free_region(&mut machine, DomainId::HOST, region.base),
            Err(MonitorError::NotOwned)
        );
    }

    #[test]
    fn huge_fill_makes_large_alloc_cheap_for_hpmp() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (_, cost_32m) = monitor
            .alloc_region(&mut machine, DomainId::HOST, 32 << 20, GmsLabel::Slow)
            .unwrap();
        let (mut machine2, mut monitor2) = boot(TeeFlavor::PenglaiPmpt);
        let (_, cost_32m_pmpt) = monitor2
            .alloc_region(&mut machine2, DomainId::HOST, 32 << 20, GmsLabel::Slow)
            .unwrap();
        assert!(
            cost_32m < cost_32m_pmpt / 10,
            "huge fill should be much cheaper: {cost_32m} vs {cost_32m_pmpt}"
        );
    }

    #[test]
    fn destroy_returns_memory_to_host() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (id, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        monitor.switch_to(&mut machine, id).unwrap();
        monitor.destroy_domain(&mut machine, id).unwrap();
        assert_eq!(monitor.current(), DomainId::HOST);
        assert_eq!(monitor.domain_count(), 1);
        assert!(matches!(
            monitor.switch_to(&mut machine, id),
            Err(MonitorError::NoSuchDomain(_))
        ));
    }

    #[test]
    fn relabel_is_registers_only() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (region, _) = monitor
            .alloc_region(&mut machine, DomainId::HOST, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let writes_before = monitor.stats().table_writes;
        monitor
            .relabel(&mut machine, DomainId::HOST, region.base, GmsLabel::Fast)
            .unwrap();
        assert_eq!(
            monitor.stats().table_writes,
            writes_before,
            "no table writes on relabel"
        );
        // And the fast GMS now occupies a segment entry.
        let seg = machine.regs().entry_region(1);
        assert_eq!(seg.map(|r| r.base), Some(region.base));
    }

    #[test]
    fn scrub_repairs_corrupted_registers() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        // Flip bits in entry 1's config (the table entry) and entry 0's
        // address — including a spurious lock bit.
        machine.regs_mut().corrupt_cfg(1, 0b1000_0001);
        machine.regs_mut().corrupt_addr(0, 1 << 20);
        let report = monitor.scrub(&mut machine);
        assert_eq!(report.repaired_registers, 2);
        assert!(report.corrupt_domains.is_empty());
        let clean = monitor.scrub(&mut machine);
        assert!(clean.clean(), "second pass finds nothing: {clean:?}");
        // The monitor segment is intact again.
        let region = machine.regs().entry_region(0).unwrap();
        assert_eq!(region.base, RAM.base);
    }

    #[test]
    fn rebuild_recovers_corrupt_table() {
        use hpmp_core::PmptwCache;
        use hpmp_memsim::{AccessKind, PrivMode};

        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let probe = monitor.regions_of(DomainId::HOST).unwrap()[0].region.base;
        // Find the pmpte the check reads for the probe address and flip a
        // bit in it.
        let pmpte_addr = {
            let check = machine.regs().check(
                machine.phys(),
                &mut PmptwCache::disabled(),
                probe,
                AccessKind::Read,
                PrivMode::Supervisor,
            );
            assert!(check.allowed, "healthy table grants the host base");
            check.refs.last().expect("table walk has refs").addr
        };
        let raw = machine.phys().read_u64(pmpte_addr);
        machine.phys_mut().write_u64(pmpte_addr, raw ^ (1 << 1));
        let report = monitor.scrub(&mut machine);
        assert_eq!(report.corrupt_domains, vec![DomainId::HOST]);
        monitor
            .rebuild_domain_table(&mut machine, DomainId::HOST)
            .expect("rebuild");
        assert!(monitor.scrub(&mut machine).clean());
        let check = machine.regs().check(
            machine.phys(),
            &mut PmptwCache::disabled(),
            probe,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(check.allowed, "rebuilt table serves the host again");
    }

    #[test]
    fn oracle_never_grants_less_than_it_should() {
        use hpmp_core::PmptwCache;
        use hpmp_memsim::{AccessKind, PrivMode};

        for flavor in [
            TeeFlavor::PenglaiPmp,
            TeeFlavor::PenglaiPmpt,
            TeeFlavor::PenglaiHpmp,
        ] {
            let (mut machine, mut monitor) = boot(flavor);
            let (id, _) = monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
            let enclave_base = monitor.regions_of(id).unwrap()[0].region.base;
            let host_base = monitor.regions_of(DomainId::HOST).unwrap()[0].region.base;
            for current in [DomainId::HOST, id] {
                monitor.switch_to(&mut machine, current).unwrap();
                for probe in [
                    RAM.base,
                    host_base,
                    enclave_base,
                    PhysAddr::new(RAM.end().raw() - PAGE_SIZE),
                ] {
                    let fast = machine
                        .regs()
                        .check(
                            machine.phys(),
                            &mut PmptwCache::disabled(),
                            probe,
                            AccessKind::Read,
                            PrivMode::Supervisor,
                        )
                        .allowed;
                    let oracle = monitor.oracle_check(probe, AccessKind::Read);
                    assert!(
                        !fast || oracle,
                        "{flavor}: fast path grants {probe} in {current} but oracle denies"
                    );
                }
            }
            // The oracle always denies the monitor's own memory.
            assert!(!monitor.oracle_check(RAM.base, AccessKind::Read));
            assert!(!monitor.oracle_check_for(id, host_base, AccessKind::Write));
        }
    }

    /// Regression (found by the oracle-lockstep fuzzer): in the PMP
    /// flavour, creating an enclave while the host runs must immediately
    /// install the Keystone-style deny entry in the *running* host image —
    /// not wait for the next switch — and destroying the enclave must drop
    /// it again.
    #[test]
    fn pmp_host_image_tracks_enclave_lifecycle() {
        use hpmp_core::PmptwCache;
        use hpmp_memsim::{AccessKind, PrivMode};

        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiPmp);
        let (id, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let enclave_base = monitor.regions_of(id).unwrap()[0].region.base;
        let host_probe = |machine: &Machine| {
            machine
                .regs()
                .check(
                    machine.phys(),
                    &mut PmptwCache::disabled(),
                    enclave_base,
                    AccessKind::Read,
                    PrivMode::Supervisor,
                )
                .allowed
        };
        assert_eq!(monitor.current(), DomainId::HOST);
        assert!(
            !host_probe(&machine),
            "running host must lose the enclave region at create time"
        );
        // A further region allocated to the enclave is denied too.
        let (extra, _) = monitor
            .alloc_region(&mut machine, id, 1 << 16, GmsLabel::Slow)
            .unwrap();
        let extra_check = machine.regs().check(
            machine.phys(),
            &mut PmptwCache::disabled(),
            extra.base,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(!extra_check.allowed, "running host sees new enclave allocs");
        monitor.destroy_domain(&mut machine, id).unwrap();
        assert!(
            host_probe(&machine),
            "destroy must return the region to the running host"
        );
    }

    /// Regression (satellite of PR 9): before the region pool, freed and
    /// destroyed regions were never returned to the arena, so repeated
    /// create/destroy of large domains bled it dry. Max-size churn must
    /// reach a fixed point instead.
    #[test]
    fn create_destroy_churn_of_max_size_domains_never_leaks() {
        for flavor in [
            TeeFlavor::PenglaiPmp,
            TeeFlavor::PenglaiPmpt,
            TeeFlavor::PenglaiHpmp,
        ] {
            let (mut machine, mut monitor) = boot(flavor);
            let free0 = monitor.arena_total_free();
            // 256 MiB is the largest NAPOT size that can align inside the
            // 1 GiB test arena more than once.
            for round in 0..20 {
                let (id, _) = monitor
                    .create_domain(&mut machine, 256 << 20, GmsLabel::Slow)
                    .unwrap_or_else(|e| panic!("{flavor} leaked by round {round}: {e}"));
                monitor.destroy_domain(&mut machine, id).unwrap();
                assert_eq!(monitor.arena_total_free(), free0, "{flavor} round {round}");
            }
            assert_eq!(monitor.degrade_stage(), DegradeStage::Normal);
        }
    }

    /// Table frames are recycled on destroy: table-flavour churn must not
    /// exhaust the 60 MiB table arena either.
    #[test]
    fn destroy_recycles_table_frames() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiPmpt);
        for _ in 0..200 {
            let (id, _) = monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .expect("table frames must recycle");
            monitor.destroy_domain(&mut machine, id).unwrap();
        }
    }

    fn small_boot(flavor: TeeFlavor) -> (Machine, SecureMonitor) {
        // 128 MiB RAM → a 64 MiB region arena: small enough to exhaust.
        let ram = PmpRegion::new(PhysAddr::new(0x8000_0000), 128 << 20);
        let mut machine = Machine::new(MachineConfig::rocket());
        let monitor = SecureMonitor::boot(&mut machine, flavor, ram).expect("monitor boots");
        (machine, monitor)
    }

    #[test]
    fn exhaustion_walks_the_degradation_ladder_for_table_flavours() {
        let (mut machine, mut monitor) = small_boot(TeeFlavor::PenglaiHpmp);
        // Three 16 MiB NAPOT allocations fill everything above the first
        // (unaligned, just-under-16 MiB) gap.
        for _ in 0..3 {
            monitor
                .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
                .unwrap();
        }
        assert_eq!(monitor.degrade_stage(), DegradeStage::Normal);
        // A fourth 16 MiB request: no NAPOT fit, compaction can't move the
        // host's own regions, exact-fit needs 16 MiB and the gap is 4 KiB
        // short — admission control.
        let err = monitor
            .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
            .unwrap_err();
        assert!(
            matches!(err, MonitorError::ResourceExhausted { retry_after_ops } if retry_after_ops > 0),
            "want backpressure, got {err:?}"
        );
        assert_eq!(monitor.degrade_stage(), DegradeStage::Admission);
        let snap = monitor.metrics_snapshot();
        assert_eq!(snap.get("monitor.degrade.stage"), Some(3));
        assert_eq!(snap.get("monitor.degrade.enter_stage1"), Some(1));
        assert_eq!(snap.get("monitor.degrade.enter_stage2"), Some(1));
        assert_eq!(snap.get("monitor.degrade.enter_stage3"), Some(1));
        assert_eq!(snap.get("monitor.degrade.rejected"), Some(1));
        // An 8 MiB request fits the gap exactly-fit: served Slow under
        // stage 3, which steps the monitor back to stage 2 — and the label
        // downgrade is forced even when the caller asked for Fast.
        let (region, _) = monitor
            .alloc_region(&mut machine, DomainId::HOST, 8 << 20, GmsLabel::Fast)
            .unwrap();
        assert_eq!(monitor.degrade_stage(), DegradeStage::TableOnly);
        let gms = monitor
            .regions_of(DomainId::HOST)
            .unwrap()
            .iter()
            .find(|g| g.region == region)
            .copied()
            .unwrap();
        assert_eq!(gms.label, GmsLabel::Slow, "stage 2 forces table mode");
        assert_eq!(
            monitor
                .metrics_snapshot()
                .get("monitor.degrade.slow_allocs"),
            Some(1)
        );
    }

    #[test]
    fn hysteresis_repromotes_after_recovery() {
        let (mut machine, mut monitor) = small_boot(TeeFlavor::PenglaiHpmp);
        monitor.set_degradation_policy(DegradationPolicy {
            promote_after: 2,
            healthy_free: 4 << 20,
            retry_after_ops: 16,
        });
        let mut bases = Vec::new();
        for _ in 0..3 {
            let (r, _) = monitor
                .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
                .unwrap();
            bases.push(r.base);
        }
        monitor
            .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
            .unwrap_err();
        assert_eq!(monitor.degrade_stage(), DegradeStage::Admission);
        // Capacity comes back: each free is one healthy settled op.
        for base in bases {
            monitor
                .free_region(&mut machine, DomainId::HOST, base)
                .unwrap();
        }
        // 3 frees at promote_after=2: stage 3 → 2 after the second. Two
        // more no-op settles (allocs) walk it back to normal.
        for _ in 0..4 {
            let (r, _) = monitor
                .alloc_region(&mut machine, DomainId::HOST, 1 << 20, GmsLabel::Slow)
                .unwrap();
            monitor
                .free_region(&mut machine, DomainId::HOST, r.base)
                .unwrap();
        }
        assert_eq!(monitor.degrade_stage(), DegradeStage::Normal);
        assert!(
            monitor
                .metrics_snapshot()
                .get("monitor.degrade.repromotions")
                .unwrap_or(0)
                >= 3
        );
    }

    #[test]
    fn pmp_flavour_skips_the_table_stage() {
        let (mut machine, mut monitor) = small_boot(TeeFlavor::PenglaiPmp);
        for _ in 0..3 {
            monitor
                .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
                .unwrap();
        }
        let err = monitor
            .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
            .unwrap_err();
        assert!(matches!(err, MonitorError::ResourceExhausted { .. }));
        assert_eq!(monitor.degrade_stage(), DegradeStage::Admission);
        let snap = monitor.metrics_snapshot();
        assert_eq!(
            snap.get("monitor.degrade.enter_stage2"),
            Some(0),
            "no table to fall back on"
        );
        // A freed region re-opens the fast path even under stage 3.
        let victim = monitor.regions_of(DomainId::HOST).unwrap()[1].region.base;
        monitor
            .free_region(&mut machine, DomainId::HOST, victim)
            .unwrap();
        monitor
            .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
            .unwrap();
        assert!(monitor.degrade_stage() < DegradeStage::Admission);
    }

    /// Hysteresis boundary: the repromotion step out of admission control
    /// lands on the next rung *of the flavour's own ladder* — table-only
    /// for the table flavours, straight to compacting for PMP (which has
    /// no table-only rung in either direction).
    #[test]
    fn repromotion_out_of_admission_respects_the_flavour_ladder() {
        for (flavor, expect) in [
            (TeeFlavor::PenglaiPmp, DegradeStage::Compacting),
            (TeeFlavor::PenglaiPmpt, DegradeStage::TableOnly),
            (TeeFlavor::PenglaiHpmp, DegradeStage::TableOnly),
        ] {
            let (mut machine, mut monitor) = small_boot(flavor);
            let mut bases = Vec::new();
            for _ in 0..3 {
                let (r, _) = monitor
                    .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
                    .unwrap();
                bases.push(r.base);
            }
            monitor
                .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
                .unwrap_err();
            assert_eq!(monitor.degrade_stage(), DegradeStage::Admission, "{flavor}");
            // One healthy settled op promotes immediately…
            monitor.set_degradation_policy(DegradationPolicy {
                promote_after: 1,
                healthy_free: 1 << 20,
                retry_after_ops: 16,
            });
            monitor
                .free_region(&mut machine, DomainId::HOST, bases[0])
                .unwrap();
            // …and must land on the flavour's own next rung.
            assert_eq!(monitor.degrade_stage(), expect, "{flavor}");
        }
    }

    /// Hysteresis boundary: `healthy_free` is inclusive at the monitor
    /// level — a pool whose largest hole is *exactly* the threshold counts
    /// as healthy, one byte less resets the streak. Checked on both a PMP
    /// and a table flavour, since they settle through different
    /// reprogramming paths.
    #[test]
    fn healthy_free_threshold_is_inclusive_for_both_flavours() {
        for flavor in [TeeFlavor::PenglaiPmp, TeeFlavor::PenglaiHpmp] {
            let (mut machine, mut monitor) = small_boot(flavor);
            let mut bases = Vec::new();
            for _ in 0..3 {
                let (r, _) = monitor
                    .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
                    .unwrap();
                bases.push(r.base);
            }
            monitor
                .alloc_region(&mut machine, DomainId::HOST, 16 << 20, GmsLabel::Slow)
                .unwrap_err();
            assert_eq!(monitor.degrade_stage(), DegradeStage::Admission, "{flavor}");
            // Walk back to the compacting stage, where a successful
            // allocation no longer moves the stage by itself (at admission
            // any served request recovers, which would mask the settle
            // signal under test).
            monitor.set_degradation_policy(DegradationPolicy {
                promote_after: 1,
                healthy_free: 1 << 20,
                retry_after_ops: 16,
            });
            monitor
                .free_region(&mut machine, DomainId::HOST, bases[0])
                .unwrap();
            if flavor != TeeFlavor::PenglaiPmp {
                // The table flavours land on table-only first; one more
                // healthy settle steps them to compacting.
                monitor
                    .free_region(&mut machine, DomainId::HOST, bases[1])
                    .unwrap();
            }
            assert_eq!(
                monitor.degrade_stage(),
                DegradeStage::Compacting,
                "{flavor}"
            );
            let largest = monitor.arena_largest_free();
            assert!(largest >= 16 << 20);

            // Threshold one byte above the actual largest hole: every
            // settle sees an unhealthy pool, so even promote_after=1 never
            // promotes.
            monitor.set_degradation_policy(DegradationPolicy {
                promote_after: 1,
                healthy_free: largest + 1,
                retry_after_ops: 16,
            });
            let (id, _) = monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
            monitor.destroy_domain(&mut machine, id).unwrap();
            assert_eq!(
                monitor.degrade_stage(),
                DegradeStage::Compacting,
                "{flavor}: threshold {largest}+1 must not count as healthy"
            );

            // Exactly at the threshold: the destroy's settle (pool fully
            // restored) is healthy and promotes back to normal.
            monitor.set_degradation_policy(DegradationPolicy {
                promote_after: 1,
                healthy_free: largest,
                retry_after_ops: 16,
            });
            let (id, _) = monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
            monitor.destroy_domain(&mut machine, id).unwrap();
            assert_eq!(
                monitor.degrade_stage(),
                DegradeStage::Normal,
                "{flavor}: the exact threshold must count as healthy"
            );
        }
    }

    #[test]
    fn compaction_relocates_enclaves_and_preserves_their_bytes() {
        use hpmp_core::PmptwCache;
        use hpmp_memsim::PrivMode;

        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        // Equal sizes: lowest-fit would otherwise tuck a smaller region
        // into the alignment gap *below* the first one.
        let (low, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let (high, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let old = monitor.regions_of(high).unwrap()[0].region;
        // A canary in the enclave's memory, and a hole below it.
        machine
            .phys_mut()
            .write_u64(old.base, 0xFEED_F00D_CAFE_0001);
        monitor.destroy_domain(&mut machine, low).unwrap();
        let report = monitor.compact(&mut machine, None).unwrap();
        assert_eq!(report.moved_regions, 1);
        assert_eq!(report.moved_pages, (1 << 20) / PAGE_SIZE);
        assert_eq!(report.remaining, 0);
        assert!(report.cycles > CopyCost::DEFAULT.relocation(report.moved_pages));
        let new = monitor.regions_of(high).unwrap()[0].region;
        assert!(new.base < old.base, "slid down: {new:?} vs {old:?}");
        assert_eq!(new.size, old.size);
        assert_eq!(
            machine.phys().read_u64(new.base),
            0xFEED_F00D_CAFE_0001,
            "bytes moved with the region"
        );
        // The fast path agrees with the oracle at both ends of the move.
        monitor.switch_to(&mut machine, high).unwrap();
        for (addr, want) in [(new.base, true), (old.base, false)] {
            let fast = machine
                .regs()
                .check(
                    machine.phys(),
                    &mut PmptwCache::disabled(),
                    addr,
                    AccessKind::Read,
                    PrivMode::Supervisor,
                )
                .allowed;
            assert_eq!(fast, want, "fast path at {addr}");
            assert_eq!(monitor.oracle_check(addr, AccessKind::Read), want);
        }
        // Idempotent once compacted.
        let again = monitor.compact(&mut machine, None).unwrap();
        assert_eq!(again.moved_regions, 0);
    }

    #[test]
    fn compaction_shifts_sub_gms_with_their_parent() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (low, _) = monitor
            .create_domain(&mut machine, 4 << 20, GmsLabel::Slow)
            .unwrap();
        let (id, _) = monitor
            .create_domain(&mut machine, 4 << 20, GmsLabel::Slow)
            .unwrap();
        let parent = monitor.regions_of(id).unwrap()[0].region;
        let sub = PmpRegion::new(PhysAddr::new(parent.base.raw() + (1 << 20)), 1 << 20);
        monitor
            .label_subregion(&mut machine, id, sub, GmsLabel::Fast)
            .unwrap();
        monitor.destroy_domain(&mut machine, low).unwrap();
        let moved = monitor.compact(&mut machine, None).unwrap();
        assert_eq!(moved.moved_regions, 1, "one top-level move covers both");
        let gmss = monitor.regions_of(id).unwrap();
        let new_parent = gmss[0].region;
        let new_sub = gmss[1].region;
        assert!(new_parent.base < parent.base);
        assert_eq!(
            new_sub.base.raw() - new_parent.base.raw(),
            1 << 20,
            "sub-GMS keeps its offset inside the parent"
        );
    }

    #[test]
    fn pinned_domains_are_not_moved() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (low, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let (high, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        monitor.pin_domain(high).unwrap();
        monitor.destroy_domain(&mut machine, low).unwrap();
        assert_eq!(
            monitor.compact(&mut machine, None).unwrap().moved_regions,
            0
        );
        monitor.unpin_domain(high);
        assert_eq!(
            monitor.compact(&mut machine, None).unwrap().moved_regions,
            1
        );
    }

    #[test]
    fn budgeted_compaction_stops_mid_pass_and_resumes() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (low, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let mut movers = Vec::new();
        for _ in 0..3 {
            let (id, _) = monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
            movers.push(id);
        }
        monitor.destroy_domain(&mut machine, low).unwrap();
        let first = monitor.compact(&mut machine, Some(1)).unwrap();
        assert_eq!(first.moved_regions, 1);
        assert!(first.remaining > 0, "budget left work behind");
        let rest = monitor.compact(&mut machine, None).unwrap();
        assert!(rest.moved_regions >= 1);
        assert_eq!(rest.remaining, 0);
    }

    #[test]
    fn monitor_error_sources_chain_to_causes() {
        use std::error::Error;

        let hpmp: MonitorError = hpmp_core::HpmpError::Locked(3).into();
        assert!(hpmp.source().is_some());
        let table: MonitorError = hpmp_core::TableError::OutOfTableFrames.into();
        assert!(table.source().is_some());
        assert!(MonitorError::OutOfMemory.source().is_none());
        assert!(MonitorError::ResourceExhausted { retry_after_ops: 8 }
            .source()
            .is_none());
    }

    #[test]
    fn napot_superset_covers() {
        let r = PmpRegion::new(PhysAddr::new(0x8010_0000), 0x18_0000);
        let sup = napot_superset(r);
        assert!(sup.is_napot());
        assert!(sup.base <= r.base && sup.end() >= r.end());
    }
}
