//! The secure monitor (Penglai-HPMP's software TCB, §5).
//!
//! The monitor runs in M-mode, owns the HPMP register file, and isolates
//! domains: a **host** domain (the default OS) and any number of **enclave**
//! domains. Three flavours reproduce the paper's comparison systems:
//!
//! * **Penglai-PMP** — segment-per-region. The host's permitted memory is
//!   RAM minus every enclave region, which fragments as enclaves are carved
//!   out; once the fragments (plus the monitor's own entry) exceed 16 PMP
//!   entries, creation fails — the paper's "<16 domains" scalability wall.
//! * **Penglai-PMPT** — one permission table per domain; switching domains
//!   re-points one HPMP table entry at the target's table root.
//! * **Penglai-HPMP** — like PMPT, plus fast GMSs backed by segment entries
//!   (the cache-like management of §5): lower-numbered entries hold the fast
//!   GMSs, the table entry backs everything.
//!
//! Every operation's cycle cost is derived from the CSR writes, table-entry
//! writes and fence operations it performs — the quantities Figure 14
//! measures.

use hpmp_core::{
    DeviceId, FillPolicy, IoPmp, IoPmpEntry, IoPmpMode, PmpRegion, PmpTable, TableLevels,
};
use hpmp_machine::Machine;
use hpmp_memsim::{AccessKind, FrameAllocator, Perms, PhysAddr, PAGE_SIZE};
use hpmp_trace::{CounterId, MetricsRegistry, Snapshot, TraceSink, World};

use crate::gms::{Gms, GmsLabel};

/// Identifier of a domain. The host is always [`DomainId::HOST`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The host (default) domain.
    pub const HOST: DomainId = DomainId(0);
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == DomainId::HOST {
            f.write_str("host")
        } else {
            write!(f, "domain-{}", self.0)
        }
    }
}

/// Which comparison system the monitor implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TeeFlavor {
    /// Penglai with PMP (segment-per-region).
    PenglaiPmp,
    /// Penglai with PMP Table for everything.
    PenglaiPmpt,
    /// Penglai-HPMP (hybrid).
    PenglaiHpmp,
}

impl std::fmt::Display for TeeFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TeeFlavor::PenglaiPmp => "Penglai-PMP",
            TeeFlavor::PenglaiPmpt => "Penglai-PMPT",
            TeeFlavor::PenglaiHpmp => "Penglai-HPMP",
        })
    }
}

/// Errors surfaced by monitor calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorError {
    /// PMP flavour ran out of segment entries (the scalability wall).
    OutOfPmpEntries,
    /// No physical memory left for regions or tables.
    OutOfMemory,
    /// Unknown domain.
    NoSuchDomain(DomainId),
    /// The region does not belong to the domain.
    NotOwned,
    /// Underlying HPMP programming failed.
    Hpmp(hpmp_core::HpmpError),
    /// Underlying table programming failed.
    Table(hpmp_core::TableError),
    /// Boot parameters are unusable (RAM not NAPOT or too small).
    BadBootRam(&'static str),
    /// The monitor's authoritative state for a domain no longer matches
    /// the hardware-visible state (corrupt permission table, missing table
    /// root, …). The domain is quarantined until
    /// [`SecureMonitor::rebuild_domain_table`] reconstructs it.
    IntegrityLost(DomainId),
    /// The domain is already scheduled on another hart. An enclave's
    /// register image exists on at most one hart at a time; running it
    /// twice would let two harts race the same private memory.
    AlreadyScheduled(DomainId),
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::OutOfPmpEntries => f.write_str("no available PMP entries"),
            MonitorError::OutOfMemory => f.write_str("out of protected memory"),
            MonitorError::NoSuchDomain(id) => write!(f, "no such domain {id}"),
            MonitorError::NotOwned => f.write_str("region not owned by domain"),
            MonitorError::Hpmp(e) => write!(f, "HPMP programming failed: {e}"),
            MonitorError::Table(e) => write!(f, "PMP-table programming failed: {e}"),
            MonitorError::BadBootRam(why) => write!(f, "unusable RAM region: {why}"),
            MonitorError::IntegrityLost(id) => {
                write!(f, "integrity lost for {id}; domain quarantined")
            }
            MonitorError::AlreadyScheduled(id) => {
                write!(f, "{id} is already scheduled on another hart")
            }
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<hpmp_core::HpmpError> for MonitorError {
    fn from(e: hpmp_core::HpmpError) -> MonitorError {
        MonitorError::Hpmp(e)
    }
}

impl From<hpmp_core::TableError> for MonitorError {
    fn from(e: hpmp_core::TableError) -> MonitorError {
        MonitorError::Table(e)
    }
}

/// Cycle-cost constants for monitor operations (M-mode software costs,
/// calibrated to the magnitudes of Figure 14).
pub mod cost {
    /// Trap into and out of M-mode (ecall + context save/restore).
    pub const TRAP_ROUND_TRIP: u64 = 260;
    /// One CSR write to an HPMP register.
    pub const CSR_WRITE: u64 = 4;
    /// One pmpte read-modify-write in DRAM-resident tables.
    pub const TABLE_ENTRY_WRITE: u64 = 14;
    /// `sfence.vma` plus the TLB-refill ramp it causes.
    pub const FENCE: u64 = 120;
    /// Monitor bookkeeping per operation (list walks, checks).
    pub const BOOKKEEPING: u64 = 90;
}

#[derive(Debug)]
struct Domain {
    id: DomainId,
    gmss: Vec<Gms>,
    /// Per-domain permission table (table flavours).
    table: Option<PmpTable>,
}

/// Counters for monitor activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Domain switches performed.
    pub switches: u64,
    /// Total CSR writes.
    pub csr_writes: u64,
    /// Total pmpte writes.
    pub table_writes: u64,
    /// Total modelled cycles spent inside the monitor.
    pub cycles: u64,
}

/// Interned counter handles for the monitor's activity accounting; wired
/// once at boot so every bump is a plain `Vec<u64>` index operation.
#[derive(Debug)]
struct MonitorWiring {
    switches: CounterId,
    csr_writes: CounterId,
    table_writes: CounterId,
    cycles: CounterId,
}

impl MonitorWiring {
    fn wire(reg: &mut MetricsRegistry) -> MonitorWiring {
        MonitorWiring {
            switches: reg.counter("monitor.switches"),
            csr_writes: reg.counter("monitor.csr_writes"),
            table_writes: reg.counter("monitor.table_writes"),
            cycles: reg.counter("monitor.cycles"),
        }
    }
}

/// The secure monitor.
#[derive(Debug)]
pub struct SecureMonitor {
    flavor: TeeFlavor,
    ram: PmpRegion,
    monitor_region: PmpRegion,
    /// Bump allocator for domain regions.
    region_cursor: PhysAddr,
    region_end: PhysAddr,
    /// Frames for per-domain permission tables.
    table_frames: FrameAllocator,
    domains: Vec<Domain>,
    current: DomainId,
    next_id: u32,
    iopmp: IoPmp,
    devices: Vec<(DeviceId, DomainId)>,
    metrics: MetricsRegistry,
    ids: MonitorWiring,
    /// Monitor-private copy of the register values it last programmed —
    /// `(addr, cfg)` per entry. [`SecureMonitor::scrub`] compares the live
    /// file against this and force-restores any divergence, so register
    /// corruption (bit flips, interposed CSR writes) is bounded by one
    /// scrub period instead of persisting silently.
    shadow_regs: Vec<(u64, hpmp_core::PmpConfig)>,
    /// The last domain whose *holdings* changed (grant, revoke, teardown,
    /// relabel, rebuild) — the cross-hart shootdown obligation. Single-hart
    /// callers never look at it (the machine the op ran on was fenced
    /// inline); the SMP layer drains it after every op via
    /// [`SecureMonitor::take_shootdown`] and converts it into IPIs.
    pending_shootdown: Option<DomainId>,
}

/// What one [`SecureMonitor::scrub`] pass found and repaired.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Register-file entries whose live value diverged from the shadow and
    /// were force-restored.
    pub repaired_registers: u64,
    /// Domains whose permission table failed its integrity sampling; each
    /// is quarantined until [`SecureMonitor::rebuild_domain_table`] runs.
    pub corrupt_domains: Vec<DomainId>,
}

impl ScrubReport {
    /// True when the pass found nothing to repair.
    pub fn clean(&self) -> bool {
        self.repaired_registers == 0 && self.corrupt_domains.is_empty()
    }
}

impl SecureMonitor {
    /// Boots the monitor on `machine`, claiming the bottom of RAM for its
    /// own memory and (for table flavours) the per-domain tables.
    ///
    /// Layout: `[monitor 4 MiB][tables 60 MiB][domain regions ...]`.
    ///
    /// # Errors
    ///
    /// Fails if `ram` is not NAPOT-encodable or smaller than 128 MiB, or if
    /// the initial HPMP/table programming cannot be expressed.
    pub fn boot<S: TraceSink>(
        machine: &mut Machine<S>,
        flavor: TeeFlavor,
        ram: PmpRegion,
    ) -> Result<SecureMonitor, MonitorError> {
        if !ram.is_napot() {
            return Err(MonitorError::BadBootRam("RAM must be NAPOT-encodable"));
        }
        if ram.size < 128 << 20 {
            return Err(MonitorError::BadBootRam("need at least 128 MiB of RAM"));
        }
        let monitor_region = PmpRegion::new(ram.base, 4 << 20);
        let tables_base = PhysAddr::new(ram.base.raw() + (4 << 20));
        let tables_size = 60u64 << 20;
        let region_base = PhysAddr::new(tables_base.raw() + tables_size);

        // Entry 0: the monitor's own memory — matched first, no S/U perms.
        machine
            .regs_mut()
            .configure_segment(0, monitor_region, Perms::NONE)?;

        let mut metrics = MetricsRegistry::new();
        let ids = MonitorWiring::wire(&mut metrics);
        let mut monitor = SecureMonitor {
            flavor,
            ram,
            monitor_region,
            // Offset by one page so no allocated region shares a base with
            // the host's whole-memory GMS.
            region_cursor: PhysAddr::new(region_base.raw() + PAGE_SIZE),
            region_end: ram.end(),
            table_frames: FrameAllocator::new(tables_base, tables_size),
            domains: Vec::new(),
            current: DomainId::HOST,
            next_id: 1,
            iopmp: IoPmp::new(),
            devices: Vec::new(),
            metrics,
            ids,
            shadow_regs: Vec::new(),
            pending_shootdown: None,
        };

        // The host domain starts owning all remaining memory as one slow GMS.
        let host_region = PmpRegion::new(region_base, ram.end().raw() - region_base.raw());
        let mut host = Domain {
            id: DomainId::HOST,
            gmss: Vec::new(),
            table: None,
        };
        if flavor != TeeFlavor::PenglaiPmp {
            let mut table =
                PmpTable::new(monitor.ram, machine.phys_mut(), &mut monitor.table_frames)
                    .map_err(|_| MonitorError::OutOfMemory)?;
            let writes = table.set_range_perm(
                machine.phys_mut(),
                &mut monitor.table_frames,
                host_region.base,
                host_region.size,
                Perms::RWX,
                FillPolicy::HugeWhenAligned,
            )?;
            monitor.metrics.bump(monitor.ids.table_writes, writes);
            host.table = Some(table);
        }
        host.gmss
            .push(Gms::new(host_region, Perms::RWX, GmsLabel::Slow));
        monitor.domains.push(host);

        monitor.program_current(machine)?;
        Ok(monitor)
    }

    /// The flavour this monitor implements.
    pub fn flavor(&self) -> TeeFlavor {
        self.flavor
    }

    /// The monitor's own protected memory (entry 0's segment).
    pub fn monitor_region(&self) -> PmpRegion {
        self.monitor_region
    }

    /// The currently running domain.
    pub fn current(&self) -> DomainId {
        self.current
    }

    /// Number of domains (including the host).
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Activity counters, reconstructed from the interned registry (the
    /// live accounting is a `Vec<u64>` behind [`CounterId`] handles).
    pub fn stats(&self) -> MonitorStats {
        MonitorStats {
            switches: self.metrics.get(self.ids.switches),
            csr_writes: self.metrics.get(self.ids.csr_writes),
            table_writes: self.metrics.get(self.ids.table_writes),
            cycles: self.metrics.get(self.ids.cycles),
        }
    }

    /// A point-in-time view of the monitor's activity counters under the
    /// `monitor.*` prefix, for merging into experiment-level metrics.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// GMSs owned by `domain`.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains.
    pub fn regions_of(&self, domain: DomainId) -> Result<&[Gms], MonitorError> {
        self.domain(domain).map(|d| d.gmss.as_slice())
    }

    /// Creates an enclave domain with one initial private region of
    /// `initial_size` bytes (rounded up to a NAPOT size). Returns the id and
    /// the modelled cycle cost.
    ///
    /// # Errors
    ///
    /// Fails when memory or (for the PMP flavour) segment entries run out.
    pub fn create_domain<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        initial_size: u64,
        label: GmsLabel,
    ) -> Result<(DomainId, u64), MonitorError> {
        let id = DomainId(self.next_id);
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;

        let mut domain = Domain {
            id,
            gmss: Vec::new(),
            table: None,
        };
        if self.flavor != TeeFlavor::PenglaiPmp {
            let table = PmpTable::new(self.ram, machine.phys_mut(), &mut self.table_frames)
                .map_err(|_| MonitorError::OutOfMemory)?;
            domain.table = Some(table);
        }
        self.domains.push(domain);
        self.next_id += 1;

        let (_, alloc_cycles) = self.alloc_region(machine, id, initial_size, label)?;
        cycles += alloc_cycles;

        // For the PMP flavour, verify the host can still be expressed: when
        // the host runs, every enclave region needs a higher-priority deny
        // entry (Keystone-style), plus the monitor entry and at least one
        // host allow entry.
        if self.flavor == TeeFlavor::PenglaiPmp
            && self.enclave_region_count() + 2 > machine.regs().len()
        {
            // Roll back.
            self.domains.pop();
            self.next_id -= 1;
            return Err(MonitorError::OutOfPmpEntries);
        }

        self.metrics.bump(self.ids.cycles, cycles);
        Ok((id, cycles))
    }

    /// Destroys an enclave domain, returning its memory to the host.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains or the host.
    pub fn destroy_domain<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        id: DomainId,
    ) -> Result<u64, MonitorError> {
        if id == DomainId::HOST {
            return Err(MonitorError::NoSuchDomain(id));
        }
        let idx = self
            .domains
            .iter()
            .position(|d| d.id == id)
            .ok_or(MonitorError::NoSuchDomain(id))?;
        let domain = self.domains.remove(idx);
        self.devices.retain(|(_, owner)| *owner != id);
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        cycles += self.sync_iopmp(machine);
        // Return regions to the host's table (scrub + grant).
        for gms in &domain.gmss {
            cycles += self.grant_in_host_table(machine, gms.region, Perms::RWX)?;
        }
        if self.current == id {
            cycles += self.switch_to(machine, DomainId::HOST)?;
        } else if self.image_depends_on(id) {
            // PMP flavour, host running: drop the destroyed enclave's deny
            // entries so the host regains the returned memory immediately.
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.pending_shootdown = Some(id);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Allocates a private region for `domain`. Returns the region and the
    /// modelled cycle cost.
    ///
    /// # Errors
    ///
    /// Fails when memory runs out, the domain is unknown, or (PMP flavour)
    /// the per-domain segment budget is exhausted.
    pub fn alloc_region<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        size: u64,
        label: GmsLabel,
    ) -> Result<(PmpRegion, u64), MonitorError> {
        let size = size.next_power_of_two().max(PAGE_SIZE);
        let base = self.region_cursor.align_up(size);
        if base.raw() + size > self.region_end.raw() {
            return Err(MonitorError::OutOfMemory);
        }
        self.region_cursor = PhysAddr::new(base.raw() + size);
        let region = PmpRegion::new(base, size);

        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        let flavor = self.flavor;

        // PMP flavour: each region consumes a segment entry when active.
        if flavor == TeeFlavor::PenglaiPmp {
            let d = self.domain(domain)?;
            // Entry 0 is the monitor; a region list longer than the file
            // cannot be programmed.
            if d.gmss.len() + 2 > machine.regs().len() {
                return Err(MonitorError::OutOfPmpEntries);
            }
            // The host's Keystone-style image must also keep fitting:
            // monitor entry + one deny per enclave region + the host's own
            // allow entries. Checked before any bookkeeping mutates so a
            // failed alloc leaves the monitor's state untouched.
            let host_allows =
                self.domain(DomainId::HOST)?.gmss.len() + usize::from(domain == DomainId::HOST);
            let enclave_denies =
                self.enclave_region_count() + usize::from(domain != DomainId::HOST);
            if 1 + enclave_denies + host_allows > machine.regs().len() {
                return Err(MonitorError::OutOfPmpEntries);
            }
        }

        // Revoke from the host's table, grant in the owner's table.
        if flavor != TeeFlavor::PenglaiPmp && domain != DomainId::HOST {
            cycles += self.grant_in_host_table(machine, region, Perms::NONE)?;
        }
        if flavor != TeeFlavor::PenglaiPmp {
            let table_writes_id = self.ids.table_writes;
            let metrics = &mut self.metrics;
            let table_frames = &mut self.table_frames;
            let d = self
                .domains
                .iter_mut()
                .find(|d| d.id == domain)
                .ok_or(MonitorError::NoSuchDomain(domain))?;
            let table = d
                .table
                .as_mut()
                .ok_or(MonitorError::IntegrityLost(domain))?;
            let writes = table.set_range_perm(
                machine.phys_mut(),
                table_frames,
                region.base,
                region.size,
                Perms::RWX,
                if flavor == TeeFlavor::PenglaiHpmp {
                    FillPolicy::HugeWhenAligned
                } else {
                    FillPolicy::PerPage
                },
            )?;
            metrics.bump(table_writes_id, writes);
            cycles += writes * cost::TABLE_ENTRY_WRITE;
        }

        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        d.gmss.push(Gms::new(region, Perms::RWX, label));
        if self.devices.iter().any(|(_, owner)| *owner == domain) {
            cycles += self.sync_iopmp(machine);
        }

        // If the running image depends on this domain's holdings (the
        // domain itself, or the PMP host's deny entries), reprogram and
        // fence.
        if self.image_depends_on(domain) {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.pending_shootdown = Some(domain);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok((region, cycles))
    }

    /// Releases a region owned by `domain`, returning the cycle cost.
    ///
    /// # Errors
    ///
    /// Fails if the region is not owned by the domain.
    pub fn free_region<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        base: PhysAddr,
    ) -> Result<u64, MonitorError> {
        let flavor = self.flavor;
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        let d_idx = self
            .domains
            .iter()
            .position(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        let g_idx = self.domains[d_idx]
            .gmss
            .iter()
            .position(|g| g.region.base == base)
            .ok_or(MonitorError::NotOwned)?;
        let gms = self.domains[d_idx].gmss.remove(g_idx);

        if flavor != TeeFlavor::PenglaiPmp {
            // Revoke in the owner's table…
            let table_writes_id = self.ids.table_writes;
            let metrics = &mut self.metrics;
            let table_frames = &mut self.table_frames;
            let table = self.domains[d_idx]
                .table
                .as_mut()
                .ok_or(MonitorError::IntegrityLost(domain))?;
            let writes = table.set_range_perm(
                machine.phys_mut(),
                table_frames,
                gms.region.base,
                gms.region.size,
                Perms::NONE,
                FillPolicy::PerPage,
            )?;
            metrics.bump(table_writes_id, writes);
            cycles += writes * cost::TABLE_ENTRY_WRITE;
            // …and return it to the host.
            if domain != DomainId::HOST {
                cycles += self.grant_in_host_table(machine, gms.region, Perms::RWX)?;
            }
        }
        if self.image_depends_on(domain) {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.pending_shootdown = Some(domain);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Relabels a GMS (the OS hint path); only HPMP acts on it, by
    /// reprogramming registers — no table updates, which is why it is cheap.
    ///
    /// # Errors
    ///
    /// Fails if the region is not owned by the domain.
    pub fn relabel<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        base: PhysAddr,
        label: GmsLabel,
    ) -> Result<u64, MonitorError> {
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        let gms = d
            .gmss
            .iter_mut()
            .find(|g| g.region.base == base)
            .ok_or(MonitorError::NotOwned)?;
        gms.label = label;
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        if self.current == domain {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.pending_shootdown = Some(domain);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Carves a monitor-owned buffer (not a domain GMS) from the region
    /// area. Returns `(region, cycles)`.
    ///
    /// # Errors
    ///
    /// Fails when memory runs out.
    pub(crate) fn alloc_monitor_buffer(
        &mut self,
        len: u64,
    ) -> Result<(PmpRegion, u64), MonitorError> {
        let size = len.next_power_of_two().max(PAGE_SIZE);
        let base = self.region_cursor.align_up(size);
        if base.raw() + size > self.region_end.raw() {
            return Err(MonitorError::OutOfMemory);
        }
        self.region_cursor = PhysAddr::new(base.raw() + size);
        Ok((PmpRegion::new(base, size), cost::BOOKKEEPING))
    }

    /// Grants `region` with `perms` in `domain`'s permission table without
    /// making it a GMS of the domain (shared-buffer support). No-op access
    /// change for the PMP flavour (segments are per-GMS); callers that need
    /// PMP-flavour sharing must use whole GMSs.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains.
    pub(crate) fn grant_in_domain_table<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        region: PmpRegion,
        perms: Perms,
    ) -> Result<u64, MonitorError> {
        let table_writes_id = self.ids.table_writes;
        let metrics = &mut self.metrics;
        let table_frames = &mut self.table_frames;
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        let Some(table) = d.table.as_mut() else {
            return Ok(0);
        };
        let writes = table.set_range_perm(
            machine.phys_mut(),
            table_frames,
            region.base,
            region.size,
            perms,
            FillPolicy::PerPage,
        )?;
        metrics.bump(table_writes_id, writes);
        Ok(writes * cost::TABLE_ENTRY_WRITE)
    }

    /// The IOPMP checker for DMA initiators (§9). Pass to
    /// [`hpmp_machine::Machine::dma_transfer`].
    pub fn iopmp(&self) -> &IoPmp {
        &self.iopmp
    }

    /// Assigns a DMA initiator to `domain`: the device may then DMA into
    /// (and only into) that domain's memory. Returns the cycle cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains.
    pub fn assign_device<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        device: DeviceId,
        domain: DomainId,
    ) -> Result<u64, MonitorError> {
        self.domain(domain)?;
        self.devices.retain(|(d, _)| *d != device);
        self.devices.push((device, domain));
        let cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING + self.sync_iopmp(machine);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Revokes a DMA initiator's assignment (back to no access).
    pub fn revoke_device<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        device: DeviceId,
    ) -> u64 {
        self.devices.retain(|(d, _)| *d != device);
        let cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING + self.sync_iopmp(machine);
        self.metrics.bump(self.ids.cycles, cycles);
        cycles
    }

    /// Rebuilds the IOPMP entry list from device ownership. DMA is
    /// asynchronous, so entries reflect *ownership*, not the scheduled
    /// domain; every mutation of a device-owning domain's memory re-syncs.
    fn sync_iopmp<S: TraceSink>(&mut self, machine: &mut Machine<S>) -> u64 {
        let _ = &machine;
        let mut iopmp = IoPmp::new();
        let mut writes = 0u64;
        for (device, domain) in &self.devices {
            let Some(d) = self.domains.iter().find(|d| d.id == *domain) else {
                continue;
            };
            match (&d.table, self.flavor) {
                (Some(table), TeeFlavor::PenglaiPmpt | TeeFlavor::PenglaiHpmp) => {
                    // One table-mode entry: the domain's permission table is
                    // the single source of truth for its pages.
                    iopmp.push(IoPmpEntry {
                        source_mask: 1 << (device.0 & 31),
                        region: self.ram,
                        mode: IoPmpMode::Table {
                            root: table.root(),
                            levels: TableLevels::Two,
                        },
                    });
                    writes += 1;
                }
                _ => {
                    // PMP flavour: the host's whole-memory GMS still covers
                    // enclave carve-outs, so (as on the CPU side) deny
                    // entries for every enclave region match first.
                    if *domain == DomainId::HOST {
                        for hole in self
                            .domains
                            .iter()
                            .filter(|other| other.id != DomainId::HOST)
                            .flat_map(|other| other.gmss.iter().map(|g| g.region))
                        {
                            iopmp.push(IoPmpEntry {
                                source_mask: 1 << (device.0 & 31),
                                region: hole,
                                mode: IoPmpMode::Segment(hpmp_memsim::Perms::NONE),
                            });
                            writes += 1;
                        }
                    }
                    for gms in &d.gmss {
                        iopmp.push(IoPmpEntry {
                            source_mask: 1 << (device.0 & 31),
                            region: gms.region,
                            mode: IoPmpMode::Segment(gms.perms),
                        });
                        writes += 1;
                    }
                }
            }
        }
        self.iopmp = iopmp;
        writes * cost::CSR_WRITE
    }

    /// Labels a sub-range of one of `domain`'s GMSs as its own GMS — the
    /// §9 "efficient isolation through new abstractions" path, fed by the
    /// OS's hint ioctls. The sub-GMS inherits the parent's permission; a
    /// `Fast` label asks for segment backing on the next programming.
    ///
    /// Only meaningful for Penglai-HPMP (the other flavours have no
    /// fast/slow distinction for data).
    ///
    /// # Errors
    ///
    /// Fails if the flavour is not HPMP, the region is not contained in a
    /// GMS the domain owns, or it is already labelled.
    pub fn label_subregion<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        region: PmpRegion,
        label: GmsLabel,
    ) -> Result<u64, MonitorError> {
        if self.flavor != TeeFlavor::PenglaiHpmp {
            return Err(MonitorError::NotOwned);
        }
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        let parent = d
            .gmss
            .iter()
            .find(|g| {
                g.region.base <= region.base && g.region.end() >= region.end() && g.region != region
            })
            .copied()
            .ok_or(MonitorError::NotOwned)?;
        if d.gmss.iter().any(|g| g.region == region) {
            return Err(MonitorError::NotOwned);
        }
        d.gmss.push(Gms::new(region, parent.perms, label));
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        if self.image_depends_on(domain) {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Removes a sub-GMS added by [`SecureMonitor::label_subregion`].
    ///
    /// # Errors
    ///
    /// Fails if the exact region is not a labelled sub-GMS of the domain.
    pub fn unlabel_subregion<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
        region: PmpRegion,
    ) -> Result<u64, MonitorError> {
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        let idx = d
            .gmss
            .iter()
            .position(|g| g.region == region)
            .ok_or(MonitorError::NotOwned)?;
        d.gmss.remove(idx);
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        if self.image_depends_on(domain) {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// Switches execution to `target`, reprogramming the HPMP entries.
    /// Returns the modelled cycle cost — the Figure 14-a quantity.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains, or for the PMP flavour when the target's
    /// allow-list does not fit the register file.
    pub fn switch_to<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        target: DomainId,
    ) -> Result<u64, MonitorError> {
        self.domain(target)?;
        self.current = target;
        // Tag subsequent trace events with the world we switched into.
        machine.set_world(if target == DomainId::HOST {
            World::Host
        } else {
            World::Enclave
        });
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        cycles += self.program_current(machine)?;
        machine.invalidate_isolation();
        cycles += cost::FENCE;
        self.metrics.bump(self.ids.switches, 1);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// One integrity-scrub pass, the monitor's periodic corruption sweep:
    /// compares the live register file against the monitor's shadow copy
    /// (force-restoring any divergence, lock bit included) and samples the
    /// first and last page of every GMS in every domain's permission table
    /// for malformed pmptes. Sampling bounds the pass's cost; pmptes it
    /// does not visit are still caught at access time by the parity check.
    /// Never panics: corruption is repaired where possible and reported
    /// for quarantine otherwise.
    pub fn scrub<S: TraceSink>(&mut self, machine: &mut Machine<S>) -> ScrubReport {
        let mut report = ScrubReport::default();
        for (idx, &(addr, cfg)) in self.shadow_regs.iter().enumerate() {
            let live_addr = machine.regs().addr_reg(idx);
            let live_cfg = machine.regs().cfg_reg(idx);
            if live_addr != addr || live_cfg.to_bits() != cfg.to_bits() {
                machine.regs_mut().force_restore(idx, addr, cfg);
                report.repaired_registers += 1;
            }
        }
        if report.repaired_registers > 0 {
            // Stale TLB entries may inline permissions derived from the
            // corrupted registers.
            machine.invalidate_isolation();
        }
        for d in &self.domains {
            let Some(table) = d.table.as_ref() else {
                continue;
            };
            let corrupt = d.gmss.iter().any(|gms| {
                let last_page = PhysAddr::new(gms.region.end().raw() - PAGE_SIZE);
                table.walk(machine.phys(), gms.region.base).malformed
                    || table.walk(machine.phys(), last_page).malformed
            });
            if corrupt {
                report.corrupt_domains.push(d.id);
            }
        }
        let cycles = cost::BOOKKEEPING + report.repaired_registers * 2 * cost::CSR_WRITE;
        self.metrics.bump(self.ids.cycles, cycles);
        report
    }

    /// Quarantine recovery: discards `domain`'s (possibly corrupt)
    /// permission table and rebuilds it from the monitor's authoritative
    /// GMS bookkeeping. Grants made outside the GMS list (shared IPC
    /// buffers) are conservatively dropped — fail-closed — and must be
    /// re-granted by their owners. Returns the modelled cycle cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown domains, for the PMP flavour (which has no
    /// tables to rebuild), or when table memory is exhausted.
    pub fn rebuild_domain_table<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        domain: DomainId,
    ) -> Result<u64, MonitorError> {
        if self.flavor == TeeFlavor::PenglaiPmp {
            return Err(MonitorError::IntegrityLost(domain));
        }
        let mut cycles = cost::TRAP_ROUND_TRIP + cost::BOOKKEEPING;
        let mut table = PmpTable::new(self.ram, machine.phys_mut(), &mut self.table_frames)
            .map_err(|_| MonitorError::OutOfMemory)?;
        let fill = if self.flavor == TeeFlavor::PenglaiHpmp {
            FillPolicy::HugeWhenAligned
        } else {
            FillPolicy::PerPage
        };
        let grants: Vec<(PmpRegion, Perms)> = self
            .domain(domain)?
            .gmss
            .iter()
            .map(|g| (g.region, g.perms))
            .collect();
        let mut writes = 0u64;
        for (region, perms) in grants {
            writes += table.set_range_perm(
                machine.phys_mut(),
                &mut self.table_frames,
                region.base,
                region.size,
                perms,
                fill,
            )?;
        }
        if domain == DomainId::HOST {
            let holes: Vec<PmpRegion> = self
                .domains
                .iter()
                .filter(|d| d.id != DomainId::HOST)
                .flat_map(|d| d.gmss.iter().map(|g| g.region))
                .collect();
            for hole in holes {
                writes += table.set_range_perm(
                    machine.phys_mut(),
                    &mut self.table_frames,
                    hole.base,
                    hole.size,
                    Perms::NONE,
                    FillPolicy::PerPage,
                )?;
            }
        }
        let d = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .ok_or(MonitorError::NoSuchDomain(domain))?;
        d.table = Some(table);
        self.metrics.bump(self.ids.table_writes, writes);
        cycles += writes * cost::TABLE_ENTRY_WRITE;
        // IOPMP entries may reference the replaced table root.
        cycles += self.sync_iopmp(machine);
        if self.current == domain {
            cycles += self.program_current(machine)?;
            machine.invalidate_isolation();
            cycles += cost::FENCE;
        }
        self.pending_shootdown = Some(domain);
        self.metrics.bump(self.ids.cycles, cycles);
        Ok(cycles)
    }

    /// The reference permission oracle: re-derives the access decision for
    /// the *current* domain's S/U-mode accesses from the monitor's own
    /// bookkeeping — no registers, no DRAM-resident tables, no caches. The
    /// fast path may deny an access the oracle would allow (graceful
    /// degradation under faults), but any access the fast path grants and
    /// the oracle denies is an isolation violation; fault campaigns fail
    /// on that invariant.
    pub fn oracle_check(&self, addr: PhysAddr, kind: AccessKind) -> bool {
        self.oracle_check_for(self.current, addr, kind)
    }

    /// [`SecureMonitor::oracle_check`], for an arbitrary domain.
    pub fn oracle_check_for(&self, domain: DomainId, addr: PhysAddr, kind: AccessKind) -> bool {
        let Ok(d) = self.domain(domain) else {
            return false;
        };
        if self.monitor_region.contains(addr) {
            return false;
        }
        // The PMP flavour programs the smallest NAPOT superset of each
        // region, so its *intended* policy is the widened one.
        let widen = self.flavor == TeeFlavor::PenglaiPmp;
        let covered = |region: PmpRegion| {
            let region = if widen {
                napot_superset(region)
            } else {
                region
            };
            region.contains(addr)
        };
        if !d
            .gmss
            .iter()
            .any(|g| covered(g.region) && g.perms.allows(kind))
        {
            return false;
        }
        // Enclave carve-outs override the host's whole-memory GMS: they
        // are deny entries (PMP flavour) or host-table revocations.
        if domain == DomainId::HOST {
            let carved = self
                .domains
                .iter()
                .filter(|other| other.id != DomainId::HOST)
                .any(|other| other.gmss.iter().any(|g| covered(g.region)));
            if carved {
                return false;
            }
        }
        true
    }

    /// True if changing `domain`'s region holdings invalidates the image
    /// programmed for the *currently running* domain: either `domain`
    /// itself is running, or the PMP flavour's host is — the Keystone-style
    /// host image carries one deny entry per enclave region, so any
    /// enclave's holdings are part of it. (The table flavours revoke
    /// through the host's permission table instead, which the fast path
    /// re-walks, so they never need this.) Caught by the oracle-lockstep
    /// fuzzer: without the host-image reprogram, the window between an
    /// enclave alloc and the next domain switch left the running host with
    /// a stale image granting it the enclave's new region.
    fn image_depends_on(&self, domain: DomainId) -> bool {
        self.image_depends(self.current, domain)
    }

    /// The hart-generic form of [`SecureMonitor::image_depends_on`]: does a
    /// hart whose scheduled domain is `scheduled` carry `changed`'s
    /// holdings in its register image? True when the changed domain itself
    /// is scheduled there, or when the PMP flavour's host is — its
    /// Keystone-style image holds one deny entry per enclave region, so
    /// *any* enclave's holdings are part of every host image.
    pub(crate) fn image_depends(&self, scheduled: DomainId, changed: DomainId) -> bool {
        scheduled == changed
            || (self.flavor == TeeFlavor::PenglaiPmp
                && scheduled == DomainId::HOST
                && changed != DomainId::HOST)
    }

    /// Takes the pending cross-hart shootdown obligation, if any. See the
    /// field docs; the SMP layer calls this after every monitor op.
    pub fn take_shootdown(&mut self) -> Option<DomainId> {
        self.pending_shootdown.take()
    }

    /// Re-points `current` without reprogramming anything. The SMP layer
    /// uses this to bank the monitor's notion of "the running domain" to
    /// whichever hart an op (or a remote reprogram) is being performed on;
    /// every register write still goes through
    /// [`SecureMonitor::program_current`].
    pub(crate) fn set_current_unchecked(&mut self, id: DomainId) {
        self.current = id;
    }

    /// Reprograms the register file for the current domain. Returns cycles.
    pub(crate) fn program_current<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
    ) -> Result<u64, MonitorError> {
        let before = machine.regs().csr_writes();
        let current = self.current;
        let flavor = self.flavor;

        // Disable everything except entry 0 (the monitor's own segment).
        for idx in 1..machine.regs().len() {
            if !machine.regs().cfg_reg(idx).locked() {
                machine.regs_mut().disable(idx).ok();
            }
        }

        match flavor {
            TeeFlavor::PenglaiPmp => {
                let mut next = 1;
                if current == DomainId::HOST {
                    // Keystone-style: deny entries for every enclave region
                    // (they match first), then allow entries for the host.
                    let enclaves: Vec<PmpRegion> = self
                        .domains
                        .iter()
                        .filter(|d| d.id != DomainId::HOST)
                        .flat_map(|d| d.gmss.iter().map(|g| g.region))
                        .collect();
                    let host: Vec<PmpRegion> = self
                        .domain(DomainId::HOST)?
                        .gmss
                        .iter()
                        .map(|g| g.region)
                        .collect();
                    if 1 + enclaves.len() + host.len() > machine.regs().len() {
                        return Err(MonitorError::OutOfPmpEntries);
                    }
                    for region in enclaves {
                        machine.regs_mut().configure_segment(
                            next,
                            napot_superset(region),
                            Perms::NONE,
                        )?;
                        next += 1;
                    }
                    for region in host {
                        machine.regs_mut().configure_segment(
                            next,
                            napot_superset(region),
                            Perms::RWX,
                        )?;
                        next += 1;
                    }
                } else {
                    let regions: Vec<PmpRegion> = self
                        .domain(current)?
                        .gmss
                        .iter()
                        .map(|g| g.region)
                        .collect();
                    if 1 + regions.len() > machine.regs().len() {
                        return Err(MonitorError::OutOfPmpEntries);
                    }
                    for region in regions {
                        machine.regs_mut().configure_segment(
                            next,
                            napot_superset(region),
                            Perms::RWX,
                        )?;
                        next += 1;
                    }
                }
            }
            TeeFlavor::PenglaiPmpt | TeeFlavor::PenglaiHpmp => {
                let d = self
                    .domains
                    .iter()
                    .find(|d| d.id == current)
                    .ok_or(MonitorError::NoSuchDomain(current))?;
                let root = d
                    .table
                    .as_ref()
                    .ok_or(MonitorError::IntegrityLost(current))?
                    .root();
                let mut next = 1;
                if flavor == TeeFlavor::PenglaiHpmp {
                    // Fast GMSs become segments, lowest entries first.
                    for gms in d.gmss.iter().filter(|g| g.label == GmsLabel::Fast) {
                        if next + 2 >= machine.regs().len() || !gms.segment_compatible() {
                            continue; // cache-like: fall back to the table
                        }
                        machine
                            .regs_mut()
                            .configure_segment(next, gms.region, gms.perms)?;
                        next += 1;
                    }
                }
                machine
                    .regs_mut()
                    .configure_table(next, self.ram, root, TableLevels::Two)?;
            }
        }

        let writes = machine.regs().csr_writes() - before;
        self.metrics.bump(self.ids.csr_writes, writes);
        // Refresh the shadow copy scrub compares against.
        let regs = machine.regs();
        self.shadow_regs = (0..regs.len())
            .map(|idx| (regs.addr_reg(idx), regs.cfg_reg(idx)))
            .collect();
        Ok(writes * cost::CSR_WRITE)
    }

    /// Grants or revokes a region in the host's table.
    fn grant_in_host_table<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        region: PmpRegion,
        perms: Perms,
    ) -> Result<u64, MonitorError> {
        let table_writes_id = self.ids.table_writes;
        let metrics = &mut self.metrics;
        let table_frames = &mut self.table_frames;
        let host = self
            .domains
            .iter_mut()
            .find(|d| d.id == DomainId::HOST)
            .ok_or(MonitorError::NoSuchDomain(DomainId::HOST))?;
        // The PMP flavour has no host table: region return is a pure
        // bookkeeping operation there (segments reprogram on switch).
        let Some(table) = host.table.as_mut() else {
            return Ok(0);
        };
        let writes = table.set_range_perm(
            machine.phys_mut(),
            table_frames,
            region.base,
            region.size,
            perms,
            FillPolicy::PerPage,
        )?;
        metrics.bump(table_writes_id, writes);
        Ok(writes * cost::TABLE_ENTRY_WRITE)
    }

    /// Total enclave regions — each needs a deny entry while the host runs
    /// (PMP flavour).
    fn enclave_region_count(&self) -> usize {
        self.domains
            .iter()
            .filter(|d| d.id != DomainId::HOST)
            .map(|d| d.gmss.len())
            .sum()
    }

    fn domain(&self, id: DomainId) -> Result<&Domain, MonitorError> {
        self.domains
            .iter()
            .find(|d| d.id == id)
            .ok_or(MonitorError::NoSuchDomain(id))
    }
}

/// Smallest NAPOT region containing `region`.
fn napot_superset(region: PmpRegion) -> PmpRegion {
    let mut size = region.size.next_power_of_two().max(8);
    loop {
        let base = PhysAddr::new(region.base.raw() & !(size - 1));
        if base.raw() + size >= region.end().raw() {
            return PmpRegion::new(base, size);
        }
        size *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_machine::MachineConfig;

    const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

    fn boot(flavor: TeeFlavor) -> (Machine, SecureMonitor) {
        let mut machine = Machine::new(MachineConfig::rocket());
        let monitor = SecureMonitor::boot(&mut machine, flavor, RAM).expect("monitor boots");
        (machine, monitor)
    }

    #[test]
    fn boot_programs_monitor_segment() {
        let (machine, monitor) = boot(TeeFlavor::PenglaiHpmp);
        assert_eq!(monitor.domain_count(), 1);
        assert_eq!(monitor.current(), DomainId::HOST);
        // Entry 0 covers the monitor region with no S/U permissions.
        let region = machine.regs().entry_region(0).unwrap();
        assert_eq!(region.base, RAM.base);
    }

    #[test]
    fn create_and_switch_domains() {
        for flavor in [
            TeeFlavor::PenglaiPmp,
            TeeFlavor::PenglaiPmpt,
            TeeFlavor::PenglaiHpmp,
        ] {
            let (mut machine, mut monitor) = boot(flavor);
            let (id, _) = monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
            let cycles = monitor.switch_to(&mut machine, id).unwrap();
            assert!(cycles > 0);
            assert_eq!(monitor.current(), id);
            monitor.switch_to(&mut machine, DomainId::HOST).unwrap();
            assert_eq!(monitor.current(), DomainId::HOST);
        }
    }

    #[test]
    fn switch_cost_stable_in_domain_count() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (first, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let cost_2 = monitor.switch_to(&mut machine, first).unwrap();
        for _ in 0..99 {
            monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
        }
        assert_eq!(monitor.domain_count(), 101);
        let cost_101 = monitor.switch_to(&mut machine, first).unwrap();
        let ratio = cost_101 as f64 / cost_2 as f64;
        assert!(
            (0.99..=1.01).contains(&ratio),
            "switch cost must be stable: {ratio}"
        );
    }

    #[test]
    fn pmp_flavor_hits_entry_wall() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiPmp);
        let mut created = 0;
        loop {
            match monitor.create_domain(&mut machine, 1 << 20, GmsLabel::Slow) {
                Ok(_) => created += 1,
                Err(MonitorError::OutOfPmpEntries) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(created < 100, "PMP flavour must hit the entry wall");
        }
        assert!(created <= 15, "wall at <16 domains, got {created}");
    }

    #[test]
    fn hpmp_supports_over_100_domains() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        for _ in 0..100 {
            monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
        }
        assert_eq!(monitor.domain_count(), 101);
    }

    #[test]
    fn pmp_flavor_region_limit_per_domain() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiPmp);
        let mut allocated = 0;
        loop {
            match monitor.alloc_region(&mut machine, DomainId::HOST, 64 * 1024, GmsLabel::Slow) {
                Ok(_) => allocated += 1,
                Err(MonitorError::OutOfPmpEntries) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(allocated < 64);
        }
        assert!(
            allocated <= 14,
            "PMP flavour regions bounded by entries: {allocated}"
        );
    }

    #[test]
    fn hpmp_supports_over_100_regions() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        for _ in 0..110 {
            monitor
                .alloc_region(&mut machine, DomainId::HOST, 64 * 1024, GmsLabel::Slow)
                .unwrap();
        }
        assert!(monitor.regions_of(DomainId::HOST).unwrap().len() > 100);
    }

    #[test]
    fn free_region_round_trip() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (region, _) = monitor
            .alloc_region(&mut machine, DomainId::HOST, 64 * 1024, GmsLabel::Slow)
            .unwrap();
        let before = monitor.regions_of(DomainId::HOST).unwrap().len();
        monitor
            .free_region(&mut machine, DomainId::HOST, region.base)
            .unwrap();
        assert_eq!(
            monitor.regions_of(DomainId::HOST).unwrap().len(),
            before - 1
        );
        assert_eq!(
            monitor.free_region(&mut machine, DomainId::HOST, region.base),
            Err(MonitorError::NotOwned)
        );
    }

    #[test]
    fn huge_fill_makes_large_alloc_cheap_for_hpmp() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (_, cost_32m) = monitor
            .alloc_region(&mut machine, DomainId::HOST, 32 << 20, GmsLabel::Slow)
            .unwrap();
        let (mut machine2, mut monitor2) = boot(TeeFlavor::PenglaiPmpt);
        let (_, cost_32m_pmpt) = monitor2
            .alloc_region(&mut machine2, DomainId::HOST, 32 << 20, GmsLabel::Slow)
            .unwrap();
        assert!(
            cost_32m < cost_32m_pmpt / 10,
            "huge fill should be much cheaper: {cost_32m} vs {cost_32m_pmpt}"
        );
    }

    #[test]
    fn destroy_returns_memory_to_host() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (id, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        monitor.switch_to(&mut machine, id).unwrap();
        monitor.destroy_domain(&mut machine, id).unwrap();
        assert_eq!(monitor.current(), DomainId::HOST);
        assert_eq!(monitor.domain_count(), 1);
        assert!(matches!(
            monitor.switch_to(&mut machine, id),
            Err(MonitorError::NoSuchDomain(_))
        ));
    }

    #[test]
    fn relabel_is_registers_only() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let (region, _) = monitor
            .alloc_region(&mut machine, DomainId::HOST, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let writes_before = monitor.stats().table_writes;
        monitor
            .relabel(&mut machine, DomainId::HOST, region.base, GmsLabel::Fast)
            .unwrap();
        assert_eq!(
            monitor.stats().table_writes,
            writes_before,
            "no table writes on relabel"
        );
        // And the fast GMS now occupies a segment entry.
        let seg = machine.regs().entry_region(1);
        assert_eq!(seg.map(|r| r.base), Some(region.base));
    }

    #[test]
    fn scrub_repairs_corrupted_registers() {
        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        // Flip bits in entry 1's config (the table entry) and entry 0's
        // address — including a spurious lock bit.
        machine.regs_mut().corrupt_cfg(1, 0b1000_0001);
        machine.regs_mut().corrupt_addr(0, 1 << 20);
        let report = monitor.scrub(&mut machine);
        assert_eq!(report.repaired_registers, 2);
        assert!(report.corrupt_domains.is_empty());
        let clean = monitor.scrub(&mut machine);
        assert!(clean.clean(), "second pass finds nothing: {clean:?}");
        // The monitor segment is intact again.
        let region = machine.regs().entry_region(0).unwrap();
        assert_eq!(region.base, RAM.base);
    }

    #[test]
    fn rebuild_recovers_corrupt_table() {
        use hpmp_core::PmptwCache;
        use hpmp_memsim::{AccessKind, PrivMode};

        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiHpmp);
        let probe = monitor.regions_of(DomainId::HOST).unwrap()[0].region.base;
        // Find the pmpte the check reads for the probe address and flip a
        // bit in it.
        let pmpte_addr = {
            let check = machine.regs().check(
                machine.phys(),
                &mut PmptwCache::disabled(),
                probe,
                AccessKind::Read,
                PrivMode::Supervisor,
            );
            assert!(check.allowed, "healthy table grants the host base");
            check.refs.last().expect("table walk has refs").addr
        };
        let raw = machine.phys().read_u64(pmpte_addr);
        machine.phys_mut().write_u64(pmpte_addr, raw ^ (1 << 1));
        let report = monitor.scrub(&mut machine);
        assert_eq!(report.corrupt_domains, vec![DomainId::HOST]);
        monitor
            .rebuild_domain_table(&mut machine, DomainId::HOST)
            .expect("rebuild");
        assert!(monitor.scrub(&mut machine).clean());
        let check = machine.regs().check(
            machine.phys(),
            &mut PmptwCache::disabled(),
            probe,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(check.allowed, "rebuilt table serves the host again");
    }

    #[test]
    fn oracle_never_grants_less_than_it_should() {
        use hpmp_core::PmptwCache;
        use hpmp_memsim::{AccessKind, PrivMode};

        for flavor in [
            TeeFlavor::PenglaiPmp,
            TeeFlavor::PenglaiPmpt,
            TeeFlavor::PenglaiHpmp,
        ] {
            let (mut machine, mut monitor) = boot(flavor);
            let (id, _) = monitor
                .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                .unwrap();
            let enclave_base = monitor.regions_of(id).unwrap()[0].region.base;
            let host_base = monitor.regions_of(DomainId::HOST).unwrap()[0].region.base;
            for current in [DomainId::HOST, id] {
                monitor.switch_to(&mut machine, current).unwrap();
                for probe in [
                    RAM.base,
                    host_base,
                    enclave_base,
                    PhysAddr::new(RAM.end().raw() - PAGE_SIZE),
                ] {
                    let fast = machine
                        .regs()
                        .check(
                            machine.phys(),
                            &mut PmptwCache::disabled(),
                            probe,
                            AccessKind::Read,
                            PrivMode::Supervisor,
                        )
                        .allowed;
                    let oracle = monitor.oracle_check(probe, AccessKind::Read);
                    assert!(
                        !fast || oracle,
                        "{flavor}: fast path grants {probe} in {current} but oracle denies"
                    );
                }
            }
            // The oracle always denies the monitor's own memory.
            assert!(!monitor.oracle_check(RAM.base, AccessKind::Read));
            assert!(!monitor.oracle_check_for(id, host_base, AccessKind::Write));
        }
    }

    /// Regression (found by the oracle-lockstep fuzzer): in the PMP
    /// flavour, creating an enclave while the host runs must immediately
    /// install the Keystone-style deny entry in the *running* host image —
    /// not wait for the next switch — and destroying the enclave must drop
    /// it again.
    #[test]
    fn pmp_host_image_tracks_enclave_lifecycle() {
        use hpmp_core::PmptwCache;
        use hpmp_memsim::{AccessKind, PrivMode};

        let (mut machine, mut monitor) = boot(TeeFlavor::PenglaiPmp);
        let (id, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        let enclave_base = monitor.regions_of(id).unwrap()[0].region.base;
        let host_probe = |machine: &Machine| {
            machine
                .regs()
                .check(
                    machine.phys(),
                    &mut PmptwCache::disabled(),
                    enclave_base,
                    AccessKind::Read,
                    PrivMode::Supervisor,
                )
                .allowed
        };
        assert_eq!(monitor.current(), DomainId::HOST);
        assert!(
            !host_probe(&machine),
            "running host must lose the enclave region at create time"
        );
        // A further region allocated to the enclave is denied too.
        let (extra, _) = monitor
            .alloc_region(&mut machine, id, 1 << 16, GmsLabel::Slow)
            .unwrap();
        let extra_check = machine.regs().check(
            machine.phys(),
            &mut PmptwCache::disabled(),
            extra.base,
            AccessKind::Read,
            PrivMode::Supervisor,
        );
        assert!(!extra_check.allowed, "running host sees new enclave allocs");
        monitor.destroy_domain(&mut machine, id).unwrap();
        assert!(
            host_probe(&machine),
            "destroy must return the region to the running host"
        );
    }

    #[test]
    fn napot_superset_covers() {
        let r = PmpRegion::new(PhysAddr::new(0x8010_0000), 0x18_0000);
        let sup = napot_superset(r);
        assert!(sup.is_napot());
        assert!(sup.base <= r.base && sup.end() >= r.end());
    }
}
