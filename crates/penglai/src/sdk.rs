//! The enclave SDK call path (Figure 7's "Enclave SDK" / "Enclave Driver").
//!
//! Host applications enter an enclave with an **ecall** and enclaves call
//! back out with an **ocall**; both transition through the secure monitor
//! (trap, HPMP reprogramming, fence) and carry arguments through a shared
//! buffer. The cycle costs are the monitor's real switch cost plus the
//! argument copy, so the Figure 14-a result — switch cost independent of
//! enclave count — carries straight into application-visible call latency.

use hpmp_machine::Machine;
use hpmp_memsim::PAGE_SIZE;

use crate::ipc::{IpcError, IpcTable};
use crate::monitor::{DomainId, MonitorError, SecureMonitor};

/// Errors from enclave calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallError {
    /// The callee domain does not exist (destroyed or never created).
    NoSuchEnclave(DomainId),
    /// Arguments exceed the shared-buffer page.
    ArgsTooLarge(u64),
    /// Monitor-side failure.
    Monitor(MonitorError),
    /// Shared-buffer failure.
    Ipc(IpcError),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::NoSuchEnclave(d) => write!(f, "no such enclave {d}"),
            CallError::ArgsTooLarge(n) => write!(f, "{n} argument bytes exceed one page"),
            CallError::Monitor(e) => write!(f, "monitor failure: {e}"),
            CallError::Ipc(e) => write!(f, "shared buffer failure: {e}"),
        }
    }
}

impl std::error::Error for CallError {}

impl From<MonitorError> for CallError {
    fn from(e: MonitorError) -> CallError {
        CallError::Monitor(e)
    }
}

impl From<IpcError> for CallError {
    fn from(e: IpcError) -> CallError {
        CallError::Ipc(e)
    }
}

/// A bound enclave call interface: host ↔ one enclave, with a dedicated
/// argument channel.
#[derive(Debug)]
pub struct EnclaveSdk {
    enclave: DomainId,
    channel: crate::ipc::ChannelId,
    ipc: IpcTable,
    /// Calls performed (for amortised-cost reporting).
    calls: u64,
}

impl EnclaveSdk {
    /// Binds the SDK to `enclave`, creating the argument channel.
    ///
    /// # Errors
    ///
    /// Fails if the enclave does not exist or memory runs out.
    pub fn bind(
        machine: &mut Machine,
        monitor: &mut SecureMonitor,
        enclave: DomainId,
    ) -> Result<EnclaveSdk, CallError> {
        monitor
            .regions_of(enclave)
            .map_err(|_| CallError::NoSuchEnclave(enclave))?;
        let mut ipc = IpcTable::new();
        let (channel, _) = ipc.create(machine, monitor, DomainId::HOST, enclave)?;
        Ok(EnclaveSdk {
            enclave,
            channel,
            ipc,
            calls: 0,
        })
    }

    /// The bound enclave.
    pub fn enclave(&self) -> DomainId {
        self.enclave
    }

    /// Calls performed through this binding.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Host → enclave call: marshal `arg_bytes`, switch in, run
    /// `enclave_compute` instructions inside, marshal `ret_bytes`, switch
    /// back. Returns the end-to-end cycle cost.
    ///
    /// # Errors
    ///
    /// Fails if arguments exceed a page or the monitor rejects the switch.
    pub fn ecall(
        &mut self,
        machine: &mut Machine,
        monitor: &mut SecureMonitor,
        arg_bytes: u64,
        enclave_compute: u64,
        ret_bytes: u64,
    ) -> Result<u64, CallError> {
        if arg_bytes > PAGE_SIZE || ret_bytes > PAGE_SIZE {
            return Err(CallError::ArgsTooLarge(arg_bytes.max(ret_bytes)));
        }
        let mut cycles = 0;
        // In: args through the shared page, then the world switch.
        cycles += self
            .ipc
            .send(machine, self.channel, DomainId::HOST, arg_bytes.max(1))?;
        cycles += monitor.switch_to(machine, self.enclave)?;
        cycles += self.ipc.recv(machine, self.channel, self.enclave)?.1;
        // Enclave body.
        cycles += machine.run_compute(enclave_compute);
        // Out: return values, switch back to the host.
        cycles += self
            .ipc
            .send(machine, self.channel, self.enclave, ret_bytes.max(1))?;
        cycles += monitor.switch_to(machine, DomainId::HOST)?;
        cycles += self.ipc.recv(machine, self.channel, DomainId::HOST)?.1;
        self.calls += 1;
        Ok(cycles)
    }

    /// Enclave → host call (ocall): same shape with the roles reversed;
    /// the caller is assumed to be running inside the enclave.
    ///
    /// # Errors
    ///
    /// As [`EnclaveSdk::ecall`].
    pub fn ocall(
        &mut self,
        machine: &mut Machine,
        monitor: &mut SecureMonitor,
        arg_bytes: u64,
        host_compute: u64,
    ) -> Result<u64, CallError> {
        if arg_bytes > PAGE_SIZE {
            return Err(CallError::ArgsTooLarge(arg_bytes));
        }
        let mut cycles = 0;
        cycles += self
            .ipc
            .send(machine, self.channel, self.enclave, arg_bytes.max(1))?;
        cycles += monitor.switch_to(machine, DomainId::HOST)?;
        cycles += self.ipc.recv(machine, self.channel, DomainId::HOST)?.1;
        cycles += machine.run_compute(host_compute);
        cycles += self.ipc.send(machine, self.channel, DomainId::HOST, 1)?;
        cycles += monitor.switch_to(machine, self.enclave)?;
        cycles += self.ipc.recv(machine, self.channel, self.enclave)?.1;
        self.calls += 1;
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gms::GmsLabel;
    use crate::monitor::TeeFlavor;
    use hpmp_core::PmpRegion;
    use hpmp_machine::MachineConfig;
    use hpmp_memsim::PhysAddr;

    const RAM: PmpRegion = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);

    fn boot(flavor: TeeFlavor) -> (Machine, SecureMonitor, DomainId) {
        let mut machine = Machine::new(MachineConfig::rocket());
        let mut monitor = SecureMonitor::boot(&mut machine, flavor, RAM).expect("monitor boots");
        let (enclave, _) = monitor
            .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
            .unwrap();
        (machine, monitor, enclave)
    }

    #[test]
    fn ecall_round_trip() {
        let (mut machine, mut monitor, enclave) = boot(TeeFlavor::PenglaiHpmp);
        let mut sdk = EnclaveSdk::bind(&mut machine, &mut monitor, enclave).unwrap();
        let cycles = sdk
            .ecall(&mut machine, &mut monitor, 128, 5_000, 64)
            .unwrap();
        assert!(cycles > 5_000, "must include compute plus transition costs");
        assert_eq!(
            monitor.current(),
            DomainId::HOST,
            "control returns to the host"
        );
        assert_eq!(sdk.calls(), 1);
    }

    #[test]
    fn ocall_round_trip() {
        let (mut machine, mut monitor, enclave) = boot(TeeFlavor::PenglaiHpmp);
        let mut sdk = EnclaveSdk::bind(&mut machine, &mut monitor, enclave).unwrap();
        monitor.switch_to(&mut machine, enclave).unwrap();
        let cycles = sdk.ocall(&mut machine, &mut monitor, 64, 2_000).unwrap();
        assert!(cycles > 2_000);
        assert_eq!(monitor.current(), enclave, "control returns to the enclave");
    }

    #[test]
    fn call_cost_stable_across_enclave_count() {
        // Figure 14-a at the SDK level: ecall latency with 2 vs 60 resident
        // enclaves is identical under Penglai-HPMP.
        let cost_with = |extra: usize| {
            let (mut machine, mut monitor, enclave) = boot(TeeFlavor::PenglaiHpmp);
            for _ in 0..extra {
                monitor
                    .create_domain(&mut machine, 1 << 20, GmsLabel::Slow)
                    .unwrap();
            }
            let mut sdk = EnclaveSdk::bind(&mut machine, &mut monitor, enclave).unwrap();
            sdk.ecall(&mut machine, &mut monitor, 64, 1_000, 64)
                .unwrap()
        };
        assert_eq!(cost_with(0), cost_with(58));
    }

    #[test]
    fn oversized_args_rejected() {
        let (mut machine, mut monitor, enclave) = boot(TeeFlavor::PenglaiPmpt);
        let mut sdk = EnclaveSdk::bind(&mut machine, &mut monitor, enclave).unwrap();
        assert!(matches!(
            sdk.ecall(&mut machine, &mut monitor, PAGE_SIZE + 1, 0, 0),
            Err(CallError::ArgsTooLarge(_))
        ));
    }

    #[test]
    fn bind_requires_live_enclave() {
        let (mut machine, mut monitor, _) = boot(TeeFlavor::PenglaiHpmp);
        assert!(matches!(
            EnclaveSdk::bind(&mut machine, &mut monitor, DomainId(77)),
            Err(CallError::NoSuchEnclave(_))
        ));
    }
}
