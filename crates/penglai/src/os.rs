//! A small simulated OS kernel running inside a domain.
//!
//! The paper's Penglai-HPMP requires ~700 lines of Linux changes whose sole
//! effect is behavioural: all page-table pages come from one contiguous pool
//! labelled as a "fast" GMS. [`SimOs`] reproduces exactly that behaviour —
//! processes, fork/exec, mmap, a kernel direct map, and a PT-page pool whose
//! placement (contiguous vs scattered) is the experimental knob.
//!
//! Crucially, kernel work is *priced through the machine*: PTE installs are
//! issued as kernel stores through the direct map, so a fork's page-table
//! construction hits the TLB/walker/HPMP path like any other memory traffic.
//! That is where the Table-vs-HPMP gap in LMBench's `fork+exit` comes from.

use hpmp_core::PmpRegion;
use hpmp_machine::{Fault, Machine};
use hpmp_memsim::{AccessKind, Perms, PhysAddr, PrivMode, VirtAddr, PAGE_SIZE};
use hpmp_paging::{AddressSpace, MapError, PtFrameSource, TranslationMode};
use hpmp_trace::TraceSink;

use crate::gms::GmsLabel;
use crate::monitor::{DomainId, SecureMonitor};

/// Where the OS places page-table pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PtPlacement {
    /// One contiguous pool (labelled "fast"; the Penglai-HPMP OS change).
    Contiguous,
    /// Scattered through the domain's memory with a large stride (a stock
    /// buddy allocator).
    Scattered,
}

/// Errors from OS operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OsError {
    /// Unknown process.
    NoSuchProcess(Pid),
    /// Out of physical frames.
    OutOfMemory,
    /// Page-table construction failed.
    Map(MapError),
    /// A memory access faulted.
    Access(Fault),
    /// A hint ioctl's VA range is unmapped or not physically contiguous.
    BadHintRange(VirtAddr),
    /// Unknown hint id.
    NoSuchHint(HintId),
    /// The monitor rejected a hint (wrong flavour, region not owned, …).
    Monitor(crate::monitor::MonitorError),
}

impl std::fmt::Display for OsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsError::NoSuchProcess(pid) => write!(f, "no such process {pid:?}"),
            OsError::OutOfMemory => f.write_str("out of memory"),
            OsError::Map(e) => write!(f, "mapping failed: {e}"),
            OsError::Access(e) => write!(f, "access faulted: {e}"),
            OsError::BadHintRange(va) => {
                write!(
                    f,
                    "hint range at {va} unmapped or not physically contiguous"
                )
            }
            OsError::NoSuchHint(id) => write!(f, "no such hint {id:?}"),
            OsError::Monitor(e) => write!(f, "monitor rejected hint: {e}"),
        }
    }
}

impl From<crate::monitor::MonitorError> for OsError {
    fn from(e: crate::monitor::MonitorError) -> OsError {
        OsError::Monitor(e)
    }
}

/// Identifier of a hot-region hint installed via the ioctl interface (§9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HintId(pub u32);

/// One installed hot-region hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionHint {
    /// The hint's id.
    pub id: HintId,
    /// Owning process.
    pub pid: Pid,
    /// Virtual base of the hinted range.
    pub va: VirtAddr,
    /// Pages covered.
    pub pages: u64,
    /// The physical region handed to the monitor (NAPOT superset of the
    /// backing frames).
    pub region: PmpRegion,
}

impl std::error::Error for OsError {}

impl From<MapError> for OsError {
    fn from(e: MapError) -> OsError {
        OsError::Map(e)
    }
}

impl From<Fault> for OsError {
    fn from(e: Fault) -> OsError {
        OsError::Access(e)
    }
}

/// Process identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// Base of the kernel direct map in kernel virtual space.
pub const KERNEL_DIRECT_MAP: u64 = 0x0040_0000_0000;
/// Base virtual address of user code in every process.
pub const USER_CODE_BASE: u64 = 0x1_0000;
/// Base virtual address of the user heap.
pub const USER_HEAP_BASE: u64 = 0x1000_0000;

#[derive(Debug)]
struct Process {
    pid: Pid,
    space: AddressSpace,
    heap_pages: u64,
    mapped: Vec<VirtAddr>,
    /// Virtual pages currently in copy-on-write state.
    cow: std::collections::HashSet<u64>,
    /// Lazily-mapped regions: (base, pages) reserved but not yet backed.
    lazy: Vec<(VirtAddr, u64)>,
}

/// A PT-frame source with the configured placement policy and a free-list
/// so exited processes' PT pages are reused (as a real kernel does).
#[derive(Debug)]
struct PtPool {
    source: PtSource,
    free: Vec<PhysAddr>,
}

#[derive(Debug)]
enum PtSource {
    Contiguous(hpmp_memsim::FrameAllocator),
    Scattered {
        base: PhysAddr,
        stride: u64,
        next: u64,
        limit: u64,
    },
}

impl PtPool {
    fn recycle(&mut self, frame: PhysAddr) {
        self.free.push(frame);
    }
}

impl PtFrameSource for PtPool {
    fn alloc_pt_frame(&mut self) -> Option<PhysAddr> {
        if let Some(frame) = self.free.pop() {
            return Some(frame);
        }
        match &mut self.source {
            PtSource::Contiguous(alloc) => alloc.alloc(),
            PtSource::Scattered {
                base,
                stride,
                next,
                limit,
            } => {
                if *next >= *limit {
                    return None;
                }
                let frame = PhysAddr::new(base.raw() + *next * *stride);
                *next += 1;
                Some(frame)
            }
        }
    }
}

/// Counters for OS activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OsStats {
    /// Processes created (spawn + fork).
    pub processes_created: u64,
    /// PTE installs priced through the machine.
    pub pte_installs: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Modelled kernel cycles (sum of returned costs).
    pub kernel_cycles: u64,
}

/// The simulated OS kernel.
///
/// All methods that do work return the cycle cost they incurred on the
/// machine (memory traffic plus modelled compute), which the workload
/// models aggregate into the paper's per-benchmark latencies.
#[derive(Debug)]
pub struct SimOs {
    kernel_space: AddressSpace,
    processes: Vec<Process>,
    current: Option<Pid>,
    next_pid: u32,
    next_asid: u16,
    pt_pool: PtPool,
    pt_pool_region: (PhysAddr, u64),
    data_frames: hpmp_memsim::FrameAllocator,
    free_data: Vec<PhysAddr>,
    kernel_area: (PhysAddr, u64),
    ram_base: PhysAddr,
    hints: Vec<RegionHint>,
    next_hint: u32,
    stats: OsStats,
}

impl SimOs {
    /// Boots the OS inside the region `[ram_base, ram_base + ram_size)`
    /// (already granted to the domain by the monitor). Builds the kernel
    /// direct map with 2 MiB huge pages.
    ///
    /// Layout: `[pt pool 16 MiB][kernel data][user frames ...]`.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than 64 MiB (fixture misuse).
    pub fn boot<S: TraceSink>(
        machine: &mut Machine<S>,
        ram_base: PhysAddr,
        ram_size: u64,
        placement: PtPlacement,
    ) -> SimOs {
        assert!(ram_size >= 64 << 20, "OS needs at least 64 MiB");
        let pt_pool_size = 16u64 << 20;
        let data_base = PhysAddr::new(ram_base.raw() + pt_pool_size);
        let data_size = ram_size - pt_pool_size;
        Self::boot_with_layout(
            machine,
            ram_base,
            ram_size,
            (ram_base, pt_pool_size),
            (data_base, data_size / 2),
            placement,
        )
    }

    /// Boots with an explicit layout: `direct map [ram_base, +ram_size)`,
    /// a PT pool region (a monitor-granted "fast" GMS under Penglai-HPMP)
    /// and a data region. With [`PtPlacement::Scattered`] the pool region is
    /// ignored and PT frames are strided through the upper half of the data
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if the regions fall outside the direct map.
    pub fn boot_with_layout<S: TraceSink>(
        machine: &mut Machine<S>,
        ram_base: PhysAddr,
        ram_size: u64,
        (pool_base, pool_size): (PhysAddr, u64),
        (data_base, data_size): (PhysAddr, u64),
        placement: PtPlacement,
    ) -> SimOs {
        let end = ram_base.raw() + ram_size;
        assert!(pool_base.raw() >= ram_base.raw() && pool_base.raw() + pool_size <= end);
        assert!(data_base.raw() >= ram_base.raw() && data_base.raw() + data_size <= end);

        // Data-region layout: [user frames | scattered-PT stride area |
        // kernel objects], quarters 0–2, 2–3, 3–4.
        let stride = 2u64 << 20;
        let source = match placement {
            PtPlacement::Contiguous => {
                PtSource::Contiguous(hpmp_memsim::FrameAllocator::new(pool_base, pool_size))
            }
            PtPlacement::Scattered => PtSource::Scattered {
                base: PhysAddr::new(data_base.raw() + data_size / 2),
                stride,
                next: 0,
                limit: (data_size / 4) / stride,
            },
        };
        let mut pt_pool = PtPool {
            source,
            free: Vec::new(),
        };

        // Kernel space (ASID 0): direct-map RAM with 2 MiB huge pages.
        let mut kernel_space =
            AddressSpace::new(TranslationMode::Sv39, 0, machine.phys_mut(), &mut pt_pool)
                .expect("kernel root");
        let huge = 2u64 << 20;
        let mut off = 0;
        while off < ram_size {
            kernel_space
                .map_huge_page(
                    machine.phys_mut(),
                    &mut pt_pool,
                    VirtAddr::new(KERNEL_DIRECT_MAP + off),
                    PhysAddr::new(ram_base.raw() + off),
                    Perms::RW,
                    false,
                    1,
                )
                .expect("direct map");
            off += huge;
        }

        SimOs {
            kernel_space,
            processes: Vec::new(),
            current: None,
            next_pid: 1,
            next_asid: 1,
            pt_pool,
            pt_pool_region: (pool_base, pool_size),
            data_frames: hpmp_memsim::FrameAllocator::new(data_base, data_size / 2),
            free_data: Vec::new(),
            kernel_area: (
                PhysAddr::new(data_base.raw() + 3 * (data_size / 4)),
                data_size / 4,
            ),
            ram_base,
            hints: Vec::new(),
            next_hint: 1,
            stats: OsStats::default(),
        }
    }

    /// A region of kernel-owned objects (dentry/inode slabs and I/O
    /// buffers) inside the domain's data GMS, used by the syscall models.
    pub fn kernel_area(&self) -> (PhysAddr, u64) {
        self.kernel_area
    }

    /// The contiguous PT pool region — what the OS labels as a fast GMS.
    pub fn pt_pool_region(&self) -> (PhysAddr, u64) {
        self.pt_pool_region
    }

    /// The kernel's address space (for issuing raw kernel accesses).
    pub fn kernel_space(&self) -> &AddressSpace {
        &self.kernel_space
    }

    /// Kernel virtual address of a physical address via the direct map.
    pub fn kernel_va(&self, pa: PhysAddr) -> VirtAddr {
        VirtAddr::new(KERNEL_DIRECT_MAP + (pa.raw() - self.ram_base.raw()))
    }

    /// Activity counters.
    pub fn stats(&self) -> OsStats {
        self.stats
    }

    /// The currently scheduled process.
    pub fn current(&self) -> Option<Pid> {
        self.current
    }

    /// Live process count.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Creates a process with `code_pages` of RX code and one stack page —
    /// the exec half of `fork+exec`. Returns the pid and kernel cycle cost.
    ///
    /// # Errors
    ///
    /// Fails when frames run out or an internal access faults.
    pub fn spawn<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        code_pages: u64,
    ) -> Result<(Pid, u64), OsError> {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let asid = self.alloc_asid(machine);

        let mut cycles = machine.run_compute(1200); // task_struct, fd table, …
        let mut space = AddressSpace::new(
            TranslationMode::Sv39,
            asid,
            machine.phys_mut(),
            &mut self.pt_pool,
        )?;
        cycles += self.price_new_pt_pages(machine, &space, 0)?;

        let mut mapped = Vec::new();
        // Map code and stack.
        for i in 0..code_pages {
            let frame = self.alloc_data_frame().ok_or(OsError::OutOfMemory)?;
            let before = space.pt_pages().len();
            space.map_page(
                machine.phys_mut(),
                &mut self.pt_pool,
                VirtAddr::new(USER_CODE_BASE + i * PAGE_SIZE),
                frame,
                Perms::RX,
                true,
            )?;
            cycles += self.price_new_pt_pages(machine, &space, before)?;
            cycles += self.price_pte_install(machine, &space)?;
            mapped.push(VirtAddr::new(USER_CODE_BASE + i * PAGE_SIZE));
        }
        let stack_frame = self.alloc_data_frame().ok_or(OsError::OutOfMemory)?;
        let before = space.pt_pages().len();
        let stack_va = VirtAddr::new(0x7f_ffff_f000);
        space.map_page(
            machine.phys_mut(),
            &mut self.pt_pool,
            stack_va,
            stack_frame,
            Perms::RW,
            true,
        )?;
        cycles += self.price_new_pt_pages(machine, &space, before)?;
        cycles += self.price_pte_install(machine, &space)?;
        mapped.push(stack_va);

        self.processes.push(Process {
            pid,
            space,
            heap_pages: 0,
            mapped,
            cow: Default::default(),
            lazy: Vec::new(),
        });
        self.stats.processes_created += 1;
        self.stats.kernel_cycles += cycles;
        Ok((pid, cycles))
    }

    /// Forks `parent`: clones its address space (re-walking every mapping
    /// and installing PTEs in a fresh tree). Returns the child pid and cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown pids or exhausted frames.
    pub fn fork<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        parent: Pid,
    ) -> Result<(Pid, u64), OsError> {
        let parent_idx = self
            .processes
            .iter()
            .position(|p| p.pid == parent)
            .ok_or(OsError::NoSuchProcess(parent))?;
        let mappings: Vec<VirtAddr> = self.processes[parent_idx].mapped.clone();
        let translations: Vec<(VirtAddr, PhysAddr, Perms)> = mappings
            .iter()
            .filter_map(|va| {
                self.processes[parent_idx]
                    .space
                    .translate(machine.phys(), *va)
                    .map(|t| (*va, t.paddr.page_base(), t.perms))
            })
            .collect();

        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let asid = self.alloc_asid(machine);

        let mut cycles = machine.run_compute(2000); // dup task, mm_struct …
        let mut space = AddressSpace::new(
            TranslationMode::Sv39,
            asid,
            machine.phys_mut(),
            &mut self.pt_pool,
        )?;
        cycles += self.price_new_pt_pages(machine, &space, 0)?;
        for (va, frame, perms) in &translations {
            let before = space.pt_pages().len();
            // Copy-on-write: share the frame read-only; the COW set records
            // which pages may be upgraded back to RW on a write fault.
            let shared = if perms.can_write() {
                Perms::READ
            } else {
                *perms
            };
            space.map_page(
                machine.phys_mut(),
                &mut self.pt_pool,
                *va,
                *frame,
                shared,
                true,
            )?;
            cycles += self.price_new_pt_pages(machine, &space, before)?;
            cycles += self.price_pte_install(machine, &space)?;
        }
        let heap_pages = self.processes[parent_idx].heap_pages;
        // Both sides of the fork see formerly-writable pages as COW.
        let cow: std::collections::HashSet<u64> = translations
            .iter()
            .filter(|(_, _, perms)| perms.can_write())
            .map(|(va, _, _)| va.page_number())
            .collect();
        for (va, _, perms) in &translations {
            if perms.can_write() {
                self.processes[parent_idx]
                    .space
                    .protect_page(machine.phys_mut(), *va, Perms::READ);
                self.processes[parent_idx].cow.insert(va.page_number());
                machine.sfence_vma_asid(self.processes[parent_idx].space.asid());
            }
        }
        self.processes.push(Process {
            pid,
            space,
            heap_pages,
            mapped: mappings,
            cow,
            lazy: Vec::new(),
        });
        self.stats.processes_created += 1;
        self.stats.kernel_cycles += cycles;
        Ok((pid, cycles))
    }

    /// Exits a process: tears down its address space, recycling its PT and
    /// data frames. Returns the cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown pids.
    pub fn exit<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        pid: Pid,
    ) -> Result<u64, OsError> {
        let idx = self
            .processes
            .iter()
            .position(|p| p.pid == pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        let process = self.processes.remove(idx);
        // Walk the PT pages once (freeing them reads each page header).
        let mut cycles = machine.run_compute(800);
        for page in process.space.pt_pages() {
            let va = self.kernel_va(*page);
            let out = machine.access(
                &self.kernel_space,
                va,
                AccessKind::Read,
                PrivMode::Supervisor,
            )?;
            cycles += out.cycles;
            self.pt_pool.recycle(*page);
        }
        // Recycle data frames not shared with a live process (COW frames of
        // a live parent/child stay out of the free list).
        for va in &process.mapped {
            if let Some(t) = process.space.translate(machine.phys(), *va) {
                let frame = t.paddr.page_base();
                let shared = self.processes.iter().any(|p| {
                    p.mapped.contains(va)
                        && p.space
                            .translate(machine.phys(), *va)
                            .is_some_and(|pt| pt.paddr.page_base() == frame)
                });
                if !shared {
                    self.free_data.push(frame);
                }
            }
        }
        machine.sfence_vma_asid(process.space.asid());
        if self.current == Some(pid) {
            self.current = None;
        }
        self.stats.kernel_cycles += cycles;
        Ok(cycles)
    }

    /// Allocates one user data frame, preferring recycled frames.
    fn alloc_data_frame(&mut self) -> Option<PhysAddr> {
        self.free_data.pop().or_else(|| self.data_frames.alloc())
    }

    /// Hands out the next ASID; on 16-bit rollover the kernel must flush
    /// all non-global translations before reusing identifiers (the classic
    /// ASID-generation scheme, conservatively modelled as a full fence).
    fn alloc_asid<S: TraceSink>(&mut self, machine: &mut Machine<S>) -> u16 {
        let asid = self.next_asid;
        let (next, wrapped) = self.next_asid.overflowing_add(1);
        self.next_asid = next.max(1);
        if wrapped {
            machine.sfence_vma_all();
        }
        asid
    }

    /// Unmaps `pages` pages starting at `va` (`munmap`): PTEs are cleared,
    /// per-page TLB shootdowns issued, and exclusively-owned frames
    /// recycled. Returns the cycle cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown pids; unmapped pages within the range are skipped
    /// (as `munmap` does).
    pub fn munmap<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        pid: Pid,
        va: VirtAddr,
        pages: u64,
    ) -> Result<u64, OsError> {
        let idx = self
            .processes
            .iter()
            .position(|p| p.pid == pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        let mut cycles = machine.run_compute(300);
        for i in 0..pages {
            let page_va = VirtAddr::new(va.page_base().raw() + i * PAGE_SIZE);
            let Some(old) = self.processes[idx]
                .space
                .unmap_page(machine.phys_mut(), page_va)
            else {
                continue;
            };
            let asid = self.processes[idx].space.asid();
            machine.sfence_vma_page(asid, page_va);
            cycles += machine.run_compute(60); // shootdown + accounting
            let frame = old.paddr.page_base();
            let shared = self.processes.iter().enumerate().any(|(j, p)| {
                j != idx
                    && p.space
                        .translate(machine.phys(), page_va)
                        .is_some_and(|t| t.paddr.page_base() == frame)
            });
            if !shared {
                self.free_data.push(frame);
            }
            self.processes[idx].mapped.retain(|m| *m != page_va);
            self.processes[idx].cow.remove(&page_va.page_number());
        }
        self.stats.kernel_cycles += cycles;
        Ok(cycles)
    }

    /// Grows a process's heap by `pages` (the mmap/brk path). Returns cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown pids or exhausted frames.
    pub fn mmap<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        pid: Pid,
        pages: u64,
    ) -> Result<u64, OsError> {
        let idx = self
            .processes
            .iter()
            .position(|p| p.pid == pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        let mut cycles = machine.run_compute(300);
        for _ in 0..pages {
            let frame = self.alloc_data_frame().ok_or(OsError::OutOfMemory)?;
            let heap_pages = self.processes[idx].heap_pages;
            let va = VirtAddr::new(USER_HEAP_BASE + heap_pages * PAGE_SIZE);
            let before = self.processes[idx].space.pt_pages().len();
            self.processes[idx].space.map_page(
                machine.phys_mut(),
                &mut self.pt_pool,
                va,
                frame,
                Perms::RW,
                true,
            )?;
            let space_ref = &self.processes[idx].space;
            cycles += Self::price_new_pt_pages_inner(
                machine,
                &self.kernel_space,
                self.ram_base,
                space_ref,
                before,
                &mut self.stats,
            )?;
            cycles += Self::price_pte_install_inner(
                machine,
                &self.kernel_space,
                self.ram_base,
                space_ref,
                &mut self.stats,
            )?;
            self.processes[idx].heap_pages += 1;
            self.processes[idx].mapped.push(va);
        }
        self.stats.kernel_cycles += cycles;
        Ok(cycles)
    }

    /// Reserves `pages` of heap lazily: no frames are allocated and no PTEs
    /// installed until the first touch through
    /// [`SimOs::user_access_faulting`] — on-demand paging.
    ///
    /// # Errors
    ///
    /// Fails for unknown pids.
    pub fn mmap_lazy(&mut self, pid: Pid, pages: u64) -> Result<VirtAddr, OsError> {
        let idx = self
            .processes
            .iter()
            .position(|p| p.pid == pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        let base = VirtAddr::new(USER_HEAP_BASE + self.processes[idx].heap_pages * PAGE_SIZE);
        self.processes[idx].heap_pages += pages;
        self.processes[idx].lazy.push((base, pages));
        Ok(base)
    }

    /// Changes a page's protection (`mprotect`), fencing the stale TLB
    /// entry. Returns the cycle cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown pids or unmapped pages.
    pub fn mprotect<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        pid: Pid,
        va: VirtAddr,
        perms: Perms,
    ) -> Result<u64, OsError> {
        let idx = self
            .processes
            .iter()
            .position(|p| p.pid == pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        self.processes[idx]
            .space
            .protect_page(machine.phys_mut(), va, perms)
            .ok_or(OsError::Access(Fault::PageFault(va)))?;
        self.processes[idx].cow.remove(&va.page_number());
        let asid = self.processes[idx].space.asid();
        machine.sfence_vma_asid(asid);
        let cycles = machine.run_compute(300);
        self.stats.kernel_cycles += cycles;
        Ok(cycles)
    }

    /// A user access with kernel fault handling: demand-paging faults map a
    /// fresh zero frame; COW write faults copy the shared frame and upgrade
    /// the mapping. Both charge realistic kernel work (trap, frame copy
    /// through the direct map, PTE install, fence) before the retry.
    ///
    /// # Errors
    ///
    /// Propagates faults the handlers do not recognise.
    pub fn user_access_faulting<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        pid: Pid,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<u64, OsError> {
        match self.user_access(machine, pid, va, kind) {
            Ok(cycles) => Ok(cycles),
            Err(OsError::Access(Fault::PageFault(_))) => {
                let handler = self.handle_demand_fault(machine, pid, va)?;
                Ok(handler + self.user_access(machine, pid, va, kind)?)
            }
            Err(OsError::Access(Fault::PtePermission(_))) if kind == AccessKind::Write => {
                let handler = self.handle_cow_fault(machine, pid, va)?;
                Ok(handler + self.user_access(machine, pid, va, kind)?)
            }
            Err(e) => Err(e),
        }
    }

    /// Demand-paging handler: the faulting page must lie in a lazy region.
    fn handle_demand_fault<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        pid: Pid,
        va: VirtAddr,
    ) -> Result<u64, OsError> {
        let idx = self
            .processes
            .iter()
            .position(|p| p.pid == pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        let covered = self.processes[idx].lazy.iter().any(|(base, pages)| {
            va.page_number() >= base.page_number() && va.page_number() < base.page_number() + pages
        });
        if !covered {
            return Err(OsError::Access(Fault::PageFault(va)));
        }
        let mut cycles = machine.run_compute(500); // trap + vma lookup
        let frame = self.alloc_data_frame().ok_or(OsError::OutOfMemory)?;
        let before = self.processes[idx].space.pt_pages().len();
        self.processes[idx].space.map_page(
            machine.phys_mut(),
            &mut self.pt_pool,
            va.page_base(),
            frame,
            Perms::RW,
            true,
        )?;
        let space_ref = &self.processes[idx].space;
        cycles += Self::price_new_pt_pages_inner(
            machine,
            &self.kernel_space,
            self.ram_base,
            space_ref,
            before,
            &mut self.stats,
        )?;
        cycles += Self::price_pte_install_inner(
            machine,
            &self.kernel_space,
            self.ram_base,
            space_ref,
            &mut self.stats,
        )?;
        self.processes[idx].mapped.push(va.page_base());
        self.stats.kernel_cycles += cycles;
        Ok(cycles)
    }

    /// COW handler: copy the shared frame, remap RW.
    fn handle_cow_fault<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        pid: Pid,
        va: VirtAddr,
    ) -> Result<u64, OsError> {
        let idx = self
            .processes
            .iter()
            .position(|p| p.pid == pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        if !self.processes[idx].cow.contains(&va.page_number()) {
            return Err(OsError::Access(Fault::PtePermission(va)));
        }
        let mut cycles = machine.run_compute(500); // trap + vma lookup
        let old = self.processes[idx]
            .space
            .translate(machine.phys(), va.page_base())
            .ok_or(OsError::Access(Fault::PageFault(va)))?;
        let shared_elsewhere = self.processes.iter().enumerate().any(|(j, p)| {
            j != idx
                && p.space
                    .translate(machine.phys(), va.page_base())
                    .is_some_and(|t| t.paddr.page_base() == old.paddr.page_base())
        });
        if shared_elsewhere {
            // Copy the 4 KiB frame through the direct map (priced as a few
            // representative line transfers plus compute for the rest).
            let new_frame = self.alloc_data_frame().ok_or(OsError::OutOfMemory)?;
            let src = self.kernel_va(old.paddr.page_base());
            let dst = self.kernel_va(new_frame);
            for line in 0..4u64 {
                cycles += machine
                    .access(
                        &self.kernel_space,
                        src + line * 1024,
                        AccessKind::Read,
                        PrivMode::Supervisor,
                    )?
                    .cycles;
                cycles += machine
                    .access(
                        &self.kernel_space,
                        dst + line * 1024,
                        AccessKind::Write,
                        PrivMode::Supervisor,
                    )?
                    .cycles;
            }
            cycles += machine.run_compute(PAGE_SIZE / 8);
            self.processes[idx].space.remap_page(
                machine.phys_mut(),
                va.page_base(),
                new_frame,
                Perms::RW,
            );
        } else {
            // Sole owner: upgrade in place.
            self.processes[idx]
                .space
                .protect_page(machine.phys_mut(), va.page_base(), Perms::RW);
        }
        self.processes[idx].cow.remove(&va.page_number());
        let asid = self.processes[idx].space.asid();
        machine.sfence_vma_asid(asid);
        cycles += machine.run_compute(200); // return path
        self.stats.kernel_cycles += cycles;
        Ok(cycles)
    }

    /// Schedules `pid`, flushing non-global translations if the ASID space
    /// forces it. Returns the cost.
    ///
    /// # Errors
    ///
    /// Fails for unknown pids.
    pub fn context_switch<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        pid: Pid,
    ) -> Result<u64, OsError> {
        if !self.processes.iter().any(|p| p.pid == pid) {
            return Err(OsError::NoSuchProcess(pid));
        }
        let cycles = machine.run_compute(400);
        self.current = Some(pid);
        self.stats.context_switches += 1;
        self.stats.kernel_cycles += cycles;
        Ok(cycles)
    }

    /// Performs a user-mode access in `pid`'s address space.
    ///
    /// # Errors
    ///
    /// Fails for unknown pids or faulting accesses.
    pub fn user_access<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        pid: Pid,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<u64, OsError> {
        let process = self
            .processes
            .iter()
            .find(|p| p.pid == pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        let out = machine.access(&process.space, va, kind, PrivMode::User)?;
        Ok(out.cycles)
    }

    /// Performs a kernel access to physical address `pa` via the direct map.
    ///
    /// # Errors
    ///
    /// Propagates access faults.
    pub fn kernel_access<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        pa: PhysAddr,
        kind: AccessKind,
    ) -> Result<u64, OsError> {
        let va = self.kernel_va(pa);
        let out = machine.access(&self.kernel_space, va, kind, PrivMode::Supervisor)?;
        Ok(out.cycles)
    }

    /// Virtual addresses mapped in `pid` (for workload generators).
    ///
    /// # Errors
    ///
    /// Fails for unknown pids.
    pub fn mappings(&self, pid: Pid) -> Result<&[VirtAddr], OsError> {
        self.processes
            .iter()
            .find(|p| p.pid == pid)
            .map(|p| p.mapped.as_slice())
            .ok_or(OsError::NoSuchProcess(pid))
    }

    /// The address space of `pid` (for direct machine access in workloads).
    ///
    /// # Errors
    ///
    /// Fails for unknown pids.
    pub fn space_of(&self, pid: Pid) -> Result<&AddressSpace, OsError> {
        self.processes
            .iter()
            .find(|p| p.pid == pid)
            .map(|p| &p.space)
            .ok_or(OsError::NoSuchProcess(pid))
    }

    /// The §9 hint-create ioctl: marks `[va, va + pages·4K)` of `pid` as a
    /// hot region. The driver resolves the range to physical frames,
    /// verifies contiguity, rounds to the smallest NAPOT superset, and asks
    /// the monitor to label it as a fast sub-GMS. Returns the hint id and
    /// the monitor's cycle cost.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped or physically discontiguous, or if
    /// the monitor rejects the label (non-HPMP flavour).
    pub fn ioctl_hint_create<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        monitor: &mut SecureMonitor,
        domain: DomainId,
        pid: Pid,
        va: VirtAddr,
        pages: u64,
    ) -> Result<(HintId, u64), OsError> {
        let process = self
            .processes
            .iter()
            .find(|p| p.pid == pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        // Resolve and require physical contiguity.
        let first = process
            .space
            .translate(machine.phys(), va)
            .ok_or(OsError::BadHintRange(va))?
            .paddr
            .page_base();
        for i in 1..pages {
            let page_va = va + i * PAGE_SIZE;
            let t = process
                .space
                .translate(machine.phys(), page_va)
                .ok_or(OsError::BadHintRange(page_va))?;
            if t.paddr.page_base().raw() != first.raw() + i * PAGE_SIZE {
                return Err(OsError::BadHintRange(page_va));
            }
        }
        // Round to the smallest NAPOT superset that covers the whole range
        // (aligning the base down can push the end out, so grow until the
        // range fits).
        let bytes = pages * PAGE_SIZE;
        let end = first.raw() + bytes;
        let mut size = bytes.next_power_of_two();
        let region = loop {
            let base = first.raw() & !(size - 1);
            if base + size >= end {
                break PmpRegion::new(PhysAddr::new(base), size);
            }
            size *= 2;
        };
        let cycles = monitor.label_subregion(machine, domain, region, GmsLabel::Fast)?;

        let id = HintId(self.next_hint);
        self.next_hint += 1;
        self.hints.push(RegionHint {
            id,
            pid,
            va,
            pages,
            region,
        });
        Ok((id, cycles))
    }

    /// The hint-delete ioctl: removes a hint and its fast sub-GMS.
    ///
    /// # Errors
    ///
    /// Fails for unknown hints.
    pub fn ioctl_hint_delete<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        monitor: &mut SecureMonitor,
        domain: DomainId,
        id: HintId,
    ) -> Result<u64, OsError> {
        let idx = self
            .hints
            .iter()
            .position(|h| h.id == id)
            .ok_or(OsError::NoSuchHint(id))?;
        let hint = self.hints.remove(idx);
        Ok(monitor.unlabel_subregion(machine, domain, hint.region)?)
    }

    /// The hint-query ioctl: returns the installed hints.
    pub fn ioctl_hint_query(&self) -> &[RegionHint] {
        &self.hints
    }

    /// Prices the kernel stores that zero and link PT pages allocated since
    /// `before` (each new page: a few line-sized stores through the direct
    /// map — priced as 4 representative stores plus compute).
    fn price_new_pt_pages<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        space: &AddressSpace,
        before: usize,
    ) -> Result<u64, OsError> {
        Self::price_new_pt_pages_inner(
            machine,
            &self.kernel_space,
            self.ram_base,
            space,
            before,
            &mut self.stats,
        )
    }

    fn price_new_pt_pages_inner<S: TraceSink>(
        machine: &mut Machine<S>,
        kernel_space: &AddressSpace,
        ram_base: PhysAddr,
        space: &AddressSpace,
        before: usize,
        stats: &mut OsStats,
    ) -> Result<u64, OsError> {
        let mut cycles = 0;
        for page in &space.pt_pages()[before..] {
            let va = VirtAddr::new(KERNEL_DIRECT_MAP + (page.raw() - ram_base.raw()));
            for line in 0..4u64 {
                let out = machine.access(
                    kernel_space,
                    va + line * 1024,
                    AccessKind::Write,
                    PrivMode::Supervisor,
                )?;
                cycles += out.cycles;
            }
            cycles += machine.run_compute(128); // rest of the memset
            stats.pte_installs += 1;
        }
        Ok(cycles)
    }

    /// Prices the single PTE store of a leaf install (the deepest PT page).
    fn price_pte_install<S: TraceSink>(
        &mut self,
        machine: &mut Machine<S>,
        space: &AddressSpace,
    ) -> Result<u64, OsError> {
        Self::price_pte_install_inner(
            machine,
            &self.kernel_space,
            self.ram_base,
            space,
            &mut self.stats,
        )
    }

    fn price_pte_install_inner<S: TraceSink>(
        machine: &mut Machine<S>,
        kernel_space: &AddressSpace,
        ram_base: PhysAddr,
        space: &AddressSpace,
        stats: &mut OsStats,
    ) -> Result<u64, OsError> {
        let leaf = *space.pt_pages().last().expect("space has a root");
        let va = VirtAddr::new(KERNEL_DIRECT_MAP + (leaf.raw() - ram_base.raw()));
        let out = machine.access(kernel_space, va, AccessKind::Write, PrivMode::Supervisor)?;
        stats.pte_installs += 1;
        Ok(out.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_core::PmpRegion;
    use hpmp_machine::MachineConfig;

    const RAM_BASE: PhysAddr = PhysAddr::new(0x8000_0000);
    const RAM_SIZE: u64 = 256 << 20;

    fn boot(placement: PtPlacement) -> (Machine, SimOs) {
        let mut machine = Machine::new(MachineConfig::rocket());
        // Flat PMP so accesses are always allowed; OS behaviour is under test.
        machine
            .regs_mut()
            .configure_segment(0, PmpRegion::new(RAM_BASE, 1 << 30), Perms::RWX)
            .unwrap();
        let os = SimOs::boot(&mut machine, RAM_BASE, RAM_SIZE, placement);
        (machine, os)
    }

    #[test]
    fn spawn_creates_runnable_process() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (pid, cycles) = os.spawn(&mut machine, 4).unwrap();
        assert!(cycles > 0);
        assert_eq!(os.process_count(), 1);
        let cost = os
            .user_access(
                &mut machine,
                pid,
                VirtAddr::new(USER_CODE_BASE),
                AccessKind::Read,
            )
            .unwrap();
        assert!(cost > 0);
    }

    #[test]
    fn fork_clones_mappings_cow() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (parent, _) = os.spawn(&mut machine, 4).unwrap();
        let (child, cycles) = os.fork(&mut machine, parent).unwrap();
        assert!(cycles > 0);
        assert_ne!(parent, child);
        // The child sees the code pages.
        os.user_access(
            &mut machine,
            child,
            VirtAddr::new(USER_CODE_BASE),
            AccessKind::Read,
        )
        .unwrap();
        // The stack became read-only in the child (COW).
        let err = os
            .user_access(
                &mut machine,
                child,
                VirtAddr::new(0x7f_ffff_f000),
                AccessKind::Write,
            )
            .unwrap_err();
        assert!(matches!(err, OsError::Access(Fault::PtePermission(_))));
    }

    #[test]
    fn exit_reclaims_process() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (pid, _) = os.spawn(&mut machine, 2).unwrap();
        os.exit(&mut machine, pid).unwrap();
        assert_eq!(os.process_count(), 0);
        assert!(matches!(
            os.user_access(
                &mut machine,
                pid,
                VirtAddr::new(USER_CODE_BASE),
                AccessKind::Read
            ),
            Err(OsError::NoSuchProcess(_))
        ));
    }

    #[test]
    fn mmap_extends_heap() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (pid, _) = os.spawn(&mut machine, 1).unwrap();
        os.mmap(&mut machine, pid, 8).unwrap();
        for i in 0..8u64 {
            os.user_access(
                &mut machine,
                pid,
                VirtAddr::new(USER_HEAP_BASE + i * PAGE_SIZE),
                AccessKind::Write,
            )
            .unwrap();
        }
    }

    #[test]
    fn contiguous_placement_keeps_pt_pages_in_pool() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (pid, _) = os.spawn(&mut machine, 16).unwrap();
        let (pool_base, pool_size) = os.pt_pool_region();
        for page in os.space_of(pid).unwrap().pt_pages() {
            assert!(
                page.raw() >= pool_base.raw() && page.raw() < pool_base.raw() + pool_size,
                "PT page {page} escaped the pool"
            );
        }
    }

    #[test]
    fn scattered_placement_leaves_pool() {
        let (mut machine, mut os) = boot(PtPlacement::Scattered);
        let (pid, _) = os.spawn(&mut machine, 16).unwrap();
        let (pool_base, pool_size) = os.pt_pool_region();
        let inside = os
            .space_of(pid)
            .unwrap()
            .pt_pages()
            .iter()
            .filter(|p| p.raw() >= pool_base.raw() && p.raw() < pool_base.raw() + pool_size)
            .count();
        assert_eq!(inside, 0, "scattered PT pages must not live in the pool");
    }

    #[test]
    fn demand_paging_maps_on_first_touch() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (pid, _) = os.spawn(&mut machine, 1).unwrap();
        let base = os.mmap_lazy(pid, 4).unwrap();
        // An eager access faults; the faulting path maps and retries.
        assert!(matches!(
            os.user_access(&mut machine, pid, base, AccessKind::Write),
            Err(OsError::Access(Fault::PageFault(_)))
        ));
        let cycles = os
            .user_access_faulting(&mut machine, pid, base, AccessKind::Write)
            .expect("demand fault handled");
        assert!(cycles > 500, "fault handling must cost real work: {cycles}");
        // Second touch: normal access, no handler.
        let warm = os
            .user_access(&mut machine, pid, base, AccessKind::Read)
            .unwrap();
        assert!(warm < cycles);
        // A touch outside any lazy region still faults.
        assert!(matches!(
            os.user_access_faulting(
                &mut machine,
                pid,
                VirtAddr::new(0x5000_0000),
                AccessKind::Read
            ),
            Err(OsError::Access(Fault::PageFault(_)))
        ));
    }

    #[test]
    fn cow_fault_copies_and_upgrades() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (parent, _) = os.spawn(&mut machine, 2).unwrap();
        os.mmap(&mut machine, parent, 2).unwrap();
        let heap = VirtAddr::new(USER_HEAP_BASE);
        os.user_access(&mut machine, parent, heap, AccessKind::Write)
            .unwrap();
        let (child, _) = os.fork(&mut machine, parent).unwrap();

        // Both sides are read-only now (true COW).
        assert!(os
            .user_access(&mut machine, parent, heap, AccessKind::Write)
            .is_err());
        assert!(os
            .user_access(&mut machine, child, heap, AccessKind::Write)
            .is_err());
        let parent_frame = os
            .space_of(parent)
            .unwrap()
            .translate(machine.phys(), heap)
            .unwrap()
            .paddr;
        let child_frame = os
            .space_of(child)
            .unwrap()
            .translate(machine.phys(), heap)
            .unwrap()
            .paddr;
        assert_eq!(parent_frame, child_frame, "frame shared before the write");

        // The child writes: COW copies the frame and upgrades.
        os.user_access_faulting(&mut machine, child, heap, AccessKind::Write)
            .expect("COW resolved");
        let child_frame_after = os
            .space_of(child)
            .unwrap()
            .translate(machine.phys(), heap)
            .unwrap()
            .paddr;
        assert_ne!(child_frame_after, parent_frame, "child got a private copy");
        // Parent then writes: sole owner, upgraded in place.
        os.user_access_faulting(&mut machine, parent, heap, AccessKind::Write)
            .expect("parent upgrade");
        let parent_frame_after = os
            .space_of(parent)
            .unwrap()
            .translate(machine.phys(), heap)
            .unwrap()
            .paddr;
        assert_eq!(
            parent_frame_after, parent_frame,
            "parent kept the original frame"
        );
    }

    #[test]
    fn munmap_unmaps_and_recycles() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (pid, _) = os.spawn(&mut machine, 1).unwrap();
        os.mmap(&mut machine, pid, 4).unwrap();
        let heap = VirtAddr::new(USER_HEAP_BASE);
        for i in 0..4u64 {
            os.user_access(&mut machine, pid, heap + i * PAGE_SIZE, AccessKind::Write)
                .unwrap();
        }
        os.munmap(&mut machine, pid, heap, 2).unwrap();
        // The unmapped pages fault; the rest stay mapped.
        assert!(matches!(
            os.user_access(&mut machine, pid, heap, AccessKind::Read),
            Err(OsError::Access(Fault::PageFault(_)))
        ));
        os.user_access(&mut machine, pid, heap + 2 * PAGE_SIZE, AccessKind::Read)
            .unwrap();
        // Unmapping an already-unmapped range is a no-op, not an error.
        os.munmap(&mut machine, pid, heap, 2).unwrap();
    }

    #[test]
    fn munmap_does_not_recycle_shared_frames() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (parent, _) = os.spawn(&mut machine, 1).unwrap();
        os.mmap(&mut machine, parent, 1).unwrap();
        let heap = VirtAddr::new(USER_HEAP_BASE);
        os.user_access(&mut machine, parent, heap, AccessKind::Write)
            .unwrap();
        let (child, _) = os.fork(&mut machine, parent).unwrap();
        let frame = os
            .space_of(child)
            .unwrap()
            .translate(machine.phys(), heap)
            .unwrap()
            .paddr
            .page_base();
        // Parent unmaps: the frame is still the child's, so it must not be
        // recycled into a fresh allocation.
        os.munmap(&mut machine, parent, heap, 1).unwrap();
        let (other, _) = os.spawn(&mut machine, 1).unwrap();
        os.mmap(&mut machine, other, 1).unwrap();
        let fresh = os
            .space_of(other)
            .unwrap()
            .translate(machine.phys(), heap)
            .unwrap()
            .paddr
            .page_base();
        assert_ne!(
            fresh, frame,
            "shared frame must not be reused while the child lives"
        );
        os.user_access(&mut machine, child, heap, AccessKind::Read)
            .expect("child survives");
    }

    #[test]
    fn mprotect_changes_and_fences() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (pid, _) = os.spawn(&mut machine, 1).unwrap();
        os.mmap(&mut machine, pid, 1).unwrap();
        let heap = VirtAddr::new(USER_HEAP_BASE);
        os.user_access(&mut machine, pid, heap, AccessKind::Write)
            .unwrap();
        os.mprotect(&mut machine, pid, heap, Perms::READ).unwrap();
        assert!(matches!(
            os.user_access(&mut machine, pid, heap, AccessKind::Write),
            Err(OsError::Access(Fault::PtePermission(_)))
        ));
        os.user_access(&mut machine, pid, heap, AccessKind::Read)
            .unwrap();
        os.mprotect(&mut machine, pid, heap, Perms::RW).unwrap();
        os.user_access(&mut machine, pid, heap, AccessKind::Write)
            .unwrap();
    }

    #[test]
    fn kernel_access_works_via_direct_map() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let cost = os
            .kernel_access(
                &mut machine,
                PhysAddr::new(RAM_BASE.raw() + 0x10_0000),
                AccessKind::Read,
            )
            .unwrap();
        assert!(cost > 0);
    }

    #[test]
    fn stats_accumulate() {
        let (mut machine, mut os) = boot(PtPlacement::Contiguous);
        let (pid, _) = os.spawn(&mut machine, 2).unwrap();
        os.fork(&mut machine, pid).unwrap();
        os.context_switch(&mut machine, pid).unwrap();
        let stats = os.stats();
        assert_eq!(stats.processes_created, 2);
        assert_eq!(stats.context_switches, 1);
        assert!(stats.pte_installs > 0);
        assert!(stats.kernel_cycles > 0);
    }
}
