//! Mountable Merkle tree: Penglai's integrity protection (Figure 7).
//!
//! Penglai "employs encryption and merkle tree to defend against physical
//! memory attacks", and its mountable variant materialises subtrees on
//! demand so integrity metadata scales with the *hot* working set rather
//! than total protected memory. This module models that component over the
//! simulated physical memory: a page-granular hash tree with arity 8,
//! lazily-mounted subtrees and tamper detection.
//!
//! The hash is FNV-1a (64-bit) — a stand-in for the hardware hash engine;
//! collision resistance is irrelevant to what the model measures (metadata
//! counts, verify/update paths, detection of direct physical writes), and
//! the offline crate policy precludes a real cryptographic hash.

use std::collections::HashMap;

use hpmp_memsim::{PhysAddr, PhysMem, PAGE_SIZE};

use crate::monitor::MonitorError;

/// Arity of the tree (children per internal node).
const ARITY: u64 = 8;

/// 64-bit FNV-1a over a byte-free word stream (we hash the page's words).
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for shift in (0..64).step_by(8) {
            hash ^= (w >> shift) & 0xff;
            hash = hash.wrapping_mul(0x1_0000_01b3);
        }
    }
    hash
}

fn hash_page(mem: &PhysMem, base: PhysAddr) -> u64 {
    fnv1a((0..PAGE_SIZE / 8).map(|i| mem.read_u64(base + i * 8)))
}

fn hash_children(children: &[u64]) -> u64 {
    fnv1a(children.iter().copied())
}

/// Errors from integrity operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityError {
    /// The page's current contents do not match the recorded hash.
    TamperDetected(PhysAddr),
    /// The address lies outside the protected region.
    OutOfRange(PhysAddr),
    /// The page's subtree is not mounted.
    NotMounted(PhysAddr),
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::TamperDetected(pa) => write!(f, "tampering detected at {pa}"),
            IntegrityError::OutOfRange(pa) => write!(f, "address {pa} outside merkle region"),
            IntegrityError::NotMounted(pa) => write!(f, "subtree for {pa} not mounted"),
        }
    }
}

impl std::error::Error for IntegrityError {}

impl From<IntegrityError> for MonitorError {
    fn from(_: IntegrityError) -> MonitorError {
        MonitorError::NotOwned
    }
}

/// A mountable Merkle tree over `[base, base + pages·4K)`.
///
/// Leaves are page hashes grouped into *subtrees* of 8² pages; a
/// subtree's leaf hashes exist in memory only while mounted. The root keeps
/// one hash per subtree, so unmounted state costs 8 bytes per 64 pages.
#[derive(Debug)]
pub struct MerkleTree {
    base: PhysAddr,
    pages: u64,
    /// Per-subtree top hash (always resident).
    subtree_roots: Vec<u64>,
    /// Mounted subtrees: index → leaf page hashes.
    mounted: HashMap<u64, Vec<u64>>,
    root: u64,
}

/// Pages per subtree (arity²).
pub const SUBTREE_PAGES: u64 = ARITY * ARITY;

impl MerkleTree {
    /// Builds the tree over the current contents of `mem`. All subtrees
    /// start unmounted (only their top hashes are kept).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page aligned or `pages` is zero.
    pub fn build(mem: &PhysMem, base: PhysAddr, pages: u64) -> MerkleTree {
        assert!(
            base.is_aligned(PAGE_SIZE),
            "merkle base must be page aligned"
        );
        assert!(pages > 0, "empty merkle region");
        let subtrees = pages.div_ceil(SUBTREE_PAGES);
        let mut subtree_roots = Vec::with_capacity(subtrees as usize);
        for s in 0..subtrees {
            let leaves = Self::subtree_leaves(mem, base, pages, s);
            subtree_roots.push(Self::fold_subtree(&leaves));
        }
        let root = hash_children(&subtree_roots);
        MerkleTree {
            base,
            pages,
            subtree_roots,
            mounted: HashMap::new(),
            root,
        }
    }

    /// The current root hash — what the monitor keeps in its private
    /// memory (or a register) as the trust anchor.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Number of currently mounted subtrees.
    pub fn mounted_count(&self) -> usize {
        self.mounted.len()
    }

    /// Resident integrity metadata in bytes (root + subtree tops + mounted
    /// leaves) — the quantity the mountable design keeps small.
    pub fn resident_metadata_bytes(&self) -> u64 {
        8 + self.subtree_roots.len() as u64 * 8
            + self
                .mounted
                .values()
                .map(|v| v.len() as u64 * 8)
                .sum::<u64>()
    }

    /// Mounts the subtree covering `addr`, re-hashing its pages and
    /// verifying the subtree's top hash against the resident copy.
    ///
    /// # Errors
    ///
    /// Fails with [`IntegrityError::TamperDetected`] if the recomputed top
    /// hash mismatches (memory was modified while unmounted).
    pub fn mount(&mut self, mem: &PhysMem, addr: PhysAddr) -> Result<(), IntegrityError> {
        let s = self.subtree_of(addr)?;
        if self.mounted.contains_key(&s) {
            return Ok(());
        }
        let leaves = Self::subtree_leaves(mem, self.base, self.pages, s);
        if Self::fold_subtree(&leaves) != self.subtree_roots[s as usize] {
            return Err(IntegrityError::TamperDetected(addr.page_base()));
        }
        self.mounted.insert(s, leaves);
        Ok(())
    }

    /// Unmounts the subtree covering `addr`, dropping its leaf hashes (the
    /// top hash stays resident).
    ///
    /// # Errors
    ///
    /// Fails if `addr` is out of range.
    pub fn unmount(&mut self, addr: PhysAddr) -> Result<(), IntegrityError> {
        let s = self.subtree_of(addr)?;
        self.mounted.remove(&s);
        Ok(())
    }

    /// Verifies the page containing `addr` against its recorded hash.
    ///
    /// # Errors
    ///
    /// Fails if the subtree is not mounted or the page was tampered with.
    pub fn verify_page(&self, mem: &PhysMem, addr: PhysAddr) -> Result<(), IntegrityError> {
        let s = self.subtree_of(addr)?;
        let leaves = self
            .mounted
            .get(&s)
            .ok_or(IntegrityError::NotMounted(addr.page_base()))?;
        let page_idx = (addr.page_number() - self.base.page_number()) % SUBTREE_PAGES;
        let page_base = addr.page_base();
        if hash_page(mem, page_base) != leaves[page_idx as usize] {
            return Err(IntegrityError::TamperDetected(page_base));
        }
        Ok(())
    }

    /// Records a legitimate write: re-hashes the page and propagates the
    /// change up to the root.
    ///
    /// # Errors
    ///
    /// Fails if the subtree is not mounted or the address is out of range.
    pub fn update_page(&mut self, mem: &PhysMem, addr: PhysAddr) -> Result<(), IntegrityError> {
        let s = self.subtree_of(addr)?;
        let leaves = self
            .mounted
            .get_mut(&s)
            .ok_or(IntegrityError::NotMounted(addr.page_base()))?;
        let page_idx = (addr.page_number() - self.base.page_number()) % SUBTREE_PAGES;
        leaves[page_idx as usize] = hash_page(mem, addr.page_base());
        self.subtree_roots[s as usize] = Self::fold_subtree(leaves);
        self.root = hash_children(&self.subtree_roots);
        Ok(())
    }

    fn subtree_of(&self, addr: PhysAddr) -> Result<u64, IntegrityError> {
        let page = addr.page_number();
        let first = self.base.page_number();
        if page < first || page >= first + self.pages {
            return Err(IntegrityError::OutOfRange(addr));
        }
        Ok((page - first) / SUBTREE_PAGES)
    }

    fn subtree_leaves(mem: &PhysMem, base: PhysAddr, pages: u64, s: u64) -> Vec<u64> {
        let start = s * SUBTREE_PAGES;
        let end = (start + SUBTREE_PAGES).min(pages);
        (start..end)
            .map(|p| hash_page(mem, PhysAddr::new(base.raw() + p * PAGE_SIZE)))
            .collect()
    }

    /// Folds a subtree's leaves through one ARITY-way level and then to a
    /// single hash.
    fn fold_subtree(leaves: &[u64]) -> u64 {
        let level: Vec<u64> = leaves.chunks(ARITY as usize).map(hash_children).collect();
        hash_children(&level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: PhysAddr = PhysAddr::new(0x9000_0000);

    fn fixture(pages: u64) -> (PhysMem, MerkleTree) {
        let mut mem = PhysMem::new();
        for p in 0..pages {
            mem.write_u64(PhysAddr::new(BASE.raw() + p * PAGE_SIZE), p + 1);
        }
        let tree = MerkleTree::build(&mem, BASE, pages);
        (mem, tree)
    }

    #[test]
    fn verify_clean_pages() {
        let (mem, mut tree) = fixture(130); // spans 3 subtrees
        for p in [0u64, 63, 64, 129] {
            let addr = PhysAddr::new(BASE.raw() + p * PAGE_SIZE);
            tree.mount(&mem, addr).expect("mount");
            tree.verify_page(&mem, addr).expect("clean page verifies");
        }
        assert_eq!(tree.mounted_count(), 3);
    }

    #[test]
    fn tamper_detected_on_mounted_page() {
        let (mut mem, mut tree) = fixture(64);
        let victim = PhysAddr::new(BASE.raw() + 7 * PAGE_SIZE);
        tree.mount(&mem, victim).expect("mount");
        // A physical attacker flips a word directly.
        mem.write_u64(victim + 0x100, 0xdead_beef);
        assert_eq!(
            tree.verify_page(&mem, victim),
            Err(IntegrityError::TamperDetected(victim))
        );
    }

    #[test]
    fn tamper_detected_at_mount_time() {
        let (mut mem, mut tree) = fixture(64);
        let victim = PhysAddr::new(BASE.raw() + 3 * PAGE_SIZE);
        // Tamper while unmounted: the subtree top hash catches it on mount.
        mem.write_u64(victim, 42);
        assert!(matches!(
            tree.mount(&mem, victim),
            Err(IntegrityError::TamperDetected(_))
        ));
    }

    #[test]
    fn legitimate_update_propagates_to_root() {
        let (mut mem, mut tree) = fixture(64);
        let page = PhysAddr::new(BASE.raw() + 5 * PAGE_SIZE);
        tree.mount(&mem, page).expect("mount");
        let old_root = tree.root();
        mem.write_u64(page, 777);
        tree.update_page(&mem, page).expect("update");
        assert_ne!(tree.root(), old_root, "root must change");
        tree.verify_page(&mem, page).expect("updated page verifies");
        // Remount after unmount still verifies (top hash was updated).
        tree.unmount(page).expect("unmount");
        tree.mount(&mem, page).expect("remount");
        tree.verify_page(&mem, page).expect("verify after remount");
    }

    #[test]
    fn unmounted_metadata_is_small() {
        let (_, tree) = fixture(1024); // 4 MiB protected
                                       // 16 subtree hashes + root = 136 bytes while nothing is mounted.
        assert_eq!(tree.mounted_count(), 0);
        assert_eq!(tree.resident_metadata_bytes(), 8 + 16 * 8);
    }

    #[test]
    fn out_of_range_rejected() {
        let (mem, mut tree) = fixture(16);
        let outside = PhysAddr::new(BASE.raw() + 64 * PAGE_SIZE);
        assert!(matches!(
            tree.mount(&mem, outside),
            Err(IntegrityError::OutOfRange(_))
        ));
        assert!(matches!(
            tree.verify_page(&mem, outside),
            Err(IntegrityError::OutOfRange(_))
        ));
    }

    #[test]
    fn verify_requires_mount() {
        let (mem, tree) = fixture(16);
        assert!(matches!(
            tree.verify_page(&mem, BASE),
            Err(IntegrityError::NotMounted(_))
        ));
    }
}
