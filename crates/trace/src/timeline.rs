//! Periodic snapshot streaming: the time axis for metrics.
//!
//! A [`TimelineSink`] turns end-of-run aggregates into *slices*: every N
//! simulated cycles it captures the cumulative [`Snapshot`] and stores the
//! counter-wise [`Snapshot::delta`] against the previous capture. The
//! deltas telescope — merging every slice with [`Snapshot::merge`]
//! reproduces the final end-of-run snapshot byte-for-byte — so a timeline
//! is a lossless decomposition of the run, not a parallel bookkeeping
//! scheme that can drift from it.
//!
//! Boundaries are decided on the deterministic simulated clock, never on
//! wall time, so timelines are byte-identical at any `--jobs`. Slice
//! count is bounded: past [`TimelineSink::max_slices`] new deltas fold
//! into the last slice (keeping the telescoping sum exact) and the folded
//! boundary is counted in [`TimelineSink::dropped_boundaries`] — the
//! lossy-but-honest discipline every trace artifact in this crate follows.
//!
//! The on-disk form is JSONL: a schema-versioned header carrying the
//! interval, one slice object per line, and a summary footer.

use crate::json::{parse_json, JsonValue};
use crate::metrics::Snapshot;
use crate::read::{check_schema, ReadError};
use crate::SCHEMA_VERSION;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

/// The `stream` tag a timeline JSONL header carries.
pub const TIMELINE_STREAM: &str = "hpmp-timeline";

/// Default bound on retained slices (~hours of simulated time at any
/// sensible interval before folding starts).
pub const DEFAULT_MAX_SLICES: usize = 1 << 16;

/// One interval of a run: the counter deltas accumulated over
/// `[start_cycle, end_cycle)` of the global simulated clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineSlice {
    /// 0-based slice number.
    pub index: u64,
    /// First cycle covered by this slice.
    pub start_cycle: u64,
    /// One past the last cycle covered.
    pub end_cycle: u64,
    /// Counter-wise delta over the slice ([`Snapshot::delta`] of the
    /// cumulative snapshots at the two boundaries).
    pub counters: Snapshot,
}

impl TimelineSlice {
    /// The slice's width on the cycle axis.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"slice\":{},\"start_cycle\":{},\"end_cycle\":{},\"counters\":{}}}",
            self.index,
            self.start_cycle,
            self.end_cycle,
            self.counters.to_json()
        )
    }
}

/// The periodic-snapshot emitter: feed it cumulative snapshots at
/// deterministic checkpoints; it slices them on the simulated clock.
#[derive(Clone, Debug)]
pub struct TimelineSink {
    interval: u64,
    max_slices: usize,
    slices: Vec<TimelineSlice>,
    last: Snapshot,
    last_cycle: u64,
    dropped_boundaries: u64,
}

impl TimelineSink {
    /// A sink slicing every `interval` simulated cycles (0 is treated as
    /// 1), bounded at [`DEFAULT_MAX_SLICES`].
    pub fn new(interval: u64) -> TimelineSink {
        TimelineSink::with_max_slices(interval, DEFAULT_MAX_SLICES)
    }

    /// A sink with an explicit slice bound (0 folds everything into one
    /// slice at `finish`).
    pub fn with_max_slices(interval: u64, max_slices: usize) -> TimelineSink {
        TimelineSink {
            interval: interval.max(1),
            max_slices,
            slices: Vec::new(),
            last: Snapshot::new(),
            last_cycle: 0,
            dropped_boundaries: 0,
        }
    }

    /// The configured slice interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The configured slice bound.
    pub fn max_slices(&self) -> usize {
        self.max_slices
    }

    /// Whether a checkpoint at `now` should cut a slice.
    pub fn due(&self, now: u64) -> bool {
        now >= self.last_cycle + self.interval
    }

    /// Cut a slice at `now` from the cumulative snapshot `cumulative`.
    ///
    /// Counters must be monotone between calls (they are: every registry
    /// in the workspace only ever accumulates between resets, and a
    /// timeline never spans a reset). Past the slice bound the delta folds
    /// into the last slice, keeping the telescoping sum exact.
    pub fn record(&mut self, now: u64, cumulative: &Snapshot) {
        let delta = cumulative.delta(&self.last);
        if self.slices.len() >= self.max_slices && !self.slices.is_empty() {
            let tail = self.slices.last_mut().expect("non-empty");
            tail.end_cycle = now.max(tail.end_cycle);
            tail.counters = tail.counters.merge(&delta);
            self.dropped_boundaries += 1;
        } else {
            self.slices.push(TimelineSlice {
                index: self.slices.len() as u64,
                start_cycle: self.last_cycle,
                end_cycle: now,
                counters: delta,
            });
        }
        self.last = cumulative.clone();
        self.last_cycle = now;
    }

    /// Close the timeline at the end of the run: the tail slice absorbs
    /// whatever accumulated since the last boundary, so the slice sum
    /// matches the final snapshot exactly.
    pub fn finish(&mut self, now: u64, final_snapshot: &Snapshot) {
        self.record(now, final_snapshot);
    }

    /// The slices cut so far.
    pub fn slices(&self) -> &[TimelineSlice] {
        &self.slices
    }

    /// Boundaries folded into the tail slice after the bound was hit.
    pub fn dropped_boundaries(&self) -> u64 {
        self.dropped_boundaries
    }

    /// Merge every slice back into one snapshot. After
    /// [`TimelineSink::finish`] this equals the final snapshot
    /// byte-for-byte.
    pub fn resum(&self) -> Snapshot {
        resum(&self.slices)
    }

    /// Write the timeline as a schema-versioned JSONL stream: header,
    /// one slice per line, summary footer.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_jsonl<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(
            out,
            "{{\"schema\":{SCHEMA_VERSION},\"stream\":\"{TIMELINE_STREAM}\",\"interval\":{}}}",
            self.interval
        )?;
        for slice in &self.slices {
            writeln!(out, "{}", slice.to_json())?;
        }
        writeln!(
            out,
            "{{\"summary\":{{\"slices\":{},\"end_cycle\":{},\"dropped_boundaries\":{}}}}}",
            self.slices.len(),
            self.last_cycle,
            self.dropped_boundaries
        )
    }
}

/// Merge a sequence of slices back into one cumulative snapshot.
pub fn resum(slices: &[TimelineSlice]) -> Snapshot {
    let mut total = Snapshot::new();
    for slice in slices {
        total = total.merge(&slice.counters);
    }
    total
}

/// A parsed timeline stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    /// The producer's slice interval in cycles.
    pub interval: u64,
    /// The slices, in stream order.
    pub slices: Vec<TimelineSlice>,
    /// Final global cycle (from the summary footer).
    pub end_cycle: u64,
    /// Boundaries the producer folded after hitting its slice bound.
    pub dropped_boundaries: u64,
}

impl Timeline {
    /// Parse a timeline produced by [`TimelineSink::write_jsonl`].
    ///
    /// # Errors
    ///
    /// Rejects a missing/foreign header, a malformed slice line, or a
    /// missing summary footer.
    pub fn parse<R: BufRead>(mut input: R) -> Result<Timeline, ReadError> {
        let mut header = String::new();
        if input.read_line(&mut header)? == 0 {
            return Err(ReadError::Schema {
                message: format!(
                    "timeline is empty: expected a header line like \
                     {{\"schema\":1,\"stream\":\"{TIMELINE_STREAM}\",\"interval\":N}}"
                ),
            });
        }
        let value = parse_json(header.trim_end()).map_err(|e| ReadError::Schema {
            message: format!("timeline header line is not valid JSON ({e})"),
        })?;
        check_schema(&value, "timeline header")?;
        match value.get("stream").and_then(JsonValue::as_str) {
            Some(TIMELINE_STREAM) => {}
            Some(other) => {
                return Err(ReadError::Schema {
                    message: format!("stream is \"{other}\", expected \"{TIMELINE_STREAM}\""),
                })
            }
            None => {
                return Err(ReadError::Schema {
                    message: "timeline header has no \"stream\" field".to_string(),
                })
            }
        }
        let interval = value
            .get("interval")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ReadError::Schema {
                message: "timeline header has no integer \"interval\" field".to_string(),
            })?;

        let mut timeline = Timeline {
            interval,
            ..Timeline::default()
        };
        let mut saw_summary = false;
        let mut line_no = 1;
        let mut buf = String::new();
        loop {
            buf.clear();
            if input.read_line(&mut buf)? == 0 {
                break;
            }
            line_no += 1;
            let line = buf.trim();
            if line.is_empty() {
                continue;
            }
            let value = parse_json(line).map_err(|e| ReadError::Parse {
                line: line_no,
                message: format!("not valid JSON ({e})"),
            })?;
            if let Some(summary) = value.get("summary") {
                timeline.end_cycle = summary
                    .get("end_cycle")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| ReadError::Parse {
                        line: line_no,
                        message: "summary has no integer \"end_cycle\"".to_string(),
                    })?;
                timeline.dropped_boundaries = summary
                    .get("dropped_boundaries")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0);
                saw_summary = true;
                continue;
            }
            if saw_summary {
                return Err(ReadError::Parse {
                    line: line_no,
                    message: "slice line after the summary footer".to_string(),
                });
            }
            timeline
                .slices
                .push(parse_slice(&value).map_err(|message| ReadError::Parse {
                    line: line_no,
                    message,
                })?);
        }
        if !saw_summary {
            return Err(ReadError::Schema {
                message: "timeline has no summary footer — the producing run \
                          was interrupted before finish"
                    .to_string(),
            });
        }
        Ok(timeline)
    }

    /// Open and parse a timeline file.
    ///
    /// # Errors
    ///
    /// As [`Timeline::parse`], plus I/O failures opening the file.
    pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Timeline, ReadError> {
        Timeline::parse(BufReader::new(File::open(path)?))
    }

    /// Merge every slice back into the end-of-run snapshot.
    pub fn resum(&self) -> Snapshot {
        resum(&self.slices)
    }

    /// Check structural invariants: indices consecutive from 0, cycle
    /// ranges contiguous and non-decreasing, summary end matching the
    /// last slice.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn verify(&self) -> Result<(), String> {
        let mut cursor = 0u64;
        for (i, slice) in self.slices.iter().enumerate() {
            if slice.index != i as u64 {
                return Err(format!(
                    "slice {} carries index {} — stream reordered or truncated",
                    i, slice.index
                ));
            }
            if slice.start_cycle != cursor {
                return Err(format!(
                    "slice {} starts at cycle {} but the previous slice ended at {}",
                    i, slice.start_cycle, cursor
                ));
            }
            if slice.end_cycle < slice.start_cycle {
                return Err(format!("slice {i} ends before it starts"));
            }
            cursor = slice.end_cycle;
        }
        if cursor != self.end_cycle {
            return Err(format!(
                "summary says the run ended at cycle {} but the last slice ends at {}",
                self.end_cycle, cursor
            ));
        }
        Ok(())
    }
}

fn parse_slice(value: &JsonValue) -> Result<TimelineSlice, String> {
    let u64_field = |key: &str| -> Result<u64, String> {
        value
            .get(key)
            .ok_or_else(|| format!("missing field \"{key}\""))?
            .as_u64()
            .ok_or_else(|| format!("field \"{key}\" is not a u64"))
    };
    let counters = value
        .get("counters")
        .ok_or("slice has no \"counters\" object")?;
    Ok(TimelineSlice {
        index: u64_field("slice")?,
        start_cycle: u64_field("start_cycle")?,
        end_cycle: u64_field("end_cycle")?,
        counters: Snapshot::from_counters(counters)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn slices_telescope_to_the_final_snapshot() {
        let mut reg = MetricsRegistry::new();
        let mut sink = TimelineSink::new(100);
        reg.set("m.cycles", 80);
        reg.set("m.accesses", 3);
        assert!(!sink.due(80));
        reg.add("m.cycles", 70);
        assert!(sink.due(150));
        sink.record(150, &reg.snapshot());
        reg.add("m.cycles", 200);
        reg.add("m.accesses", 9);
        reg.set("m.late_counter", 5);
        sink.record(350, &reg.snapshot());
        reg.add("m.cycles", 30);
        let fin = reg.snapshot();
        sink.finish(380, &fin);

        assert_eq!(sink.slices().len(), 3);
        assert_eq!(sink.slices()[0].start_cycle, 0);
        assert_eq!(sink.slices()[1].cycles(), 200);
        assert_eq!(sink.slices()[1].counters.value("m.late_counter"), 5);
        assert_eq!(
            sink.resum().to_json_versioned(),
            fin.to_json_versioned(),
            "slice deltas must re-sum to the final snapshot byte-for-byte"
        );
    }

    #[test]
    fn overflow_folds_into_the_tail_and_is_counted() {
        let mut reg = MetricsRegistry::new();
        let mut sink = TimelineSink::with_max_slices(10, 2);
        for i in 1..=5u64 {
            reg.add("m.cycles", 10);
            reg.add("m.work", 1);
            sink.record(i * 10, &reg.snapshot());
        }
        let fin = reg.snapshot();
        assert_eq!(sink.slices().len(), 2, "bounded at two slices");
        assert_eq!(sink.dropped_boundaries(), 3);
        assert_eq!(sink.slices()[1].end_cycle, 50, "tail extends its range");
        assert_eq!(sink.resum(), fin, "folding preserves the telescoping sum");
    }

    #[test]
    fn jsonl_round_trips() {
        let mut reg = MetricsRegistry::new();
        let mut sink = TimelineSink::new(100);
        reg.set("hart.0.machine.cycles", 120);
        reg.set("smp.ipis_delivered", 2);
        sink.record(120, &reg.snapshot());
        reg.add("hart.0.machine.cycles", 95);
        sink.finish(215, &reg.snapshot());

        let mut bytes = Vec::new();
        sink.write_jsonl(&mut bytes).unwrap();
        let timeline = Timeline::parse(bytes.as_slice()).expect("parses");
        assert_eq!(timeline.interval, 100);
        assert_eq!(timeline.slices, sink.slices());
        assert_eq!(timeline.end_cycle, 215);
        assert_eq!(timeline.dropped_boundaries, 0);
        timeline.verify().expect("well-formed");
        assert_eq!(
            timeline.resum().to_json_versioned(),
            reg.snapshot().to_json_versioned()
        );
    }

    #[test]
    fn verify_catches_a_truncated_stream() {
        let mut reg = MetricsRegistry::new();
        let mut sink = TimelineSink::new(10);
        reg.set("m.cycles", 10);
        sink.record(10, &reg.snapshot());
        reg.add("m.cycles", 10);
        sink.finish(20, &reg.snapshot());
        let mut bytes = Vec::new();
        sink.write_jsonl(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        // Drop the middle slice line, keep header and footer.
        let truncated: Vec<&str> = text
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, l)| l)
            .collect();
        let timeline = Timeline::parse(truncated.join("\n").as_bytes()).expect("parses");
        assert!(timeline.verify().is_err(), "missing slice must be caught");
    }

    #[test]
    fn missing_footer_is_rejected() {
        let raw = format!(
            "{{\"schema\":{SCHEMA_VERSION},\"stream\":\"{TIMELINE_STREAM}\",\"interval\":5}}\n"
        );
        let err = Timeline::parse(raw.as_bytes()).expect_err("must reject");
        assert!(err.to_string().contains("summary"), "{err}");
    }

    #[test]
    fn foreign_stream_is_rejected() {
        let raw = "{\"schema\":1,\"stream\":\"hpmp-walk-events\"}\n";
        assert!(Timeline::parse(raw.as_bytes()).is_err());
    }
}
