//! Trace sinks: where [`WalkEvent`]s go.
//!
//! The simulator is generic over `S: TraceSink`, and every emission site is
//! guarded by `if S::ENABLED { ... }` with `ENABLED` an associated `const`.
//! With the default [`NullSink`] the guard is a compile-time `false`, the
//! event is never even constructed, and the instrumented machine
//! monomorphizes to exactly the uninstrumented code.

use crate::event::WalkEvent;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A destination for walk events.
pub trait TraceSink {
    /// Whether this sink observes events at all. Emission sites check this
    /// constant before building an event, so a `false` here removes the
    /// instrumentation at compile time.
    const ENABLED: bool = true;

    /// Record one event. Must not influence simulation state.
    fn record(&mut self, event: &WalkEvent);

    /// Flush any buffered output.
    fn flush(&mut self) {}

    /// Events this sink has lost — ring evictions, I/O failures. The
    /// machine exports this as the `machine.trace.dropped` counter so
    /// lossy sampling shows up in snapshots instead of being silent.
    fn dropped(&self) -> u64 {
        0
    }
}

/// A mutable borrow of a sink is itself a sink, so a caller can lend its
/// sink to a machine (or a workload runner that boots one internally) and
/// keep ownership for flushing or inspection afterwards.
impl<S: TraceSink> TraceSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    fn record(&mut self, event: &WalkEvent) {
        (**self).record(event);
    }

    fn flush(&mut self) {
        (**self).flush();
    }

    fn dropped(&self) -> u64 {
        (**self).dropped()
    }
}

/// The zero-cost default sink: compiles to nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &WalkEvent) {}
}

/// A bounded in-memory sink keeping the most recent `capacity` events.
///
/// When full, the oldest event is dropped and counted in
/// [`RingSink::overwritten`]. A zero-capacity ring drops everything.
#[derive(Clone, Debug, Default)]
pub struct RingSink {
    buf: VecDeque<WalkEvent>,
    capacity: usize,
    overwritten: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            overwritten: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &WalkEvent> {
        self.buf.iter()
    }

    /// The most recent event, if any.
    pub fn latest(&self) -> Option<&WalkEvent> {
        self.buf.back()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events were dropped to make room (or because capacity is 0).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Drop all retained events (the overwritten counter is preserved).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &WalkEvent) {
        if self.capacity == 0 {
            self.overwritten += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.overwritten += 1;
        }
        self.buf.push_back(event.clone());
    }

    fn dropped(&self) -> u64 {
        self.overwritten
    }
}

/// A streaming sink writing one JSON object per line (JSONL).
///
/// The first line of the stream is a schema header,
/// `{"schema":1,"stream":"hpmp-walk-events"}`, written at construction;
/// readers ([`crate::TraceReader`]) refuse streams whose header declares a
/// version they do not understand. The header does not count toward
/// [`JsonlSink::written`], which tracks events only.
///
/// Output is buffered by the writer ([`JsonlSink::create`] wraps the file
/// in a [`BufWriter`]) and explicitly flushed when the sink is dropped, so
/// per-event tracing does not issue one small write per [`WalkEvent`] and
/// no tail of events is lost if the owner forgets to flush.
///
/// Interrupted runs leave *parseable* artifacts: the `Drop` flush runs
/// during panic unwinding too, and every record — header included — is
/// pushed to the writer as one `write_all` of a complete
/// newline-terminated line, never as split fragments from this layer. A
/// truncated stream is therefore truncated at a line boundary (modulo the
/// OS cutting a single buffered block, which no userspace writer can
/// prevent) and stays valid JSONL up to the cut.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: Option<W>,
    written: u64,
    io_errors: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) `path` and stream events to it, buffered.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Stream events to an arbitrary writer (emits the schema header line
    /// immediately).
    pub fn new(mut out: W) -> JsonlSink<W> {
        let header = format!(
            "{{\"schema\":{},\"stream\":\"{}\"}}\n",
            crate::SCHEMA_VERSION,
            crate::read::WALK_EVENT_STREAM
        );
        let header_failed = out.write_all(header.as_bytes()).is_err();
        JsonlSink {
            out: Some(out),
            written: 0,
            io_errors: header_failed as u64,
        }
    }

    /// Stream events to `out` *without* the schema header line.
    ///
    /// For writers whose output will be spliced into a stream that already
    /// carries a header — e.g. per-worker trace buffers concatenated in
    /// experiment order by the multi-threaded runner.
    pub fn new_headerless(out: W) -> JsonlSink<W> {
        JsonlSink {
            out: Some(out),
            written: 0,
            io_errors: 0,
        }
    }

    /// Number of events successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Number of events lost to I/O errors (never surfaced to the
    /// simulation — tracing must not perturb it).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        let mut out = self.out.take().expect("writer already taken");
        let _ = out.flush();
        out
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &WalkEvent) {
        let Some(out) = self.out.as_mut() else { return };
        // One write_all per complete line: a panicking or killed run
        // truncates at a line boundary, never mid-record.
        let mut line = event.to_json();
        line.push('\n');
        match out.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(_) => self.io_errors += 1,
        }
    }

    fn flush(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }

    fn dropped(&self) -> u64 {
        self.io_errors
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessOp, PrivLevel, StepKind, TlbOutcome, WalkStep, World};

    fn event(seq: u64) -> WalkEvent {
        WalkEvent {
            seq,
            hart: 0,
            world: World::Host,
            op: AccessOp::Read,
            privilege: PrivLevel::Supervisor,
            va: 0x1000 * seq,
            paddr: Some(0x8000_0000 + seq),
            tlb: TlbOutcome::L1Hit,
            pwc_level: None,
            pmptw: None,
            pipeline_cycles: 1,
            cycles: 3,
            fault: None,
            steps: vec![WalkStep {
                kind: StepKind::Data,
                level: None,
                addr: 0,
                cycles: 2,
            }],
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        // And recording is a no-op that still compiles.
        NullSink.record(&event(0));
    }

    #[test]
    fn ring_sink_overwrites_oldest() {
        let mut ring = RingSink::new(3);
        for seq in 0..5 {
            ring.record(&event(seq));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overwritten(), 2);
        let seqs: Vec<u64> = ring.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest events dropped first");
        assert_eq!(ring.latest().unwrap().seq, 4);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = RingSink::new(0);
        ring.record(&event(0));
        assert!(ring.is_empty());
        assert_eq!(ring.overwritten(), 1);
    }

    #[test]
    fn headerless_sink_emits_no_header() {
        let mut sink = JsonlSink::new_headerless(Vec::new());
        sink.record(&event(5));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "no schema header line");
        assert!(lines[0].contains("\"seq\":5"));
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        use std::cell::Cell;
        use std::rc::Rc;

        struct FlushProbe(Rc<Cell<bool>>);
        impl Write for FlushProbe {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                self.0.set(true);
                Ok(())
            }
        }

        let flushed = Rc::new(Cell::new(false));
        {
            let mut sink = JsonlSink::new(FlushProbe(Rc::clone(&flushed)));
            sink.record(&event(0));
            assert!(!flushed.get(), "no eager flush while the sink is live");
        }
        assert!(flushed.get(), "drop must flush buffered output");
    }

    #[test]
    fn ring_sink_reports_drops_through_the_trait() {
        let mut ring = RingSink::new(1);
        ring.record(&event(0));
        ring.record(&event(1));
        assert_eq!(TraceSink::dropped(&ring), 1);
        assert_eq!(TraceSink::dropped(&NullSink), 0);
    }

    #[test]
    fn panicking_run_leaves_a_parseable_stream() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let bytes = Arc::new(Mutex::new(Vec::new()));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut sink = JsonlSink::new(BufWriter::new(Shared(Arc::clone(&bytes))));
            sink.record(&event(0));
            sink.record(&event(1));
            panic!("simulated mid-run abort");
        }));
        assert!(result.is_err(), "the run must actually panic");
        let text = bytes.lock().unwrap().clone();
        let back = crate::TraceReader::new(text.as_slice())
            .expect("header survives the abort")
            .read_all()
            .expect("stream is truncated-but-valid JSONL");
        assert_eq!(back.len(), 2, "unwind must flush the buffered tail");
    }

    #[test]
    fn jsonl_sink_writes_header_then_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&event(0));
        sink.record(&event(1));
        assert_eq!(sink.written(), 2, "header must not count as an event");
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].contains("\"schema\":1"),
            "header first: {}",
            lines[0]
        );
        assert!(lines[0].contains("hpmp-walk-events"));
        assert!(lines[1].starts_with('{') && lines[1].ends_with('}'));
        assert!(lines[2].contains("\"seq\":1"));
    }
}
