//! A unified metrics registry with hierarchical counter names.
//!
//! Every `*Stats` struct in the workspace exports into a
//! [`MetricsRegistry`] under a dotted prefix (`machine.tlb.l1_hits`,
//! `mem.dram.row_misses`, …). A [`Snapshot`] is an immutable copy that can
//! be diffed against an earlier snapshot (`delta`), merged with a snapshot
//! from another machine (`merge`), and exported as nested JSON.

use crate::json::{parse_json, JsonValue};
use crate::read::{check_schema, ReadError};
use crate::{json_escape, SCHEMA_VERSION};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// A handle to one interned counter in a [`MetricsRegistry`].
///
/// Handles are resolved from names once, at wiring time; afterwards every
/// update through the handle is a plain `Vec<u64>` index bump with no
/// hashing, comparison, or allocation. A handle is only meaningful for the
/// registry that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// A mutable bag of named counters.
///
/// Counter names are interned: [`MetricsRegistry::counter`] resolves a
/// dotted name to a [`CounterId`] exactly once, and the hot-path updates
/// ([`MetricsRegistry::bump`] / [`MetricsRegistry::store`]) index a flat
/// `Vec<u64>`. String names are only materialized again when a
/// [`Snapshot`] is taken. The string-keyed `set`/`add`/`value` methods
/// remain for cold paths and intern on first use.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    names: Vec<String>,
    index: HashMap<String, u32>,
    values: Vec<u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Intern `name`, returning a stable handle for hot-path updates.
    ///
    /// Interning an already-known name returns the existing handle (and
    /// leaves its value untouched); a new name starts at zero.
    pub fn counter(&mut self, name: impl Into<String>) -> CounterId {
        let name = name.into();
        if let Some(&id) = self.index.get(&name) {
            return CounterId(id);
        }
        let id = u32::try_from(self.names.len()).expect("too many counters");
        self.index.insert(name.clone(), id);
        self.names.push(name);
        self.values.push(0);
        CounterId(id)
    }

    /// Add `delta` to the counter behind `id`.
    #[inline]
    pub fn bump(&mut self, id: CounterId, delta: u64) {
        self.values[id.0 as usize] += delta;
    }

    /// Set the counter behind `id` to `value`.
    #[inline]
    pub fn store(&mut self, id: CounterId, value: u64) {
        self.values[id.0 as usize] = value;
    }

    /// Current value of the counter behind `id`.
    #[inline]
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Set `name` to `value`, creating it if needed.
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        let id = self.counter(name);
        self.store(id, value);
    }

    /// Add `delta` to `name`, creating it at zero if needed.
    pub fn add(&mut self, name: impl Into<String>, delta: u64) {
        let id = self.counter(name);
        self.bump(id, delta);
    }

    /// Current value of `name` (0 when absent).
    pub fn value(&self, name: &str) -> u64 {
        match self.index.get(name) {
            Some(&id) => self.values[id as usize],
            None => 0,
        }
    }

    /// Number of interned counters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no counters have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// A private arena sized for this registry's current counters, all
    /// zero. Threads bump the arena through the same [`CounterId`]s and
    /// the owner folds it back in with
    /// [`MetricsRegistry::absorb_arena`] at a quiesce point.
    pub fn arena(&self) -> CounterArena {
        CounterArena {
            values: vec![0; self.values.len()],
        }
    }

    /// Adds an arena's accumulated deltas into this registry index-wise
    /// and clears the arena for reuse. The arena must have been created
    /// by [`MetricsRegistry::arena`] on this registry (counters interned
    /// since then are fine — the arena simply has no slot for them).
    ///
    /// # Panics
    ///
    /// Panics if the arena has more slots than the registry has counters.
    pub fn absorb_arena(&mut self, arena: &mut CounterArena) {
        assert!(
            arena.values.len() <= self.values.len(),
            "arena from a different (larger) registry"
        );
        for (slot, delta) in self.values.iter_mut().zip(&mut arena.values) {
            *slot += std::mem::take(delta);
        }
    }

    /// Freeze the current state into an immutable snapshot. This is the
    /// point where counter names are materialized (sorted) again.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            values: self
                .names
                .iter()
                .zip(&self.values)
                .map(|(name, &value)| (name.clone(), value))
                .collect(),
        }
    }
}

/// A thread-private accumulation buffer over a registry's interned
/// counters: a bare `Vec<u64>` bumped through [`CounterId`]s with no
/// locking, merged back into the owning [`MetricsRegistry`] at quiesce
/// points. This is how the threaded SMP backend lets every hart count
/// into shared (`hart.<i>.*`) counters without contending on the shared
/// registry: counter addition is commutative, so absorbing per-hart
/// arenas in any order reproduces the serial totals exactly.
#[derive(Clone, Debug, Default)]
pub struct CounterArena {
    values: Vec<u64>,
}

impl CounterArena {
    /// Add `delta` to the arena slot behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was interned after this arena was created.
    #[inline]
    pub fn bump(&mut self, id: CounterId, delta: u64) {
        self.values[id.0 as usize] += delta;
    }

    /// Current accumulated value behind `id` (for tests/inspection).
    #[inline]
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Whether every slot is zero (nothing pending absorption).
    pub fn is_clear(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }
}

/// An immutable, diffable, mergeable copy of a registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    values: BTreeMap<String, u64>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// Value of `name`, 0 when absent.
    pub fn value(&self, name: &str) -> u64 {
        self.get(name).unwrap_or(0)
    }

    /// Iterate `(name, value)` pairs in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Counter-wise `self - earlier` (saturating; keys are unioned, so a
    /// counter absent from `earlier` contributes its full value).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = BTreeMap::new();
        for (k, &v) in &self.values {
            out.insert(k.clone(), v.saturating_sub(earlier.value(k)));
        }
        for k in earlier.values.keys() {
            out.entry(k.clone()).or_insert(0);
        }
        Snapshot { values: out }
    }

    /// Counter-wise sum of `self` and `other` (e.g. across machines).
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.values.clone();
        for (k, &v) in &other.values {
            *out.entry(k.clone()).or_insert(0) += v;
        }
        Snapshot { values: out }
    }

    /// Sum of every counter matching `prefix.` (dotted-subtree total).
    ///
    /// Walks only the contiguous key range that can match — no dotted
    /// prefix string is rebuilt and nothing is allocated per call.
    pub fn subtree_total(&self, prefix: &str) -> u64 {
        use std::ops::Bound;
        self.values
            .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter(|(k, _)| k.len() == prefix.len() || k.as_bytes()[prefix.len()] == b'.')
            .map(|(_, &v)| v)
            .sum()
    }

    /// Export as nested JSON: dotted names become nested objects. A name
    /// that is both a leaf and an interior node renders its leaf value
    /// under `"_total"`.
    pub fn to_json(&self) -> String {
        #[derive(Default)]
        struct Node {
            value: Option<u64>,
            children: BTreeMap<String, Node>,
        }

        fn render(node: &Node, out: &mut String) {
            out.push('{');
            let mut first = true;
            if let (Some(v), false) = (node.value, node.children.is_empty()) {
                let _ = write!(out, "\"_total\":{v}");
                first = false;
            }
            for (name, child) in &node.children {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":", json_escape(name));
                if child.children.is_empty() {
                    let _ = write!(out, "{}", child.value.unwrap_or(0));
                } else {
                    render(child, out);
                }
            }
            out.push('}');
        }

        let mut root = Node::default();
        for (name, &value) in &self.values {
            let mut node = &mut root;
            for part in name.split('.') {
                node = node.children.entry(part.to_string()).or_default();
            }
            node.value = Some(value);
        }
        let mut out = String::new();
        render(&root, &mut out);
        out
    }

    /// The `kind` tag of a versioned snapshot document.
    pub const JSON_KIND: &'static str = "hpmp-metrics";

    /// Export as a versioned JSON document:
    /// `{"schema":1,"kind":"hpmp-metrics","counters":{...}}` with the
    /// counters nested as in [`Snapshot::to_json`]. This is what
    /// `--metrics-out` writes and what [`Snapshot::from_json`] reads.
    pub fn to_json_versioned(&self) -> String {
        format!(
            "{{\"schema\":{},\"kind\":\"{}\",\"counters\":{}}}",
            SCHEMA_VERSION,
            Self::JSON_KIND,
            self.to_json()
        )
    }

    /// Parse a versioned snapshot document produced by
    /// [`Snapshot::to_json_versioned`]. Rejects documents with a missing or
    /// unknown `schema` with a clear error, and re-flattens the nested
    /// counter tree back into dotted names (`"_total"` members become the
    /// parent name itself).
    pub fn from_json(text: &str) -> Result<Snapshot, ReadError> {
        let doc = parse_json(text).map_err(|e| ReadError::Schema {
            message: format!("metrics document is not valid JSON ({e})"),
        })?;
        check_schema(&doc, "metrics document")?;
        match doc.get("kind").and_then(JsonValue::as_str) {
            Some(Self::JSON_KIND) => {}
            Some(other) => {
                return Err(ReadError::Schema {
                    message: format!(
                        "document kind is \"{other}\", expected \"{}\"",
                        Self::JSON_KIND
                    ),
                })
            }
            None => {
                return Err(ReadError::Schema {
                    message: "metrics document has no \"kind\" field".to_string(),
                })
            }
        }
        let counters = doc.get("counters").ok_or_else(|| ReadError::Schema {
            message: "metrics document has no \"counters\" object".to_string(),
        })?;
        let mut values = BTreeMap::new();
        flatten_counters(counters, String::new(), &mut values)
            .map_err(|message| ReadError::Parse { line: 1, message })?;
        Ok(Snapshot { values })
    }

    /// Re-flatten a bare nested counter tree (the `"counters"` member of a
    /// versioned metrics document, or of a timeline slice) back into a
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Describes the first non-`u64` leaf encountered.
    pub fn from_counters(counters: &JsonValue) -> Result<Snapshot, String> {
        let mut values = BTreeMap::new();
        flatten_counters(counters, String::new(), &mut values)?;
        Ok(Snapshot { values })
    }
}

/// Re-flatten a nested counter tree into dotted names.
fn flatten_counters(
    value: &JsonValue,
    prefix: String,
    out: &mut BTreeMap<String, u64>,
) -> Result<(), String> {
    match value {
        JsonValue::Object(members) => {
            for (key, child) in members {
                if key == "_total" && !prefix.is_empty() {
                    let v = child
                        .as_u64()
                        .ok_or_else(|| format!("counter \"{prefix}\" _total is not a u64"))?;
                    out.insert(prefix.clone(), v);
                    continue;
                }
                let name = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten_counters(child, name, out)?;
            }
            Ok(())
        }
        _ => {
            let v = value
                .as_u64()
                .ok_or_else(|| format!("counter \"{prefix}\" is not a u64"))?;
            out.insert(prefix, v);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_and_value() {
        let mut reg = MetricsRegistry::new();
        reg.set("machine.accesses", 10);
        reg.add("machine.accesses", 5);
        reg.add("machine.walks", 2);
        assert_eq!(reg.value("machine.accesses"), 15);
        assert_eq!(reg.value("machine.walks"), 2);
        assert_eq!(reg.value("absent"), 0);
    }

    #[test]
    fn interned_counters_bump_and_snapshot() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("machine.walks");
        let b = reg.counter("machine.cycles");
        assert_eq!(reg.counter("machine.walks"), a, "interning is idempotent");
        reg.bump(a, 3);
        reg.bump(a, 4);
        reg.store(b, 100);
        assert_eq!(reg.get(a), 7);
        assert_eq!(reg.value("machine.walks"), 7);
        // The string API shares the same slot as the interned handle.
        reg.add("machine.walks", 1);
        assert_eq!(reg.get(a), 8);
        let snap = reg.snapshot();
        assert_eq!(snap.value("machine.walks"), 8);
        assert_eq!(snap.value("machine.cycles"), 100);
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn arenas_absorb_index_wise_and_clear() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("hart.0.shootdowns");
        let b = reg.counter("hart.0.shootdown_cycles");
        reg.bump(a, 2);
        let mut arena0 = reg.arena();
        let mut arena1 = reg.arena();
        // A counter interned after arena creation must not shift slots.
        let late = reg.counter("smp.late");
        arena0.bump(a, 3);
        arena0.bump(b, 100);
        arena1.bump(a, 5);
        reg.absorb_arena(&mut arena0);
        reg.absorb_arena(&mut arena1);
        assert_eq!(reg.get(a), 10);
        assert_eq!(reg.get(b), 100);
        assert_eq!(reg.get(late), 0);
        assert!(arena0.is_clear() && arena1.is_clear());
        reg.absorb_arena(&mut arena0); // absorbing a clear arena is a no-op
        assert_eq!(reg.get(a), 10);
    }

    #[test]
    fn subtree_total_ignores_sibling_with_prefix_name() {
        let mut reg = MetricsRegistry::new();
        reg.set("tlb", 2);
        reg.set("tlb.l1_hits", 5);
        reg.set("tlbx", 100);
        reg.set("tla", 100);
        assert_eq!(reg.snapshot().subtree_total("tlb"), 7);
    }

    #[test]
    fn delta_is_counterwise_difference() {
        let mut reg = MetricsRegistry::new();
        reg.set("a.x", 10);
        reg.set("a.y", 3);
        let before = reg.snapshot();
        reg.add("a.x", 7);
        reg.set("a.z", 1);
        let after = reg.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.value("a.x"), 7);
        assert_eq!(d.value("a.y"), 0);
        assert_eq!(d.value("a.z"), 1);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = MetricsRegistry::new();
        a.set("m.cycles", 100);
        a.set("m.only_a", 1);
        let mut b = MetricsRegistry::new();
        b.set("m.cycles", 50);
        b.set("m.only_b", 2);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.value("m.cycles"), 150);
        assert_eq!(merged.value("m.only_a"), 1);
        assert_eq!(merged.value("m.only_b"), 2);
    }

    #[test]
    fn subtree_total_sums_the_prefix() {
        let mut reg = MetricsRegistry::new();
        reg.set("tlb.l1_hits", 5);
        reg.set("tlb.l2_hits", 3);
        reg.set("tlbx", 100);
        assert_eq!(reg.snapshot().subtree_total("tlb"), 8);
    }

    #[test]
    fn json_nests_dotted_names() {
        let mut reg = MetricsRegistry::new();
        reg.set("machine.tlb.l1_hits", 4);
        reg.set("machine.tlb.misses", 1);
        reg.set("machine.cycles", 99);
        let json = reg.snapshot().to_json();
        assert_eq!(
            json,
            "{\"machine\":{\"cycles\":99,\"tlb\":{\"l1_hits\":4,\"misses\":1}}}"
        );
    }

    #[test]
    fn json_handles_leaf_and_interior_conflict() {
        let mut reg = MetricsRegistry::new();
        reg.set("refs", 10);
        reg.set("refs.pt", 6);
        let json = reg.snapshot().to_json();
        assert_eq!(json, "{\"refs\":{\"_total\":10,\"pt\":6}}");
    }

    #[test]
    fn versioned_json_round_trips() {
        let mut reg = MetricsRegistry::new();
        reg.set("machine.tlb.l1_hits", 4);
        reg.set("machine.cycles", 99);
        reg.set("refs", 10);
        reg.set("refs.pt", 6);
        reg.set("big", u64::MAX);
        let snap = reg.snapshot();
        let back = Snapshot::from_json(&snap.to_json_versioned()).unwrap();
        assert_eq!(back, snap, "flatten(nest(x)) must be identity");
    }

    #[test]
    fn delta_survives_json_round_trip() {
        // The exact pipeline `hpmp-analyze diff` runs: two snapshots, delta,
        // serialize, parse back.
        let mut reg = MetricsRegistry::new();
        reg.set("m.cycles", 1000);
        reg.set("m.walks", 10);
        let before = reg.snapshot();
        reg.add("m.cycles", 250);
        reg.add("m.walks", 3);
        reg.set("m.new_counter", 7);
        let after = reg.snapshot();
        let d = after.delta(&before);
        let back = Snapshot::from_json(&d.to_json_versioned()).unwrap();
        assert_eq!(back.value("m.cycles"), 250);
        assert_eq!(back.value("m.walks"), 3);
        assert_eq!(back.value("m.new_counter"), 7);
        assert_eq!(back, d);
    }

    #[test]
    fn from_json_rejects_unknown_schema() {
        let err = Snapshot::from_json("{\"schema\":42,\"kind\":\"hpmp-metrics\",\"counters\":{}}")
            .expect_err("must reject");
        assert!(err.to_string().contains("42"), "{err}");
    }

    #[test]
    fn from_json_rejects_missing_schema_and_wrong_kind() {
        assert!(Snapshot::from_json("{\"counters\":{}}").is_err());
        let err = Snapshot::from_json("{\"schema\":1,\"kind\":\"other\",\"counters\":{}}")
            .expect_err("must reject");
        assert!(err.to_string().contains("other"), "{err}");
    }
}
