//! The perf-trajectory report format (`BENCH_<name>.json`).
//!
//! `repro --bench-out` / `hpmpsim --bench-out` emit one [`BenchReport`] per
//! run: the configuration under test, and for every experiment its total
//! cycles, the full flat counter set (walk-reference counts included), and
//! the latency percentiles of every histogram class. `hpmp-analyze gate`
//! compares two such reports and fails the build on regression, so the
//! schema lives here in `hpmp-trace` — the one crate both the writer
//! (`hpmp-bench`) and the reader (`hpmp-analyze`) already depend on — and
//! is versioned like every other artifact ([`crate::SCHEMA_VERSION`]).
//!
//! Counters serialize *flat* (dotted names as literal keys), unlike the
//! human-oriented nested form of [`Snapshot::to_json`]: a stable trajectory
//! format favours trivially diffable key paths over readability.

use crate::hist::LatencyHistogram;
use crate::json::{parse_json, JsonValue};
use crate::metrics::Snapshot;
use crate::read::{check_schema, ReadError};
use crate::{json_escape, SCHEMA_VERSION};
use std::collections::BTreeMap;

/// The `kind` tag of a bench-report document.
pub const BENCH_REPORT_KIND: &str = "hpmp-bench-report";

/// Latency percentiles of one histogram class, in cycles (bucket upper
/// bounds, like [`LatencyHistogram::percentile`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Percentiles {
    /// Compute from a histogram (`None` when it is empty).
    pub fn of(h: &LatencyHistogram) -> Option<Percentiles> {
        Some(Percentiles {
            p50: h.percentile(50.0)?,
            p90: h.percentile(90.0)?,
            p99: h.percentile(99.0)?,
        })
    }
}

/// Rebuild every latency histogram a snapshot's bucket counters describe.
///
/// [`crate::LatencyHistograms::export`] writes, per class,
/// `<base>.count`, `<base>.cycles` and `<base>.bucket.<lo>` where `<base>`
/// is `<prefix>.<class_label>`. This scans for the `.bucket.` pattern,
/// groups by base, and reconstructs each histogram with
/// [`LatencyHistogram::from_bucket_counts`] — so percentiles can be
/// recomputed from any snapshot, including merged or delta'd ones.
pub fn histograms_in_snapshot(snap: &Snapshot) -> BTreeMap<String, LatencyHistogram> {
    let mut buckets: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    for (name, value) in snap.iter() {
        if value == 0 {
            continue;
        }
        if let Some(pos) = name.rfind(".bucket.") {
            let base = &name[..pos];
            let Ok(lo) = name[pos + ".bucket.".len()..].parse::<u64>() else {
                continue;
            };
            buckets
                .entry(base.to_string())
                .or_default()
                .push((lo, value));
        }
    }
    buckets
        .into_iter()
        .map(|(base, pairs)| {
            let sum = snap.value(&format!("{base}.cycles"));
            (base, LatencyHistogram::from_bucket_counts(pairs, sum))
        })
        .collect()
}

/// Sum of every page-walk counter in a snapshot: the bare `machine.walks`
/// of a single-hart run, or the `hart.<i>.machine.walks` copies of an SMP
/// merge (never both — merged SMP snapshots carry only the per-hart
/// names).
pub fn walks_in_snapshot(snap: &Snapshot) -> u64 {
    snap.iter()
        .filter(|(name, _)| {
            *name == "machine.walks"
                || (name.starts_with("hart.") && name.ends_with(".machine.walks"))
        })
        .map(|(_, v)| v)
        .sum()
}

/// One experiment's row in a bench report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentRecord {
    /// Experiment name (e.g. `fig2`, `svsweep`).
    pub name: String,
    /// Total cycles attributed to the experiment.
    pub cycles: u64,
    /// Page walks the experiment performed, summed over harts.
    /// Simulated-clock data: deterministic for a given seed.
    pub walks: u64,
    /// Simulated page walks retired per host-clock second while the
    /// experiment ran, or 0 when unmeasured. Host-clock data: the
    /// deterministic harness paths (`repro`/`hpmpsim` `--bench-out`)
    /// never set it, only wall-clock contexts (the criterion shim, host
    /// profiles) do, so byte-compared artifacts stay reproducible. Zero
    /// is omitted from the serialized form.
    pub walks_per_sec: u64,
    /// Latency percentiles per histogram base name (e.g.
    /// `machine.latency.read_walk`), derived from the bucket counters at
    /// record time.
    pub percentiles: BTreeMap<String, Percentiles>,
    /// The full flat counter set (dotted names), walk-reference counts
    /// included.
    pub counters: Snapshot,
}

impl ExperimentRecord {
    /// Build a record from an experiment's merged snapshot, deriving the
    /// percentile table from the snapshot's histogram bucket counters and
    /// the walk total from its `machine.walks` counters.
    pub fn from_snapshot(name: impl Into<String>, cycles: u64, counters: Snapshot) -> Self {
        let percentiles = histograms_in_snapshot(&counters)
            .iter()
            .filter_map(|(base, h)| Some((base.clone(), Percentiles::of(h)?)))
            .collect();
        ExperimentRecord {
            name: name.into(),
            cycles,
            walks: walks_in_snapshot(&counters),
            walks_per_sec: 0,
            percentiles,
            counters,
        }
    }

    fn to_json(&self) -> String {
        let percentiles: Vec<String> = self
            .percentiles
            .iter()
            .map(|(base, p)| {
                format!(
                    "\"{}\":{{\"p50\":{},\"p90\":{},\"p99\":{}}}",
                    json_escape(base),
                    p.p50,
                    p.p90,
                    p.p99
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(name, value)| format!("\"{}\":{}", json_escape(name), value))
            .collect();
        let walks_per_sec = if self.walks_per_sec > 0 {
            format!(",\"walks_per_sec\":{}", self.walks_per_sec)
        } else {
            String::new()
        };
        format!(
            "{{\"name\":\"{}\",\"cycles\":{},\"walks\":{}{},\"percentiles\":{{{}}},\
             \"counters\":{{{}}}}}",
            json_escape(&self.name),
            self.cycles,
            self.walks,
            walks_per_sec,
            percentiles.join(","),
            counters.join(",")
        )
    }

    fn from_value(value: &JsonValue) -> Result<ExperimentRecord, String> {
        let name = value
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("experiment has no \"name\"")?
            .to_string();
        let cycles = value
            .get("cycles")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("experiment \"{name}\" has no u64 \"cycles\""))?;
        let mut percentiles = BTreeMap::new();
        if let Some(members) = value.get("percentiles").and_then(JsonValue::as_object) {
            for (base, p) in members {
                let get = |k: &str| {
                    p.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("percentile \"{base}\" has no u64 \"{k}\""))
                };
                percentiles.insert(
                    base.clone(),
                    Percentiles {
                        p50: get("p50")?,
                        p90: get("p90")?,
                        p99: get("p99")?,
                    },
                );
            }
        }
        let mut reg = crate::MetricsRegistry::new();
        let members = value
            .get("counters")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| format!("experiment \"{name}\" has no \"counters\" object"))?;
        for (counter, v) in members {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("counter \"{counter}\" is not a u64"))?;
            reg.set(counter.clone(), v);
        }
        let counters = reg.snapshot();
        // Reports written before the walks field existed derive it from
        // their counters; the field wins when present.
        let walks = value
            .get("walks")
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| walks_in_snapshot(&counters));
        let walks_per_sec = value
            .get("walks_per_sec")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        Ok(ExperimentRecord {
            name,
            cycles,
            walks,
            walks_per_sec,
            percentiles,
            counters,
        })
    }
}

/// A complete perf-trajectory report: config plus per-experiment records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BenchReport {
    /// Which harness produced the report (e.g. `repro`, `hpmpsim`).
    pub name: String,
    /// Free-form configuration keys (scheme, translation mode, flags, …).
    pub config: BTreeMap<String, String>,
    /// One record per experiment, in run order.
    pub experiments: Vec<ExperimentRecord>,
}

impl BenchReport {
    /// An empty report for harness `name`.
    pub fn new(name: impl Into<String>) -> BenchReport {
        BenchReport {
            name: name.into(),
            config: BTreeMap::new(),
            experiments: Vec::new(),
        }
    }

    /// Record a configuration key.
    pub fn set_config(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.config.insert(key.into(), value.into());
    }

    /// Append one experiment record.
    pub fn push(&mut self, record: ExperimentRecord) {
        self.experiments.push(record);
    }

    /// Find an experiment by name.
    pub fn experiment(&self, name: &str) -> Option<&ExperimentRecord> {
        self.experiments.iter().find(|e| e.name == name)
    }

    /// Serialize as the versioned on-disk document.
    pub fn to_json(&self) -> String {
        let config: Vec<String> = self
            .config
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect();
        let experiments: Vec<String> = self
            .experiments
            .iter()
            .map(ExperimentRecord::to_json)
            .collect();
        format!(
            "{{\"schema\":{},\"kind\":\"{}\",\"name\":\"{}\",\"config\":{{{}}},\
             \"experiments\":[{}]}}",
            SCHEMA_VERSION,
            BENCH_REPORT_KIND,
            json_escape(&self.name),
            config.join(","),
            experiments.join(",")
        )
    }

    /// Parse a versioned bench-report document; rejects missing/unknown
    /// schema versions and wrong `kind` tags with clear errors.
    pub fn from_json(text: &str) -> Result<BenchReport, ReadError> {
        let doc = parse_json(text).map_err(|e| ReadError::Schema {
            message: format!("bench report is not valid JSON ({e})"),
        })?;
        check_schema(&doc, "bench report")?;
        match doc.get("kind").and_then(JsonValue::as_str) {
            Some(BENCH_REPORT_KIND) => {}
            Some(other) => {
                return Err(ReadError::Schema {
                    message: format!(
                        "document kind is \"{other}\", expected \"{BENCH_REPORT_KIND}\""
                    ),
                })
            }
            None => {
                return Err(ReadError::Schema {
                    message: "bench report has no \"kind\" field".to_string(),
                })
            }
        }
        let name = doc
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        let mut config = BTreeMap::new();
        if let Some(members) = doc.get("config").and_then(JsonValue::as_object) {
            for (k, v) in members {
                config.insert(k.clone(), v.as_str().unwrap_or("").to_string());
            }
        }
        let experiments = doc
            .get("experiments")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ReadError::Schema {
                message: "bench report has no \"experiments\" array".to_string(),
            })?
            .iter()
            .map(ExperimentRecord::from_value)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|message| ReadError::Parse { line: 1, message })?;
        Ok(BenchReport {
            name,
            config,
            experiments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{AccessClass, LatencyHistograms};
    use crate::MetricsRegistry;

    fn sample_snapshot() -> Snapshot {
        let mut hists = LatencyHistograms::new();
        for _ in 0..90 {
            hists.record(AccessClass::ReadTlbHit, 3);
        }
        for _ in 0..10 {
            hists.record(AccessClass::ReadWalk, 100);
        }
        let mut reg = MetricsRegistry::new();
        reg.set("machine.cycles", 1270);
        reg.set("machine.refs.pt_reads", 30);
        hists.export(&mut reg, "machine.latency");
        reg.snapshot()
    }

    #[test]
    fn report_round_trips() {
        let mut report = BenchReport::new("repro");
        report.set_config("scheme", "hpmp");
        report.set_config("mode", "sv39");
        report.push(ExperimentRecord::from_snapshot(
            "fig2",
            1270,
            sample_snapshot(),
        ));
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn from_snapshot_derives_percentiles() {
        let rec = ExperimentRecord::from_snapshot("fig2", 1270, sample_snapshot());
        let hit = rec.percentiles.get("machine.latency.read_tlb_hit").unwrap();
        assert_eq!(hit.p50, 4, "90 samples of 3 cycles -> bucket [2,4)");
        let walk = rec.percentiles.get("machine.latency.read_walk").unwrap();
        assert_eq!(walk.p99, 128, "10 samples of 100 cycles -> bucket [64,128)");
    }

    #[test]
    fn histograms_in_snapshot_reconstructs_counts() {
        let hists = histograms_in_snapshot(&sample_snapshot());
        let h = hists.get("machine.latency.read_walk").unwrap();
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 1000);
        assert_eq!(h.percentile(50.0), Some(128));
    }

    #[test]
    fn walks_sum_over_harts_or_bare() {
        let mut reg = MetricsRegistry::new();
        reg.set("machine.walks", 7);
        assert_eq!(walks_in_snapshot(&reg.snapshot()), 7);

        let mut reg = MetricsRegistry::new();
        reg.set("hart.0.machine.walks", 3);
        reg.set("hart.1.machine.walks", 4);
        reg.set("hart.1.machine.cycles", 999); // not a walk counter
        assert_eq!(walks_in_snapshot(&reg.snapshot()), 7);
    }

    #[test]
    fn record_carries_walks_and_round_trips() {
        let mut reg = MetricsRegistry::new();
        reg.set("machine.cycles", 1270);
        reg.set("machine.walks", 42);
        let rec = ExperimentRecord::from_snapshot("fig2", 1270, reg.snapshot());
        assert_eq!(rec.walks, 42);
        assert_eq!(rec.walks_per_sec, 0, "simulated paths never set it");

        let mut report = BenchReport::new("repro");
        report.push(rec);
        let json = report.to_json();
        assert!(json.contains("\"walks\":42"), "{json}");
        assert!(
            !json.contains("walks_per_sec"),
            "zero walks/sec must be omitted so deterministic artifacts \
             never carry host-clock fields: {json}"
        );
        assert_eq!(BenchReport::from_json(&json).unwrap(), report);
    }

    #[test]
    fn walks_per_sec_survives_round_trip_when_set() {
        let mut rec = ExperimentRecord::from_snapshot("hot", 10, Snapshot::new());
        rec.walks = 1000;
        rec.walks_per_sec = 250_000;
        let mut report = BenchReport::new("hotpath");
        report.push(rec);
        let json = report.to_json();
        assert!(json.contains("\"walks_per_sec\":250000"), "{json}");
        assert_eq!(BenchReport::from_json(&json).unwrap(), report);
    }

    #[test]
    fn walks_is_derived_for_pre_walks_reports() {
        // A report serialized before the walks field existed: strip it
        // from the wire form and check the reader falls back to the
        // counters.
        let mut reg = MetricsRegistry::new();
        reg.set("hart.0.machine.walks", 5);
        reg.set("hart.2.machine.walks", 6);
        let mut report = BenchReport::new("repro");
        report.push(ExperimentRecord::from_snapshot("fig2", 1, reg.snapshot()));
        let legacy = report.to_json().replacen("\"walks\":11,", "", 1);
        let back = BenchReport::from_json(&legacy).unwrap();
        assert_eq!(back.experiments[0].walks, 11);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut report = BenchReport::new("repro");
        report.push(ExperimentRecord::from_snapshot("fig2", 1, Snapshot::new()));
        let doctored = report.to_json().replacen("\"schema\":1", "\"schema\":7", 1);
        let err = BenchReport::from_json(&doctored).expect_err("must reject");
        assert!(err.to_string().contains('7'), "{err}");
    }

    #[test]
    fn experiment_lookup_by_name() {
        let mut report = BenchReport::new("repro");
        report.push(ExperimentRecord::from_snapshot("a", 1, Snapshot::new()));
        report.push(ExperimentRecord::from_snapshot("b", 2, Snapshot::new()));
        assert_eq!(report.experiment("b").unwrap().cycles, 2);
        assert!(report.experiment("zzz").is_none());
    }
}
