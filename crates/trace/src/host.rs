//! Wall-clock self-profiling of the *simulator*, quarantined from the
//! simulated clock.
//!
//! Everything else in this crate measures the machine being simulated;
//! this module measures the process doing the simulating: how much host
//! time each phase (boot, run, snapshot) took, how long each experiment
//! ran on the wall clock, how many simulated page walks were retired per
//! host second (the throughput headline ROADMAP item 2 tracks), and —
//! behind the `count-allocs` feature — how many heap allocations the run
//! performed.
//!
//! # The quarantine rule
//!
//! Host-clock numbers are nondeterministic by nature, so they must never
//! leak into a simulated artifact: traces, metrics snapshots, timelines,
//! spans and `--bench-out` reports are byte-identical across `--jobs`
//! levels, machines and reruns, and stay that way. A [`HostProfile`] is
//! therefore written to its *own* artifact (`--host-profile-out`), with
//! its own `kind` tag, and the harnesses print the walks/sec headline to
//! stderr only. Determinism tests byte-compare every simulated artifact
//! with profiling on vs. off to prove the quarantine holds.

use crate::json::{parse_json, JsonValue};
use crate::read::{check_schema, ReadError};
use crate::{json_escape, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The `kind` tag of a host-profile document.
pub const HOST_PROFILE_KIND: &str = "hpmp-host-profile";

/// Heap-allocation counts recorded by the counting global allocator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of allocations performed so far.
    pub allocations: u64,
    /// Total bytes requested so far.
    pub bytes: u64,
}

#[cfg(feature = "count-allocs")]
mod counting {
    //! A counting wrapper around the system allocator, registered as the
    //! global allocator only when the `count-allocs` feature is on so the
    //! default build pays nothing.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    pub(super) static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    pub(super) static BYTES: AtomicU64 = AtomicU64::new(0);

    struct CountingAllocator;

    // SAFETY: defers every allocation to `System` unchanged; the counters
    // are monotonic atomics with no allocation of their own.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Relaxed);
            BYTES.fetch_add(layout.size() as u64, Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;
}

/// Allocation counts since process start, or `None` when the binary was
/// built without the `count-allocs` feature.
pub fn alloc_stats() -> Option<AllocStats> {
    #[cfg(feature = "count-allocs")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        Some(AllocStats {
            allocations: counting::ALLOCATIONS.load(Relaxed),
            bytes: counting::BYTES.load(Relaxed),
        })
    }
    #[cfg(not(feature = "count-allocs"))]
    None
}

/// One experiment's wall-clock row in a host profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HostExperiment {
    /// Experiment name (e.g. `fig2`, `tenancy`).
    pub name: String,
    /// Host nanoseconds the experiment took.
    pub wall_ns: u64,
    /// Simulated page walks it retired (deterministic, from the
    /// experiment's snapshot).
    pub walks: u64,
}

impl HostExperiment {
    /// Simulated walks per host second, rounded down (0 when unmeasured
    /// or instantaneous).
    pub fn walks_per_sec(&self) -> u64 {
        walks_per_sec(self.walks, self.wall_ns)
    }
}

/// Walks-per-host-second from a walk count and a wall-clock duration.
pub fn walks_per_sec(walks: u64, wall_ns: u64) -> u64 {
    if wall_ns == 0 {
        return 0;
    }
    u64::try_from((walks as u128 * 1_000_000_000) / wall_ns as u128).unwrap_or(u64::MAX)
}

/// A finished wall-clock profile of one harness run: the host-clock twin
/// of a [`crate::BenchReport`], written to a separate artifact so the
/// deterministic ones never carry host time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HostProfile {
    /// Which harness produced the profile (e.g. `repro`, `hpmpsim`).
    pub name: String,
    /// Host nanoseconds per named phase (`boot`, `run`, `snapshot`, …),
    /// in first-seen order of no significance (serialized sorted).
    pub phases: BTreeMap<String, u64>,
    /// Per-experiment wall times and walk counts, in run order.
    pub experiments: Vec<HostExperiment>,
    /// Allocation counts, when the binary was built with `count-allocs`.
    pub alloc: Option<AllocStats>,
}

impl HostProfile {
    /// Total host nanoseconds across all phases.
    pub fn total_wall_ns(&self) -> u64 {
        self.phases.values().sum()
    }

    /// Total simulated walks across all experiments.
    pub fn total_walks(&self) -> u64 {
        self.experiments.iter().map(|e| e.walks).sum()
    }

    /// The headline: total simulated walks per host second over the
    /// experiments' summed wall time (phases like boot and snapshot are
    /// excluded — they retire no walks).
    pub fn walks_per_sec(&self) -> u64 {
        let wall: u64 = self.experiments.iter().map(|e| e.wall_ns).sum();
        walks_per_sec(self.total_walks(), wall)
    }

    /// The one-line human headline the harnesses print to stderr.
    pub fn headline(&self) -> String {
        let wall: u64 = self.experiments.iter().map(|e| e.wall_ns).sum();
        format!(
            "{}: {} walks in {:.3} s host time -> {} walks/sec",
            self.name,
            self.total_walks(),
            wall as f64 / 1e9,
            self.walks_per_sec()
        )
    }

    /// Serialize as the versioned on-disk document.
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|(name, ns)| format!("\"{}\":{}", json_escape(name), ns))
            .collect();
        let experiments: Vec<String> = self
            .experiments
            .iter()
            .map(|e| {
                format!(
                    "{{\"name\":\"{}\",\"wall_ns\":{},\"walks\":{},\"walks_per_sec\":{}}}",
                    json_escape(&e.name),
                    e.wall_ns,
                    e.walks,
                    e.walks_per_sec()
                )
            })
            .collect();
        let alloc = match &self.alloc {
            Some(a) => format!(
                ",\"alloc\":{{\"allocations\":{},\"bytes\":{}}}",
                a.allocations, a.bytes
            ),
            None => String::new(),
        };
        format!(
            "{{\"schema\":{},\"kind\":\"{}\",\"name\":\"{}\",\"walks\":{},\
             \"walks_per_sec\":{},\"phases\":{{{}}},\"experiments\":[{}]{}}}",
            SCHEMA_VERSION,
            HOST_PROFILE_KIND,
            json_escape(&self.name),
            self.total_walks(),
            self.walks_per_sec(),
            phases.join(","),
            experiments.join(","),
            alloc
        )
    }

    /// Parse a versioned host-profile document; rejects missing/unknown
    /// schema versions and wrong `kind` tags.
    pub fn from_json(text: &str) -> Result<HostProfile, ReadError> {
        let doc = parse_json(text).map_err(|e| ReadError::Schema {
            message: format!("host profile is not valid JSON ({e})"),
        })?;
        check_schema(&doc, "host profile")?;
        match doc.get("kind").and_then(JsonValue::as_str) {
            Some(HOST_PROFILE_KIND) => {}
            Some(other) => {
                return Err(ReadError::Schema {
                    message: format!(
                        "document kind is \"{other}\", expected \"{HOST_PROFILE_KIND}\""
                    ),
                })
            }
            None => {
                return Err(ReadError::Schema {
                    message: "host profile has no \"kind\" field".to_string(),
                })
            }
        }
        let name = doc
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        let mut phases = BTreeMap::new();
        if let Some(members) = doc.get("phases").and_then(JsonValue::as_object) {
            for (phase, ns) in members {
                let ns = ns.as_u64().ok_or_else(|| ReadError::Parse {
                    line: 1,
                    message: format!("phase \"{phase}\" is not a u64"),
                })?;
                phases.insert(phase.clone(), ns);
            }
        }
        let mut experiments = Vec::new();
        if let Some(rows) = doc.get("experiments").and_then(JsonValue::as_array) {
            for row in rows {
                let name = row
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ReadError::Parse {
                        line: 1,
                        message: "host experiment has no \"name\"".to_string(),
                    })?
                    .to_string();
                let field = |k: &str| {
                    row.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| ReadError::Parse {
                            line: 1,
                            message: format!("host experiment \"{name}\" has no u64 \"{k}\""),
                        })
                };
                experiments.push(HostExperiment {
                    wall_ns: field("wall_ns")?,
                    walks: field("walks")?,
                    name,
                });
            }
        }
        let alloc = doc
            .get("alloc")
            .filter(|a| !a.is_null())
            .map(|a| -> Result<AllocStats, ReadError> {
                let field = |k: &str| {
                    a.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| ReadError::Parse {
                            line: 1,
                            message: format!("alloc stats have no u64 \"{k}\""),
                        })
                };
                Ok(AllocStats {
                    allocations: field("allocations")?,
                    bytes: field("bytes")?,
                })
            })
            .transpose()?;
        Ok(HostProfile {
            name,
            phases,
            experiments,
            alloc,
        })
    }
}

/// Accumulates a [`HostProfile`] while a harness runs: named phase timers
/// plus per-experiment wall clocks. All measurement is host-clock
/// (`Instant`); nothing here may ever feed back into simulated state.
#[derive(Debug)]
pub struct HostProfiler {
    profile: HostProfile,
    phase: Option<(String, Instant)>,
}

impl HostProfiler {
    /// A fresh profiler for harness `name`, with no phase running.
    pub fn new(name: impl Into<String>) -> HostProfiler {
        HostProfiler {
            profile: HostProfile {
                name: name.into(),
                ..HostProfile::default()
            },
            phase: None,
        }
    }

    /// Start (or switch to) the named phase, closing any phase currently
    /// running. Re-entering a name accumulates into the same row.
    pub fn begin_phase(&mut self, name: impl Into<String>) {
        self.end_phase();
        self.phase = Some((name.into(), Instant::now()));
    }

    /// Close the running phase, if any, charging its elapsed time.
    pub fn end_phase(&mut self) {
        if let Some((name, started)) = self.phase.take() {
            *self.profile.phases.entry(name).or_insert(0) += duration_ns(started.elapsed());
        }
    }

    /// Record one experiment's measured wall time and deterministic walk
    /// count.
    pub fn record_experiment(&mut self, name: impl Into<String>, wall: Duration, walks: u64) {
        self.profile.experiments.push(HostExperiment {
            name: name.into(),
            wall_ns: duration_ns(wall),
            walks,
        });
    }

    /// Close any running phase, capture allocation stats (when compiled
    /// in), and return the finished profile.
    pub fn finish(mut self) -> HostProfile {
        self.end_phase();
        self.profile.alloc = alloc_stats();
        self.profile
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HostProfile {
        HostProfile {
            name: "hpmpsim".to_string(),
            phases: [("boot".to_string(), 1_000), ("run".to_string(), 4_000_000)]
                .into_iter()
                .collect(),
            experiments: vec![
                HostExperiment {
                    name: "tenancy".to_string(),
                    wall_ns: 2_000_000,
                    walks: 5_000,
                },
                HostExperiment {
                    name: "lmbench".to_string(),
                    wall_ns: 2_000_000,
                    walks: 3_000,
                },
            ],
            alloc: None,
        }
    }

    #[test]
    fn walks_per_sec_arithmetic() {
        assert_eq!(walks_per_sec(1_000, 1_000_000_000), 1_000);
        assert_eq!(walks_per_sec(1, 2_000_000_000), 0, "rounds down");
        assert_eq!(walks_per_sec(10, 0), 0, "no division by zero");
        // Absurd rates saturate instead of wrapping: 10^12 walks in 1 ns
        // is 10^21/s, beyond u64.
        assert_eq!(walks_per_sec(1_000_000_000_000, 1), u64::MAX);
    }

    #[test]
    fn profile_round_trips() {
        let p = sample();
        assert_eq!(p.total_walks(), 8_000);
        assert_eq!(p.walks_per_sec(), 2_000_000, "8000 walks / 4 ms");
        let back = HostProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn alloc_stats_round_trip_when_present() {
        let mut p = sample();
        p.alloc = Some(AllocStats {
            allocations: 123,
            bytes: 4_567,
        });
        let json = p.to_json();
        assert!(json.contains("\"allocations\":123"), "{json}");
        assert_eq!(HostProfile::from_json(&json).unwrap(), p);
    }

    #[test]
    fn unknown_schema_is_rejected_with_version() {
        let doctored = sample()
            .to_json()
            .replacen("\"schema\":1", "\"schema\":9", 1);
        let err = HostProfile::from_json(&doctored).expect_err("must reject");
        assert!(err.to_string().contains('9'), "{err}");
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let doctored = sample()
            .to_json()
            .replacen(HOST_PROFILE_KIND, "hpmp-bench-report", 1);
        let err = HostProfile::from_json(&doctored).expect_err("must reject");
        assert!(err.to_string().contains("hpmp-bench-report"), "{err}");
    }

    #[test]
    fn profiler_accumulates_phases_and_experiments() {
        let mut prof = HostProfiler::new("test");
        prof.begin_phase("boot");
        prof.begin_phase("run"); // implicitly ends boot
        prof.record_experiment("fig2", Duration::from_millis(2), 1_000);
        prof.begin_phase("boot"); // re-entry accumulates
        let profile = prof.finish();
        assert_eq!(profile.phases.len(), 2);
        assert!(profile.phases.contains_key("boot"));
        assert!(profile.phases.contains_key("run"));
        assert_eq!(profile.experiments.len(), 1);
        assert_eq!(profile.experiments[0].walks_per_sec(), 500_000);
        assert_eq!(profile.alloc.is_some(), cfg!(feature = "count-allocs"));
        let headline = profile.headline();
        assert!(headline.contains("walks/sec"), "{headline}");
    }
}
