//! A minimal, dependency-free JSON parser for the read side of the trace
//! layer.
//!
//! The workspace builds in a container without a crate registry, so the
//! usual serde stack is unavailable; this module implements just enough of
//! RFC 8259 to parse what the write side ([`crate::WalkEvent::to_json`],
//! [`crate::Snapshot::to_json_versioned`], [`crate::BenchReport::to_json`])
//! emits — objects, arrays, strings with escapes, numbers, booleans, null.
//!
//! Numbers are kept as their raw source text ([`JsonValue::Number`]) so
//! `u64` counters round-trip exactly: cycle counts routinely exceed the
//! 2^53 mantissa of an `f64`, and going through a float would silently
//! corrupt them.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw source text (see module docs).
    Number(String),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are unique; insertion order is not preserved (the
    /// writers in this crate all emit sorted keys anyway).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Member `key` of an object (None for non-objects or absent keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|members| members.get(key))
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// A hex-or-decimal `u64`: accepts a number, or a string like
    /// `"0x8000_0000"` / `"0x80000000"` (the trace writers emit addresses
    /// as `{:#x}` strings to keep them readable).
    pub fn as_u64_lenient(&self) -> Option<u64> {
        match self {
            JsonValue::Number(_) => self.as_u64(),
            JsonValue::String(s) => {
                let s = s.replace('_', "");
                if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    s.parse().ok()
                }
            }
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        Ok(JsonValue::Number(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse_json("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse_json("\"hi\\n\"").unwrap().as_str(), Some("hi\n"));
    }

    #[test]
    fn u64_counters_do_not_lose_precision() {
        let big = u64::MAX;
        let v = parse_json(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a":[1,{"b":"x"},null],"c":{"d":2}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_u64(), Some(2));
        assert!(v.get("a").unwrap().as_array().unwrap()[2].is_null());
    }

    #[test]
    fn hex_strings_parse_leniently() {
        let v = parse_json(r#""0x8000_1000""#).unwrap();
        assert_eq!(v.as_u64_lenient(), Some(0x8000_1000));
        assert_eq!(parse_json("7").unwrap().as_u64_lenient(), Some(7));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
        let err = parse_json("nope").unwrap_err();
        assert!(err.to_string().contains("null"));
    }

    #[test]
    fn unicode_escapes_resolve() {
        assert_eq!(
            parse_json("\"\\u0041\\u00e9\"").unwrap().as_str(),
            Some("Aé")
        );
    }
}
