//! Observability layer for the HPMP reproduction.
//!
//! The paper's figures are all statements about *where cycles go* during
//! extra-dimensional page walks — TLB hits vs. Sv39 steps vs. PMP-table
//! steps vs. PMPTW-Cache hits. This crate provides the three pieces that
//! make those claims inspectable instead of opaque:
//!
//! * [`WalkEvent`] + [`TraceSink`] — a structured per-access event carrying
//!   the complete step-by-step breakdown of one translated access, and a
//!   sink trait the simulator is generic over. [`NullSink`] has
//!   `ENABLED == false` and monomorphizes to nothing; [`RingSink`] keeps the
//!   last N events in memory; [`JsonlSink`] streams one JSON object per
//!   line.
//! * [`MetricsRegistry`] / [`Snapshot`] — hierarchical dotted counter names
//!   unifying every `*Stats` struct in the workspace behind one exportable,
//!   diffable, mergeable view.
//! * [`LatencyHistogram`] — log2-bucketed latency distributions per
//!   [`AccessClass`], so Fig 10-style breakdowns come from real per-access
//!   samples rather than means.
//! * [`SpanEvent`] + [`SpanCollector`] and [`TimelineSink`] — the time
//!   axis: causally linked monitor-operation/shootdown spans, and periodic
//!   snapshot slices whose deltas telescope back to the end-of-run
//!   snapshot exactly. Both are bounded and count what they drop
//!   (`trace.dropped.*`), so hour-scale sampling is lossy but honest.
//!
//! The crate is dependency-free and sits below every other crate in the
//! workspace: `memsim`, `paging`, `core`, `machine`, `penglai`, `workloads`
//! and `bench` all link against it.
//!
//! # Invariant
//!
//! For every event: `pipeline_cycles + Σ step.cycles == cycles`. The
//! simulator's determinism tests additionally prove that attaching any sink
//! never changes a cycle result.

mod event;
mod hist;
mod host;
pub mod json;
mod metrics;
mod read;
mod report;
mod sink;
mod span;
mod timeline;

pub use event::{
    AccessOp, FaultCause, PmptwOutcome, PrivLevel, StepKind, TlbOutcome, WalkEvent, WalkStep, World,
};
pub use hist::{
    AccessClass, LatencyHistogram, LatencyHistograms, LatencyHistogramsWiring, HIST_BUCKETS,
};
pub use host::{
    alloc_stats, walks_per_sec, AllocStats, HostExperiment, HostProfile, HostProfiler,
    HOST_PROFILE_KIND,
};
pub use metrics::{CounterArena, CounterId, MetricsRegistry, Snapshot};
pub use read::{
    check_schema, parse_event, read_trace_file, ReadError, TraceReader, WALK_EVENT_STREAM,
};
pub use report::{
    histograms_in_snapshot, walks_in_snapshot, BenchReport, ExperimentRecord, Percentiles,
    BENCH_REPORT_KIND,
};
pub use sink::{JsonlSink, NullSink, RingSink, TraceSink};
pub use span::{parse_span, SpanCollector, SpanEvent, SpanKind, SpanStream, SPAN_EVENT_STREAM};
pub use timeline::{
    resum, Timeline, TimelineSink, TimelineSlice, DEFAULT_MAX_SLICES, TIMELINE_STREAM,
};

/// Version of every on-disk artifact this crate writes (JSONL trace
/// streams, versioned metrics snapshots, bench reports). Readers reject
/// any other version; bump it when a format changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Escape a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
