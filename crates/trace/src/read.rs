//! The read side of the JSONL trace format.
//!
//! [`JsonlSink`](crate::JsonlSink) opens every stream with a header line
//!
//! ```text
//! {"schema":1,"stream":"hpmp-walk-events"}
//! ```
//!
//! followed by one [`WalkEvent`] object per line. [`TraceReader`] enforces
//! the header — a missing header or an unknown `schema` value is a hard
//! error with a message saying exactly what was found — and then yields
//! parsed events. Analysis tools (`hpmp-analyze`) are therefore never in
//! the position of silently misreading a trace produced by a different
//! version of the writers.

use crate::event::{
    AccessOp, FaultCause, PmptwOutcome, PrivLevel, StepKind, TlbOutcome, WalkEvent, WalkStep, World,
};
use crate::json::{parse_json, JsonValue};
use crate::SCHEMA_VERSION;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// The `stream` tag the walk-event header carries.
pub const WALK_EVENT_STREAM: &str = "hpmp-walk-events";

/// A failure while reading a trace.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line (1-based) could not be parsed as what the format requires.
    Parse {
        /// 1-based line number within the stream.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The stream header is missing or declares a schema this reader does
    /// not understand.
    Schema {
        /// What the header said (or why it is unusable).
        message: String,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "I/O error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ReadError::Schema { message } => write!(f, "schema error: {message}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Check a parsed header object against the expected stream tag and this
/// crate's [`SCHEMA_VERSION`].
///
/// Shared by the trace reader and the snapshot / bench-report parsers so
/// every versioned artifact rejects unknown versions with the same shape of
/// error message.
pub fn check_schema(value: &JsonValue, what: &str) -> Result<(), ReadError> {
    match value.get("schema") {
        None => Err(ReadError::Schema {
            message: format!(
                "{what} has no \"schema\" field; this looks like output from a \
                 pre-versioned writer (or not a {what} at all) — regenerate it \
                 with the current tools"
            ),
        }),
        Some(v) => match v.as_u64() {
            Some(version) if version == u64::from(SCHEMA_VERSION) => Ok(()),
            Some(version) => Err(ReadError::Schema {
                message: format!(
                    "{what} declares schema version {version}, but this reader \
                     only understands version {SCHEMA_VERSION}"
                ),
            }),
            None => Err(ReadError::Schema {
                message: format!("{what} has a non-integer \"schema\" field"),
            }),
        },
    }
}

/// A streaming reader over a JSONL walk-event trace.
///
/// Construction validates the header line; iteration yields events in
/// stream order.
pub struct TraceReader<R: BufRead> {
    input: R,
    line_no: usize,
    buf: String,
}

impl TraceReader<BufReader<File>> {
    /// Open `path` and validate its header.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<TraceReader<BufReader<File>>, ReadError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Wrap a reader and validate the header line.
    pub fn new(mut input: R) -> Result<TraceReader<R>, ReadError> {
        let mut header = String::new();
        if input.read_line(&mut header)? == 0 {
            return Err(ReadError::Schema {
                message: "trace is empty: expected a header line like \
                          {\"schema\":1,\"stream\":\"hpmp-walk-events\"}"
                    .to_string(),
            });
        }
        let value = parse_json(header.trim_end()).map_err(|e| ReadError::Schema {
            message: format!("header line is not valid JSON ({e})"),
        })?;
        check_schema(&value, "trace header")?;
        match value.get("stream").and_then(JsonValue::as_str) {
            Some(WALK_EVENT_STREAM) => {}
            Some(other) => {
                return Err(ReadError::Schema {
                    message: format!("stream is \"{other}\", expected \"{WALK_EVENT_STREAM}\""),
                })
            }
            None => {
                return Err(ReadError::Schema {
                    message: "header has no \"stream\" field".to_string(),
                })
            }
        }
        Ok(TraceReader {
            input,
            line_no: 1,
            buf: String::new(),
        })
    }

    /// The next event, `Ok(None)` at end of stream.
    pub fn next_event(&mut self) -> Result<Option<WalkEvent>, ReadError> {
        loop {
            self.buf.clear();
            if self.input.read_line(&mut self.buf)? == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let line = self.buf.trim();
            if line.is_empty() {
                continue;
            }
            let value = parse_json(line).map_err(|e| ReadError::Parse {
                line: self.line_no,
                message: format!("not valid JSON ({e})"),
            })?;
            let event = parse_event(&value).map_err(|message| ReadError::Parse {
                line: self.line_no,
                message,
            })?;
            return Ok(Some(event));
        }
    }

    /// Read every remaining event into a vector.
    pub fn read_all(&mut self) -> Result<Vec<WalkEvent>, ReadError> {
        let mut events = Vec::new();
        while let Some(event) = self.next_event()? {
            events.push(event);
        }
        Ok(events)
    }
}

/// Read a whole trace file: header check plus every event.
pub fn read_trace_file<P: AsRef<Path>>(path: P) -> Result<Vec<WalkEvent>, ReadError> {
    TraceReader::open(path)?.read_all()
}

fn field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    value
        .get(key)
        .ok_or_else(|| format!("missing field \"{key}\""))
}

fn u64_field(value: &JsonValue, key: &str) -> Result<u64, String> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| format!("field \"{key}\" is not a u64"))
}

fn addr_field(value: &JsonValue, key: &str) -> Result<u64, String> {
    field(value, key)?
        .as_u64_lenient()
        .ok_or_else(|| format!("field \"{key}\" is not an address"))
}

fn label_field<T>(
    value: &JsonValue,
    key: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<T, String> {
    let label = field(value, key)?
        .as_str()
        .ok_or_else(|| format!("field \"{key}\" is not a string"))?;
    parse(label).ok_or_else(|| format!("field \"{key}\" has unknown label \"{label}\""))
}

fn parse_step(value: &JsonValue) -> Result<WalkStep, String> {
    Ok(WalkStep {
        kind: label_field(value, "kind", StepKind::from_label)?,
        level: match field(value, "level")? {
            JsonValue::Null => None,
            v => Some(
                v.as_u64()
                    .and_then(|l| u8::try_from(l).ok())
                    .ok_or("step \"level\" is not a small integer")?,
            ),
        },
        addr: addr_field(value, "addr")?,
        cycles: u64_field(value, "cycles")?,
    })
}

/// Parse one event object (the per-line payload of the trace format).
pub fn parse_event(value: &JsonValue) -> Result<WalkEvent, String> {
    let steps = field(value, "steps")?
        .as_array()
        .ok_or("field \"steps\" is not an array")?
        .iter()
        .map(parse_step)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WalkEvent {
        seq: u64_field(value, "seq")?,
        // Absent in traces written before multi-hart support; those are
        // single-hart streams, so hart 0 is exact, not a guess.
        hart: match value.get("hart") {
            None => 0,
            Some(v) => v
                .as_u64()
                .and_then(|h| u16::try_from(h).ok())
                .ok_or("field \"hart\" is not a small integer")?,
        },
        world: label_field(value, "world", World::from_label)?,
        op: label_field(value, "op", AccessOp::from_label)?,
        privilege: label_field(value, "priv", PrivLevel::from_label)?,
        va: addr_field(value, "va")?,
        paddr: match field(value, "paddr")? {
            JsonValue::Null => None,
            v => Some(
                v.as_u64_lenient()
                    .ok_or("field \"paddr\" is not an address")?,
            ),
        },
        tlb: label_field(value, "tlb", TlbOutcome::from_label)?,
        pwc_level: match field(value, "pwc_level")? {
            JsonValue::Null => None,
            v => Some(
                v.as_u64()
                    .and_then(|l| u8::try_from(l).ok())
                    .ok_or("field \"pwc_level\" is not a small integer")?,
            ),
        },
        pmptw: match field(value, "pmptw")? {
            JsonValue::Null => None,
            _ => Some(label_field(value, "pmptw", PmptwOutcome::from_label)?),
        },
        pipeline_cycles: u64_field(value, "pipeline_cycles")?,
        cycles: u64_field(value, "cycles")?,
        fault: match field(value, "fault")? {
            JsonValue::Null => None,
            _ => Some(label_field(value, "fault", FaultCause::from_label)?),
        },
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::JsonlSink;
    use crate::TraceSink;

    fn sample_event(seq: u64) -> WalkEvent {
        WalkEvent {
            seq,
            hart: 2,
            world: World::Enclave,
            op: AccessOp::Write,
            privilege: PrivLevel::User,
            va: 0x10_0000,
            paddr: Some(0x8000_1000),
            tlb: TlbOutcome::Miss,
            pwc_level: Some(1),
            pmptw: Some(PmptwOutcome::RootHit),
            pipeline_cycles: 2,
            cycles: 42,
            fault: None,
            steps: vec![
                WalkStep {
                    kind: StepKind::Pt,
                    level: Some(0),
                    addr: 0x8040_0000,
                    cycles: 14,
                },
                WalkStep {
                    kind: StepKind::PmptLeaf,
                    level: None,
                    addr: 0x9000_0000,
                    cycles: 12,
                },
                WalkStep {
                    kind: StepKind::Data,
                    level: None,
                    addr: 0x8000_1000,
                    cycles: 14,
                },
            ],
        }
    }

    #[test]
    fn round_trips_what_the_sink_writes() {
        let mut sink = JsonlSink::new(Vec::new());
        let events = [sample_event(0), sample_event(1)];
        for e in &events {
            sink.record(e);
        }
        let bytes = sink.into_inner();
        let mut reader = TraceReader::new(bytes.as_slice()).expect("valid header");
        let back = reader.read_all().expect("parses");
        assert_eq!(back, events);
    }

    #[test]
    fn faulting_event_round_trips() {
        let mut e = sample_event(3);
        e.paddr = None;
        e.fault = Some(FaultCause::IsolationOnData);
        e.pmptw = None;
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&e);
        let bytes = sink.into_inner();
        let back = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(back, vec![e]);
    }

    #[test]
    fn pre_multihart_event_parses_as_hart_zero() {
        // A line written before the `hart` field existed must still parse.
        let legacy = sample_event(5).to_json().replacen("\"hart\":2,", "", 1);
        let value = crate::json::parse_json(&legacy).expect("valid JSON");
        let event = parse_event(&value).expect("parses without hart");
        assert_eq!(event.hart, 0);
        assert_eq!(event.seq, 5);
    }

    #[test]
    fn missing_header_is_rejected_with_clear_error() {
        let raw = sample_event(0).to_json() + "\n";
        let err = TraceReader::new(raw.as_bytes()).err().expect("must reject");
        let msg = err.to_string();
        assert!(msg.contains("schema"), "unhelpful error: {msg}");
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let raw = "{\"schema\":99,\"stream\":\"hpmp-walk-events\"}\n";
        let err = TraceReader::new(raw.as_bytes()).err().expect("must reject");
        let msg = err.to_string();
        assert!(msg.contains("99"), "{msg}");
        assert!(msg.contains('1'), "{msg}");
    }

    #[test]
    fn wrong_stream_tag_is_rejected() {
        let raw = "{\"schema\":1,\"stream\":\"something-else\"}\n";
        let err = TraceReader::new(raw.as_bytes()).err().expect("must reject");
        assert!(err.to_string().contains("something-else"));
    }

    #[test]
    fn empty_input_is_rejected() {
        let err = TraceReader::new(&b""[..]).err().expect("must reject");
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn garbage_event_line_reports_line_number() {
        let raw = "{\"schema\":1,\"stream\":\"hpmp-walk-events\"}\nnot json\n";
        let mut reader = TraceReader::new(raw.as_bytes()).unwrap();
        let err = reader.next_event().expect_err("must fail");
        assert!(err.to_string().starts_with("line 2"), "{err}");
    }
}
