//! The structured per-access event emitted by the simulator.
//!
//! The event mirrors, step by step, what the hardware did to resolve one
//! memory access: the TLB probe, every page-table and PMP-table reference
//! issued while walking (with the cycles each cost in the memory
//! hierarchy), the data reference itself, and the fault that aborted the
//! access, if any.
//!
//! `hpmp-trace` sits below every simulator crate, so the event uses its own
//! tiny mirror enums ([`AccessOp`], [`PrivLevel`]) instead of the memsim
//! types; the machine layer converts at emission time.

use crate::json_escape;

/// Which software world issued the access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum World {
    /// The untrusted host OS (the domain the monitor boots into).
    Host,
    /// A Penglai enclave domain.
    Enclave,
    /// A guest behind nested (two-stage) translation.
    Guest,
}

impl World {
    /// Stable lowercase label used in JSON and metric names.
    pub fn label(self) -> &'static str {
        match self {
            World::Host => "host",
            World::Enclave => "enclave",
            World::Guest => "guest",
        }
    }

    /// Parse a [`World::label`] back into the enum.
    pub fn from_label(label: &str) -> Option<World> {
        match label {
            "host" => Some(World::Host),
            "enclave" => Some(World::Enclave),
            "guest" => Some(World::Guest),
            _ => None,
        }
    }
}

/// The kind of memory operation (mirror of `hpmp_memsim::AccessKind`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOp {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An instruction fetch.
    Fetch,
}

impl AccessOp {
    /// Stable lowercase label used in JSON and metric names.
    pub fn label(self) -> &'static str {
        match self {
            AccessOp::Read => "read",
            AccessOp::Write => "write",
            AccessOp::Fetch => "fetch",
        }
    }

    /// Parse an [`AccessOp::label`] back into the enum.
    pub fn from_label(label: &str) -> Option<AccessOp> {
        match label {
            "read" => Some(AccessOp::Read),
            "write" => Some(AccessOp::Write),
            "fetch" => Some(AccessOp::Fetch),
            _ => None,
        }
    }
}

/// The privilege level of the access (mirror of `hpmp_memsim::PrivMode`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrivLevel {
    /// U-mode.
    User,
    /// S-mode.
    Supervisor,
    /// M-mode.
    Machine,
}

impl PrivLevel {
    /// Stable one-letter label used in JSON.
    pub fn label(self) -> &'static str {
        match self {
            PrivLevel::User => "U",
            PrivLevel::Supervisor => "S",
            PrivLevel::Machine => "M",
        }
    }

    /// Parse a [`PrivLevel::label`] back into the enum.
    pub fn from_label(label: &str) -> Option<PrivLevel> {
        match label {
            "U" => Some(PrivLevel::User),
            "S" => Some(PrivLevel::Supervisor),
            "M" => Some(PrivLevel::Machine),
            _ => None,
        }
    }
}

/// Outcome of the TLB probe that started the access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the first-level TLB (zero added latency).
    L1Hit,
    /// Hit in the second-level TLB (adds the L2 probe latency).
    L2Hit,
    /// Missed both levels; a walk followed.
    Miss,
}

impl TlbOutcome {
    /// Stable label used in JSON.
    pub fn label(self) -> &'static str {
        match self {
            TlbOutcome::L1Hit => "l1_hit",
            TlbOutcome::L2Hit => "l2_hit",
            TlbOutcome::Miss => "miss",
        }
    }

    /// Whether the access was served without a page walk.
    pub fn is_hit(self) -> bool {
        !matches!(self, TlbOutcome::Miss)
    }

    /// Parse a [`TlbOutcome::label`] back into the enum.
    pub fn from_label(label: &str) -> Option<TlbOutcome> {
        match label {
            "l1_hit" => Some(TlbOutcome::L1Hit),
            "l2_hit" => Some(TlbOutcome::L2Hit),
            "miss" => Some(TlbOutcome::Miss),
            _ => None,
        }
    }
}

/// What the PMPTW-Cache contributed to the isolation checks of this access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PmptwOutcome {
    /// Leaf pmpte found in the cache: zero table references issued.
    LeafHit,
    /// Root pmpte found: only the leaf reference was issued.
    RootHit,
    /// Full two-level PMP-table walk.
    Miss,
    /// The check never reached the PMP table (segment match, or the cache /
    /// table machinery is disabled for this scheme).
    Bypass,
}

impl PmptwOutcome {
    /// Stable label used in JSON.
    pub fn label(self) -> &'static str {
        match self {
            PmptwOutcome::LeafHit => "leaf_hit",
            PmptwOutcome::RootHit => "root_hit",
            PmptwOutcome::Miss => "miss",
            PmptwOutcome::Bypass => "bypass",
        }
    }

    /// Parse a [`PmptwOutcome::label`] back into the enum.
    pub fn from_label(label: &str) -> Option<PmptwOutcome> {
        match label {
            "leaf_hit" => Some(PmptwOutcome::LeafHit),
            "root_hit" => Some(PmptwOutcome::RootHit),
            "miss" => Some(PmptwOutcome::Miss),
            "bypass" => Some(PmptwOutcome::Bypass),
            _ => None,
        }
    }
}

/// The kind of one step taken while resolving an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// The L2-TLB probe latency paid on an L1 miss that hit L2.
    TlbL2,
    /// A native (host) page-table reference.
    Pt,
    /// A guest page-table reference (first stage of a nested walk).
    GuestPt,
    /// A nested / G-stage page-table reference.
    NestedPt,
    /// A root-pmpte reference in the PMP table.
    PmptRoot,
    /// A leaf-pmpte reference in the PMP table.
    PmptLeaf,
    /// The data reference itself.
    Data,
}

impl StepKind {
    /// Every kind, in display order.
    pub const ALL: [StepKind; 7] = [
        StepKind::TlbL2,
        StepKind::Pt,
        StepKind::GuestPt,
        StepKind::NestedPt,
        StepKind::PmptRoot,
        StepKind::PmptLeaf,
        StepKind::Data,
    ];

    /// Stable label used in JSON and metric names.
    pub fn label(self) -> &'static str {
        match self {
            StepKind::TlbL2 => "tlb_l2",
            StepKind::Pt => "pt",
            StepKind::GuestPt => "guest_pt",
            StepKind::NestedPt => "nested_pt",
            StepKind::PmptRoot => "pmpt_root",
            StepKind::PmptLeaf => "pmpt_leaf",
            StepKind::Data => "data",
        }
    }

    /// Parse a [`StepKind::label`] back into the enum.
    pub fn from_label(label: &str) -> Option<StepKind> {
        match label {
            "tlb_l2" => Some(StepKind::TlbL2),
            "pt" => Some(StepKind::Pt),
            "guest_pt" => Some(StepKind::GuestPt),
            "nested_pt" => Some(StepKind::NestedPt),
            "pmpt_root" => Some(StepKind::PmptRoot),
            "pmpt_leaf" => Some(StepKind::PmptLeaf),
            "data" => Some(StepKind::Data),
            _ => None,
        }
    }

    /// Whether this step is a pmpte reference in the PMP table.
    pub fn is_pmpte(self) -> bool {
        matches!(self, StepKind::PmptRoot | StepKind::PmptLeaf)
    }
}

/// Why an access aborted (mirror of `hpmp_machine::Fault`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCause {
    /// No valid translation for the virtual address.
    PageFault,
    /// The translation exists but its PTE permissions deny the access.
    PtePermission,
    /// The isolation layer denied a page-table reference mid-walk.
    IsolationOnPtPage,
    /// The isolation layer denied the data reference.
    IsolationOnData,
    /// A pmpte failed its integrity check (reserved bits set or parity
    /// mismatch) — the checker fails closed and the access is denied.
    CorruptPmpte,
}

impl FaultCause {
    /// Stable label used in JSON.
    pub fn label(self) -> &'static str {
        match self {
            FaultCause::PageFault => "page_fault",
            FaultCause::PtePermission => "pte_permission",
            FaultCause::IsolationOnPtPage => "isolation_on_pt_page",
            FaultCause::IsolationOnData => "isolation_on_data",
            FaultCause::CorruptPmpte => "corrupt_pmpte",
        }
    }

    /// Parse a [`FaultCause::label`] back into the enum.
    pub fn from_label(label: &str) -> Option<FaultCause> {
        match label {
            "page_fault" => Some(FaultCause::PageFault),
            "pte_permission" => Some(FaultCause::PtePermission),
            "isolation_on_pt_page" => Some(FaultCause::IsolationOnPtPage),
            "isolation_on_data" => Some(FaultCause::IsolationOnData),
            "corrupt_pmpte" => Some(FaultCause::CorruptPmpte),
            _ => None,
        }
    }
}

/// One step taken while resolving an access: what was referenced, at which
/// table level, and what it cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkStep {
    /// What kind of reference this was.
    pub kind: StepKind,
    /// Table level for page-table steps (`walker` numbering, leaf = 0);
    /// `None` for steps without a level (TLB probe, data, pmpte).
    pub level: Option<u8>,
    /// The physical address referenced (0 for the synthetic TLB-L2 step).
    pub addr: u64,
    /// Cycles this step cost in the memory hierarchy.
    pub cycles: u64,
}

impl WalkStep {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        let level = match self.level {
            Some(l) => l.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"kind\":\"{}\",\"level\":{},\"addr\":\"{:#x}\",\"cycles\":{}}}",
            self.kind.label(),
            level,
            self.addr,
            self.cycles
        )
    }
}

/// A complete record of one simulated memory access.
///
/// Invariant: `pipeline_cycles + Σ steps[i].cycles == cycles` — every cycle
/// the access cost is attributed to exactly one step (or to fixed pipeline
/// overhead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalkEvent {
    /// Monotonic per-machine sequence number.
    pub seq: u64,
    /// The hart (hardware thread) that issued the access; 0 on
    /// single-hart machines.
    pub hart: u16,
    /// Which world issued the access.
    pub world: World,
    /// Load / store / fetch.
    pub op: AccessOp,
    /// Privilege level of the access.
    pub privilege: PrivLevel,
    /// The virtual (or guest-virtual) address accessed.
    pub va: u64,
    /// The resolved physical address; `None` when the access faulted before
    /// translation completed.
    pub paddr: Option<u64>,
    /// Outcome of the TLB probe.
    pub tlb: TlbOutcome,
    /// PWC hit level for the walk (`walker` numbering), `None` on a PWC
    /// miss or when no walk ran.
    pub pwc_level: Option<u8>,
    /// Best PMPTW-Cache outcome over the isolation checks of this access.
    pub pmptw: Option<PmptwOutcome>,
    /// Fixed pipeline overhead charged by the core model.
    pub pipeline_cycles: u64,
    /// Total cycles for the access (== outcome cycles, or the cycles burnt
    /// before the fault).
    pub cycles: u64,
    /// Why the access aborted, if it did.
    pub fault: Option<FaultCause>,
    /// Every reference issued, in program order.
    pub steps: Vec<WalkStep>,
}

impl WalkEvent {
    /// Cycles attributed to steps of the given kind.
    pub fn cycles_of(&self, kind: StepKind) -> u64 {
        self.steps
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.cycles)
            .sum()
    }

    /// Number of steps of the given kind.
    pub fn count_of(&self, kind: StepKind) -> usize {
        self.steps.iter().filter(|s| s.kind == kind).count()
    }

    /// Sum of all step cycles (excludes pipeline overhead).
    pub fn step_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.cycles).sum()
    }

    /// Check the cycle-attribution invariant.
    pub fn is_balanced(&self) -> bool {
        self.pipeline_cycles + self.step_cycles() == self.cycles
    }

    /// Serialize as a single-line JSON object (the JSONL record format).
    pub fn to_json(&self) -> String {
        let paddr = match self.paddr {
            Some(p) => format!("\"{p:#x}\""),
            None => "null".to_string(),
        };
        let pwc = match self.pwc_level {
            Some(l) => l.to_string(),
            None => "null".to_string(),
        };
        let pmptw = match self.pmptw {
            Some(p) => format!("\"{}\"", json_escape(p.label())),
            None => "null".to_string(),
        };
        let fault = match self.fault {
            Some(f) => format!("\"{}\"", f.label()),
            None => "null".to_string(),
        };
        let steps: Vec<String> = self.steps.iter().map(WalkStep::to_json).collect();
        format!(
            "{{\"seq\":{},\"hart\":{},\"world\":\"{}\",\"op\":\"{}\",\"priv\":\"{}\",\"va\":\"{:#x}\",\
             \"paddr\":{},\"tlb\":\"{}\",\"pwc_level\":{},\"pmptw\":{},\
             \"pipeline_cycles\":{},\"cycles\":{},\"fault\":{},\"steps\":[{}]}}",
            self.seq,
            self.hart,
            self.world.label(),
            self.op.label(),
            self.privilege.label(),
            self.va,
            paddr,
            self.tlb.label(),
            pwc,
            pmptw,
            self.pipeline_cycles,
            self.cycles,
            fault,
            steps.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WalkEvent {
        WalkEvent {
            seq: 7,
            hart: 0,
            world: World::Enclave,
            op: AccessOp::Write,
            privilege: PrivLevel::User,
            va: 0x10_0000,
            paddr: Some(0x8000_1000),
            tlb: TlbOutcome::Miss,
            pwc_level: Some(1),
            pmptw: Some(PmptwOutcome::RootHit),
            pipeline_cycles: 2,
            cycles: 42,
            fault: None,
            steps: vec![
                WalkStep {
                    kind: StepKind::Pt,
                    level: Some(0),
                    addr: 0x8040_0000,
                    cycles: 14,
                },
                WalkStep {
                    kind: StepKind::PmptLeaf,
                    level: None,
                    addr: 0x9000_0000,
                    cycles: 12,
                },
                WalkStep {
                    kind: StepKind::Data,
                    level: None,
                    addr: 0x8000_1000,
                    cycles: 14,
                },
            ],
        }
    }

    #[test]
    fn balance_checks_the_invariant() {
        let mut e = sample();
        assert!(e.is_balanced());
        e.cycles += 1;
        assert!(!e.is_balanced());
    }

    #[test]
    fn aggregation_helpers() {
        let e = sample();
        assert_eq!(e.cycles_of(StepKind::Pt), 14);
        assert_eq!(e.count_of(StepKind::Data), 1);
        assert_eq!(e.step_cycles(), 40);
    }

    #[test]
    fn json_is_one_line_and_mentions_fields() {
        let j = sample().to_json();
        assert!(!j.contains('\n'));
        for needle in [
            "\"seq\":7",
            "\"hart\":0",
            "\"world\":\"enclave\"",
            "\"tlb\":\"miss\"",
            "\"pmpt_leaf\"",
        ] {
            assert!(j.contains(needle), "{needle} missing from {j}");
        }
    }

    #[test]
    fn faulting_event_serializes_null_paddr() {
        let mut e = sample();
        e.paddr = None;
        e.fault = Some(FaultCause::PageFault);
        let j = e.to_json();
        assert!(j.contains("\"paddr\":null"));
        assert!(j.contains("\"fault\":\"page_fault\""));
    }
}
