//! Log2-bucketed latency histograms per access class.
//!
//! Fig 10-style latency breakdowns need distributions, not means: a
//! workload whose accesses are mostly TLB hits plus a long walk tail has
//! the same mean as one with uniform medium-cost accesses but a completely
//! different story. Each simulated machine keeps one histogram per
//! [`AccessClass`] and records every access's cycle cost.

use crate::event::AccessOp;
use crate::metrics::{CounterId, MetricsRegistry};

/// The access classes a machine histograms separately: operation kind ×
/// whether the TLB served it or a walk was needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessClass {
    /// Load served by the TLB.
    ReadTlbHit,
    /// Load that required a page walk.
    ReadWalk,
    /// Store served by the TLB.
    WriteTlbHit,
    /// Store that required a page walk.
    WriteWalk,
    /// Fetch served by the TLB.
    FetchTlbHit,
    /// Fetch that required a page walk.
    FetchWalk,
}

impl AccessClass {
    /// Every class, in display order.
    pub const ALL: [AccessClass; 6] = [
        AccessClass::ReadTlbHit,
        AccessClass::ReadWalk,
        AccessClass::WriteTlbHit,
        AccessClass::WriteWalk,
        AccessClass::FetchTlbHit,
        AccessClass::FetchWalk,
    ];

    /// Stable label used in JSON and metric names.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::ReadTlbHit => "read_tlb_hit",
            AccessClass::ReadWalk => "read_walk",
            AccessClass::WriteTlbHit => "write_tlb_hit",
            AccessClass::WriteWalk => "write_walk",
            AccessClass::FetchTlbHit => "fetch_tlb_hit",
            AccessClass::FetchWalk => "fetch_walk",
        }
    }

    /// The class of an access given its operation and whether the TLB
    /// served it.
    pub fn classify(op: AccessOp, tlb_hit: bool) -> AccessClass {
        match (op, tlb_hit) {
            (AccessOp::Read, true) => AccessClass::ReadTlbHit,
            (AccessOp::Read, false) => AccessClass::ReadWalk,
            (AccessOp::Write, true) => AccessClass::WriteTlbHit,
            (AccessOp::Write, false) => AccessClass::WriteWalk,
            (AccessOp::Fetch, true) => AccessClass::FetchTlbHit,
            (AccessOp::Fetch, false) => AccessClass::FetchWalk,
        }
    }

    /// Dense index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            AccessClass::ReadTlbHit => 0,
            AccessClass::ReadWalk => 1,
            AccessClass::WriteTlbHit => 2,
            AccessClass::WriteWalk => 3,
            AccessClass::FetchTlbHit => 4,
            AccessClass::FetchWalk => 5,
        }
    }
}

/// Number of buckets: bucket 0 is the exact value 0, bucket `k` (1 ≤ k ≤
/// 64) covers `[2^(k-1), 2^k)`.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (cycle latencies).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive-exclusive bounds `[lo, hi)` of a bucket (bucket 0 is the
    /// single value 0; bucket 64's upper bound saturates at `u64::MAX`).
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            k => (1 << (k - 1), 1 << k),
        }
    }

    /// Record one sample. The running sum saturates at `u64::MAX` rather
    /// than overflowing (only reachable with samples near the top bucket).
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample (None when empty).
    pub fn min(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest sample (None when empty).
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Mean sample value (None when empty).
    pub fn mean(&self) -> Option<f64> {
        (!self.is_empty()).then(|| self.sum as f64 / self.count as f64)
    }

    /// Count in one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// The upper bound (exclusive) of the bucket containing the `p`-th
    /// percentile sample, `p` in `[0, 100]`. None when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_bounds(i).1);
            }
        }
        Some(Self::bucket_bounds(HIST_BUCKETS - 1).1)
    }

    /// Rebuild a histogram from `(bucket lower bound, count)` pairs plus the
    /// sample sum, as exported by [`LatencyHistograms::export`] and parsed
    /// back from a metrics snapshot.
    ///
    /// Exact for `count`, `sum`, bucket occupancy and therefore every
    /// [`LatencyHistogram::percentile`]; `min`/`max` are only known to
    /// bucket resolution, so they are reconstructed conservatively as the
    /// bounds of the outermost occupied buckets.
    pub fn from_bucket_counts(
        pairs: impl IntoIterator<Item = (u64, u64)>,
        sum: u64,
    ) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for (lo, n) in pairs {
            if n == 0 {
                continue;
            }
            let index = Self::bucket_index(lo);
            h.buckets[index] += n;
            h.count += n;
            let (bucket_lo, bucket_hi) = Self::bucket_bounds(index);
            h.min = h.min.min(bucket_lo);
            h.max = h.max.max(bucket_hi - 1);
        }
        h.sum = sum;
        h
    }

    /// Add every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to empty.
    pub fn reset(&mut self) {
        *self = LatencyHistogram::new();
    }

    /// Export non-empty buckets as `{"count":..,"sum":..,"buckets":{"lo":n}}`
    /// where each bucket is keyed by its inclusive lower bound.
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                buckets.push(',');
            }
            first = false;
            buckets.push_str(&format!("\"{}\":{}", Self::bucket_bounds(i).0, n));
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{{}}}}}",
            self.count,
            self.sum,
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            buckets
        )
    }
}

/// One histogram per [`AccessClass`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistograms {
    hists: [LatencyHistogram; 6],
}

impl LatencyHistograms {
    /// All-empty histograms.
    pub fn new() -> LatencyHistograms {
        LatencyHistograms::default()
    }

    /// Record one access latency under its class.
    pub fn record(&mut self, class: AccessClass, cycles: u64) {
        self.hists[class.index()].record(cycles);
    }

    /// The histogram for one class.
    pub fn class(&self, class: AccessClass) -> &LatencyHistogram {
        &self.hists[class.index()]
    }

    /// Total samples across classes.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(LatencyHistogram::count).sum()
    }

    /// Merge another set class-wise.
    pub fn merge(&mut self, other: &LatencyHistograms) {
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
    }

    /// Reset every class.
    pub fn reset(&mut self) {
        for h in &mut self.hists {
            h.reset();
        }
    }

    /// Export summary counters (`<prefix>.<class>.count|cycles`) plus the
    /// raw bucket occupancy (`<prefix>.<class>.bucket.<lo>`, keyed by the
    /// bucket's inclusive lower bound) into a registry.
    ///
    /// Bucket counts — unlike percentile values — are plain counters, so
    /// they stay correct under [`crate::Snapshot::merge`] and
    /// [`crate::Snapshot::delta`]; analysis tools rebuild the distribution
    /// with [`LatencyHistogram::from_bucket_counts`] and compute percentiles
    /// at read time.
    pub fn export(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let mut wiring = LatencyHistogramsWiring::wire(reg, prefix);
        wiring.store(reg, self);
    }

    /// Export every class as JSON, keyed by class label.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = AccessClass::ALL
            .iter()
            .map(|&c| format!("\"{}\":{}", c.label(), self.class(c).to_json()))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

/// Interned counter handles for publishing a [`LatencyHistograms`] into a
/// [`MetricsRegistry`] repeatedly without re-formatting any names.
///
/// The per-class `count`/`cycles` names are interned eagerly at wiring
/// time. Bucket names stay sparse: a bucket's name is only interned the
/// first time that bucket is non-zero, and from then on it is stored on
/// every [`LatencyHistogramsWiring::store`] (so a later reset writes an
/// explicit zero rather than leaving a stale count behind).
#[derive(Clone, Debug)]
pub struct LatencyHistogramsWiring {
    prefix: String,
    count: [CounterId; 6],
    cycles: [CounterId; 6],
    buckets: Box<[[Option<CounterId>; HIST_BUCKETS]; 6]>,
}

impl LatencyHistogramsWiring {
    /// Intern the summary counter names for every class under `prefix`.
    pub fn wire(reg: &mut MetricsRegistry, prefix: &str) -> LatencyHistogramsWiring {
        LatencyHistogramsWiring {
            prefix: prefix.to_string(),
            count: AccessClass::ALL.map(|c| reg.counter(format!("{prefix}.{}.count", c.label()))),
            cycles: AccessClass::ALL.map(|c| reg.counter(format!("{prefix}.{}.cycles", c.label()))),
            buckets: Box::new([[None; HIST_BUCKETS]; 6]),
        }
    }

    /// Publish the current state of `hists` through the wired handles.
    pub fn store(&mut self, reg: &mut MetricsRegistry, hists: &LatencyHistograms) {
        for class in AccessClass::ALL {
            let idx = class.index();
            let h = hists.class(class);
            reg.store(self.count[idx], h.count());
            reg.store(self.cycles[idx], h.sum());
            for i in 0..HIST_BUCKETS {
                let n = h.bucket(i);
                match self.buckets[idx][i] {
                    Some(id) => reg.store(id, n),
                    None if n != 0 => {
                        let lo = LatencyHistogram::bucket_bounds(i).0;
                        let id =
                            reg.counter(format!("{}.{}.bucket.{lo}", self.prefix, class.label()));
                        reg.store(id, n);
                        self.buckets[idx][i] = Some(id);
                    }
                    None => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod wiring_tests {
    use super::*;

    #[test]
    fn wiring_matches_export_and_tracks_resets() {
        let mut set = LatencyHistograms::new();
        set.record(AccessClass::ReadWalk, 3);
        set.record(AccessClass::WriteTlbHit, 100);

        let mut exported = MetricsRegistry::new();
        set.export(&mut exported, "hist");

        let mut reg = MetricsRegistry::new();
        let mut wiring = LatencyHistogramsWiring::wire(&mut reg, "hist");
        wiring.store(&mut reg, &set);
        assert_eq!(reg.snapshot(), exported.snapshot());

        // After a reset, previously-seen buckets are written as zero.
        set.reset();
        wiring.store(&mut reg, &set);
        let snap = reg.snapshot();
        assert_eq!(snap.value("hist.read_walk.bucket.2"), 0);
        assert_eq!(snap.value("hist.read_walk.count"), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(1023), 10);
        assert_eq!(LatencyHistogram::bucket_index(1024), 11);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_cover_the_line_without_overlap() {
        let mut prev_hi = 0;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = LatencyHistogram::bucket_bounds(i);
            assert_eq!(lo, prev_hi, "bucket {i} must start where {} ended", i - 1);
            assert!(hi > lo);
            prev_hi = hi;
        }
        assert_eq!(prev_hi, u64::MAX);
    }

    #[test]
    fn record_tracks_summary_stats() {
        let mut h = LatencyHistogram::new();
        for v in [3, 14, 57, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 77);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(57));
        assert_eq!(h.bucket(2), 2, "two samples in [2,4)");
        assert_eq!(h.bucket(4), 1, "one sample in [8,16)");
        assert_eq!(h.bucket(6), 1, "one sample in [32,64)");
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [1u64, 9, 200] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 64, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn percentile_finds_the_right_bucket() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(3); // bucket [2,4)
        }
        h.record(1000); // bucket [512,1024)
        assert_eq!(h.percentile(50.0), Some(4));
        assert_eq!(h.percentile(100.0), Some(1024));
        assert_eq!(LatencyHistogram::new().percentile(50.0), None);
    }

    #[test]
    fn class_set_records_and_exports() {
        let mut set = LatencyHistograms::new();
        set.record(AccessClass::ReadTlbHit, 3);
        set.record(AccessClass::ReadWalk, 57);
        set.record(AccessClass::ReadWalk, 61);
        let mut reg = MetricsRegistry::new();
        set.export(&mut reg, "hist");
        assert_eq!(reg.value("hist.read_tlb_hit.count"), 1);
        assert_eq!(reg.value("hist.read_walk.count"), 2);
        assert_eq!(reg.value("hist.read_walk.cycles"), 118);
        assert_eq!(set.total_count(), 3);
        assert!(set.to_json().contains("\"read_walk\":{\"count\":2"));
    }

    #[test]
    fn export_includes_bucket_occupancy() {
        let mut set = LatencyHistograms::new();
        set.record(AccessClass::ReadWalk, 3); // bucket [2,4), lo = 2
        set.record(AccessClass::ReadWalk, 3);
        set.record(AccessClass::ReadWalk, 57); // bucket [32,64), lo = 32
        let mut reg = MetricsRegistry::new();
        set.export(&mut reg, "hist");
        assert_eq!(reg.value("hist.read_walk.bucket.2"), 2);
        assert_eq!(reg.value("hist.read_walk.bucket.32"), 1);
        assert_eq!(
            reg.value("hist.read_walk.bucket.4"),
            0,
            "empty buckets omitted"
        );
    }

    #[test]
    fn from_bucket_counts_preserves_percentiles() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 3, 3, 14, 57, 57, 57, 1000] {
            h.record(v);
        }
        let pairs: Vec<(u64, u64)> = (0..HIST_BUCKETS)
            .filter(|&i| h.bucket(i) != 0)
            .map(|i| (LatencyHistogram::bucket_bounds(i).0, h.bucket(i)))
            .collect();
        let back = LatencyHistogram::from_bucket_counts(pairs, h.sum());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(back.percentile(p), h.percentile(p), "p{p}");
        }
    }

    // Satellite: percentile edge cases.

    #[test]
    fn percentile_single_bucket() {
        // Every sample in one bucket: every percentile is that bucket's
        // upper bound.
        let mut h = LatencyHistogram::new();
        for _ in 0..17 {
            h.record(5); // bucket [4,8)
        }
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(8), "p{p}");
        }
    }

    #[test]
    fn percentile_saturating_top_bucket() {
        // Samples in the top bucket [2^63, u64::MAX]: its exclusive upper
        // bound saturates at u64::MAX instead of wrapping.
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1 << 63);
        assert_eq!(h.percentile(50.0), Some(u64::MAX));
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
    }

    #[test]
    fn percentile_p0_and_p100() {
        let mut h = LatencyHistogram::new();
        h.record(0); // bucket 0, upper bound 1
        for _ in 0..9 {
            h.record(100); // bucket [64,128)
        }
        // p0 clamps its rank to the first sample: the zero bucket.
        assert_eq!(h.percentile(0.0), Some(1));
        // p100 is the bucket of the largest sample.
        assert_eq!(h.percentile(100.0), Some(128));
    }

    #[test]
    fn percentile_zero_only_histogram() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(100.0), Some(1));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
    }
}
