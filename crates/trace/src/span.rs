//! Monitor-operation spans: time-resolved, causally linked events.
//!
//! A [`WalkEvent`](crate::WalkEvent) describes one translated access; a
//! [`SpanEvent`] describes one *interval* of monitor or synchronization
//! work — a domain switch, a GMS grant, a shootdown delivery — on the
//! simulated cycle axis. Spans carry a causal `parent` id, so a shootdown
//! decomposes into per-receiver child spans (IPI flight → trap →
//! reprogram → fence) hanging off the monitor operation that triggered
//! it, and `hpmp-analyze timeline` can attribute the sender's stall to
//! the slowest receiver instead of a flat counter.
//!
//! Spans are collected by a [`SpanCollector`] — bounded, so hour-scale
//! runs cannot grow without limit, and honest about it: evicted spans are
//! counted in [`SpanCollector::dropped`], which the SMP layer exports as
//! the `trace.dropped.spans` counter. The on-disk form is JSONL behind
//! the same schema-versioned header discipline as walk-event traces,
//! under the stream tag [`SPAN_EVENT_STREAM`].

use crate::json::{parse_json, JsonValue};
use crate::read::{check_schema, ReadError};
use crate::SCHEMA_VERSION;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

/// The `stream` tag a span-event JSONL header carries.
pub const SPAN_EVENT_STREAM: &str = "hpmp-span-events";

/// What a span's interval was spent on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A domain switch (`switch_on`), including its fence broadcast.
    Switch,
    /// Domain creation (`create_domain_on`).
    CreateDomain,
    /// A GMS region grant (`alloc_on`).
    Alloc,
    /// A GMS region revoke (`free_on`).
    Free,
    /// A GMS relabel (`relabel_on`).
    Relabel,
    /// Domain teardown (`destroy_domain_on`).
    DestroyDomain,
    /// Sender-side doorbell write posting one IPI (charged to the sender,
    /// *not* part of its stall).
    IpiSend,
    /// One receiver's whole shootdown delivery: interconnect flight
    /// through ack. The parent operation's sender stall equals the
    /// slowest sibling of this kind.
    ShootdownRecv,
    /// Receiver trap entry + return (child of [`SpanKind::ShootdownRecv`]).
    Trap,
    /// Receiver register-image reprogramming (child of
    /// [`SpanKind::ShootdownRecv`]; absent for fence-only deliveries).
    Reprogram,
    /// Receiver-side fence killing stale TLB/PMPTW-Cache entries (child
    /// of [`SpanKind::ShootdownRecv`]).
    Fence,
    /// A segment-compaction pass inside an allocation (degradation stage
    /// 1+): region copies, table rewrites, and reprogramming. Child of the
    /// op span that triggered it.
    Compact,
}

impl SpanKind {
    /// Every kind, in a fixed report order.
    pub const ALL: [SpanKind; 12] = [
        SpanKind::Switch,
        SpanKind::CreateDomain,
        SpanKind::Alloc,
        SpanKind::Free,
        SpanKind::Relabel,
        SpanKind::DestroyDomain,
        SpanKind::IpiSend,
        SpanKind::ShootdownRecv,
        SpanKind::Trap,
        SpanKind::Reprogram,
        SpanKind::Fence,
        SpanKind::Compact,
    ];

    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Switch => "switch",
            SpanKind::CreateDomain => "create_domain",
            SpanKind::Alloc => "alloc",
            SpanKind::Free => "free",
            SpanKind::Relabel => "relabel",
            SpanKind::DestroyDomain => "destroy_domain",
            SpanKind::IpiSend => "ipi_send",
            SpanKind::ShootdownRecv => "shootdown_recv",
            SpanKind::Trap => "trap",
            SpanKind::Reprogram => "reprogram",
            SpanKind::Fence => "fence",
            SpanKind::Compact => "compact",
        }
    }

    /// Parse a wire label.
    pub fn from_label(label: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Whether this kind is a root monitor operation (as opposed to a
    /// shootdown child).
    pub fn is_operation(self) -> bool {
        matches!(
            self,
            SpanKind::Switch
                | SpanKind::CreateDomain
                | SpanKind::Alloc
                | SpanKind::Free
                | SpanKind::Relabel
                | SpanKind::DestroyDomain
        )
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One interval of monitor/synchronization work on the simulated cycle
/// axis, causally linked to the span that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Collector-unique id (1-based; 0 is never issued).
    pub id: u64,
    /// The causally enclosing span, if any.
    pub parent: Option<u64>,
    /// What the interval was spent on.
    pub kind: SpanKind,
    /// The hart the cycles were charged to.
    pub hart: u16,
    /// The domain the work was about, when one is identifiable.
    pub domain: Option<u32>,
    /// First cycle of the interval (global simulated clock).
    pub begin: u64,
    /// One past the last cycle of the interval; `end - begin` is the cost.
    pub end: u64,
}

impl SpanEvent {
    /// The interval's length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.begin)
    }

    /// One-line JSON object (the per-line payload of the span stream).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"id\":{}", self.id);
        match self.parent {
            Some(p) => {
                let _ = write!(out, ",\"parent\":{p}");
            }
            None => out.push_str(",\"parent\":null"),
        }
        let _ = write!(
            out,
            ",\"kind\":\"{}\",\"hart\":{}",
            self.kind.label(),
            self.hart
        );
        match self.domain {
            Some(d) => {
                let _ = write!(out, ",\"domain\":{d}");
            }
            None => out.push_str(",\"domain\":null"),
        }
        let _ = write!(out, ",\"begin\":{},\"end\":{}}}", self.begin, self.end);
        out
    }
}

/// Parse one span object (the per-line payload of the span stream).
pub fn parse_span(value: &JsonValue) -> Result<SpanEvent, String> {
    let u64_field = |key: &str| -> Result<u64, String> {
        value
            .get(key)
            .ok_or_else(|| format!("missing field \"{key}\""))?
            .as_u64()
            .ok_or_else(|| format!("field \"{key}\" is not a u64"))
    };
    let kind = value
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("field \"kind\" is not a string")?;
    Ok(SpanEvent {
        id: u64_field("id")?,
        parent: match value.get("parent") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("field \"parent\" is not a u64")?),
        },
        kind: SpanKind::from_label(kind)
            .ok_or_else(|| format!("field \"kind\" has unknown label \"{kind}\""))?,
        hart: u64_field("hart")?
            .try_into()
            .map_err(|_| "field \"hart\" is not a small integer".to_string())?,
        domain: match value.get("domain") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .and_then(|d| u32::try_from(d).ok())
                    .ok_or("field \"domain\" is not a u32")?,
            ),
        },
        begin: u64_field("begin")?,
        end: u64_field("end")?,
    })
}

/// A bounded, drop-counting collector of [`SpanEvent`]s.
///
/// Emission allocates ids monotonically even past capacity, so causal
/// links stay stable; spans beyond `capacity` are discarded and counted
/// in [`SpanCollector::dropped`] — lossy but honest, exactly like
/// [`RingSink`](crate::RingSink) overflow.
#[derive(Clone, Debug, Default)]
pub struct SpanCollector {
    spans: Vec<SpanEvent>,
    capacity: usize,
    enabled: bool,
    next_id: u64,
    dropped: u64,
}

impl SpanCollector {
    /// A disabled collector: emission is a no-op returning no id.
    pub fn disabled() -> SpanCollector {
        SpanCollector::default()
    }

    /// An enabled collector retaining at most `capacity` spans.
    pub fn bounded(capacity: usize) -> SpanCollector {
        SpanCollector {
            spans: Vec::new(),
            capacity,
            enabled: true,
            next_id: 0,
            dropped: 0,
        }
    }

    /// Whether emission records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one completed span, returning its id for use as a child's
    /// `parent`. Returns `None` when the collector is disabled.
    pub fn emit(
        &mut self,
        kind: SpanKind,
        hart: u16,
        domain: Option<u32>,
        parent: Option<u64>,
        begin: u64,
        end: u64,
    ) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        self.next_id += 1;
        let id = self.next_id;
        self.push(SpanEvent {
            id,
            parent,
            kind,
            hart,
            domain,
            begin,
            end,
        });
        Some(id)
    }

    /// Reserve the next id without recording anything — for a parent span
    /// whose `end` is only known after its children were emitted. Pair
    /// with [`SpanCollector::emit_reserved`]; an abandoned reservation
    /// (the operation errored) just leaves an id gap.
    pub fn reserve(&mut self) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        self.next_id += 1;
        Some(self.next_id)
    }

    /// Record a completed span whose `id` came from
    /// [`SpanCollector::reserve`]. Children may therefore precede their
    /// parent in emission order; readers only rely on the id link.
    pub fn emit_reserved(&mut self, span: SpanEvent) {
        if !self.enabled {
            return;
        }
        self.push(span);
    }

    fn push(&mut self, span: SpanEvent) {
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained spans, in emission order.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans discarded because the collector was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans emitted in total (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.next_id
    }

    /// Write the collected spans as a schema-versioned JSONL stream
    /// (header line + one span per line).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_jsonl<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(
            out,
            "{{\"schema\":{SCHEMA_VERSION},\"stream\":\"{SPAN_EVENT_STREAM}\",\"dropped\":{}}}",
            self.dropped
        )?;
        for span in &self.spans {
            writeln!(out, "{}", span.to_json())?;
        }
        Ok(())
    }
}

/// A parsed span stream: the header's drop count plus every span.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStream {
    /// Spans the producer discarded at capacity (from the header).
    pub dropped: u64,
    /// The retained spans, in emission order.
    pub spans: Vec<SpanEvent>,
}

impl SpanStream {
    /// Parse a span stream produced by [`SpanCollector::write_jsonl`].
    ///
    /// # Errors
    ///
    /// Rejects a missing/foreign header or a malformed span line.
    pub fn parse<R: BufRead>(mut input: R) -> Result<SpanStream, ReadError> {
        let mut header = String::new();
        if input.read_line(&mut header)? == 0 {
            return Err(ReadError::Schema {
                message: format!(
                    "span stream is empty: expected a header line like \
                     {{\"schema\":1,\"stream\":\"{SPAN_EVENT_STREAM}\"}}"
                ),
            });
        }
        let value = parse_json(header.trim_end()).map_err(|e| ReadError::Schema {
            message: format!("span header line is not valid JSON ({e})"),
        })?;
        check_schema(&value, "span stream header")?;
        match value.get("stream").and_then(JsonValue::as_str) {
            Some(SPAN_EVENT_STREAM) => {}
            Some(other) => {
                return Err(ReadError::Schema {
                    message: format!("stream is \"{other}\", expected \"{SPAN_EVENT_STREAM}\""),
                })
            }
            None => {
                return Err(ReadError::Schema {
                    message: "span header has no \"stream\" field".to_string(),
                })
            }
        }
        let dropped = value
            .get("dropped")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let mut spans = Vec::new();
        let mut line_no = 1;
        let mut buf = String::new();
        loop {
            buf.clear();
            if input.read_line(&mut buf)? == 0 {
                break;
            }
            line_no += 1;
            let line = buf.trim();
            if line.is_empty() {
                continue;
            }
            let value = parse_json(line).map_err(|e| ReadError::Parse {
                line: line_no,
                message: format!("not valid JSON ({e})"),
            })?;
            spans.push(parse_span(&value).map_err(|message| ReadError::Parse {
                line: line_no,
                message,
            })?);
        }
        Ok(SpanStream { dropped, spans })
    }

    /// Open and parse a span-stream file.
    ///
    /// # Errors
    ///
    /// As [`SpanStream::parse`], plus I/O failures opening the file.
    pub fn read_file<P: AsRef<Path>>(path: P) -> Result<SpanStream, ReadError> {
        SpanStream::parse(BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, kind: SpanKind) -> SpanEvent {
        SpanEvent {
            id,
            parent,
            kind,
            hart: 1,
            domain: Some(3),
            begin: 100,
            end: 480,
        }
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(SpanKind::from_label("nonesuch"), None);
    }

    #[test]
    fn span_json_round_trips() {
        for s in [
            span(1, None, SpanKind::Alloc),
            span(2, Some(1), SpanKind::ShootdownRecv),
            SpanEvent {
                domain: None,
                ..span(3, Some(2), SpanKind::Fence)
            },
        ] {
            let value = parse_json(&s.to_json()).expect("valid JSON");
            assert_eq!(parse_span(&value).expect("parses"), s);
        }
    }

    #[test]
    fn collector_caps_and_counts_drops() {
        let mut c = SpanCollector::bounded(2);
        let a = c.emit(SpanKind::Switch, 0, None, None, 0, 10).unwrap();
        let b = c.emit(SpanKind::Fence, 1, None, Some(a), 5, 10).unwrap();
        let d = c.emit(SpanKind::Trap, 1, None, Some(a), 5, 9).unwrap();
        assert_eq!((a, b, d), (1, 2, 3), "ids keep advancing past capacity");
        assert_eq!(c.len(), 2);
        assert_eq!(c.dropped(), 1);
        assert_eq!(c.emitted(), 3);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = SpanCollector::disabled();
        assert_eq!(c.emit(SpanKind::Switch, 0, None, None, 0, 10), None);
        assert!(c.is_empty());
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn stream_round_trips_including_drop_count() {
        let mut c = SpanCollector::bounded(2);
        c.emit(SpanKind::Alloc, 0, Some(1), None, 0, 90);
        c.emit(SpanKind::ShootdownRecv, 1, Some(1), Some(1), 40, 480);
        c.emit(SpanKind::Fence, 1, Some(1), Some(2), 300, 420);
        let mut bytes = Vec::new();
        c.write_jsonl(&mut bytes).unwrap();
        let stream = SpanStream::parse(bytes.as_slice()).expect("parses");
        assert_eq!(stream.dropped, 1);
        assert_eq!(stream.spans, c.spans());
    }

    #[test]
    fn foreign_stream_tag_is_rejected() {
        let raw = "{\"schema\":1,\"stream\":\"hpmp-walk-events\"}\n";
        let err = SpanStream::parse(raw.as_bytes()).expect_err("must reject");
        assert!(err.to_string().contains("hpmp-walk-events"), "{err}");
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let raw = "{\"schema\":9,\"stream\":\"hpmp-span-events\"}\n";
        assert!(SpanStream::parse(raw.as_bytes()).is_err());
    }
}
