//! User-memory arenas and access-pattern generation.
//!
//! Application workloads are expressed as *memory reference traces with
//! compute interleaved*: a process owns an arena of mapped pages, and a
//! pattern generator yields byte offsets into it. The trace is then replayed
//! through the full machine (TLB → walk → HPMP → caches), so each suite's
//! TLB-miss profile — the quantity that separates the three schemes — is a
//! property of its pattern, exactly as on the FPGA.

use hpmp_machine::Machine;
use hpmp_memsim::{AccessKind, SplitMix64, VirtAddr, PAGE_SIZE};
use hpmp_penglai::{OsError, Pid, SimOs, USER_HEAP_BASE};
use hpmp_trace::TraceSink;

/// A process-backed region of user memory.
#[derive(Clone, Copy, Debug)]
pub struct UserArena {
    /// Owning process.
    pub pid: Pid,
    /// Base virtual address.
    pub base: VirtAddr,
    /// Size in bytes.
    pub bytes: u64,
}

impl UserArena {
    /// Spawns a process and maps an arena of `pages` heap pages.
    ///
    /// # Errors
    ///
    /// Propagates OS errors (out of frames).
    pub fn create<S: TraceSink>(
        os: &mut SimOs,
        machine: &mut Machine<S>,
        pages: u64,
    ) -> Result<UserArena, OsError> {
        let (pid, _) = os.spawn(machine, 4)?;
        os.mmap(machine, pid, pages)?;
        Ok(UserArena {
            pid,
            base: VirtAddr::new(USER_HEAP_BASE),
            bytes: pages * PAGE_SIZE,
        })
    }

    /// The virtual address `offset` bytes into the arena (wrapped).
    pub fn va(&self, offset: u64) -> VirtAddr {
        VirtAddr::new(self.base.raw() + (offset % self.bytes))
    }
}

/// One step of a workload trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// Byte offset into the arena.
    pub offset: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Straight-line instructions executed before this access.
    pub compute: u64,
}

/// Replays a trace through the machine, returning total cycles.
///
/// # Errors
///
/// Propagates access faults.
pub fn replay<S: TraceSink>(
    os: &mut SimOs,
    machine: &mut Machine<S>,
    arena: &UserArena,
    trace: impl IntoIterator<Item = TraceStep>,
) -> Result<u64, OsError> {
    let mut cycles = 0;
    for step in trace {
        cycles += machine.run_compute(step.compute);
        cycles += os.user_access(machine, arena.pid, arena.va(step.offset), step.kind)?;
    }
    Ok(cycles)
}

/// As [`replay`], but interleaves instruction fetches over the process's
/// code pages: every step fetches from a rotating code page before its data
/// access, exercising the I-TLB the way an interpreter with a large text
/// segment does. `code_pages` is the rotation footprint (capped to what the
/// process actually mapped).
///
/// # Errors
///
/// Propagates access faults.
pub fn replay_with_code<S: TraceSink>(
    os: &mut SimOs,
    machine: &mut Machine<S>,
    arena: &UserArena,
    code_pages: u64,
    trace: impl IntoIterator<Item = TraceStep>,
) -> Result<u64, OsError> {
    use hpmp_memsim::PrivMode;
    use hpmp_penglai::USER_CODE_BASE;
    let mut cycles = 0;
    let mut ip = 0u64;
    let space_code_pages = code_pages.max(1);
    for step in trace {
        // One representative fetch per step (a taken branch to a new line).
        let code_va = VirtAddr::new(
            USER_CODE_BASE + (ip % space_code_pages) * PAGE_SIZE + (ip * 64) % PAGE_SIZE,
        );
        let space = os.space_of(arena.pid)?;
        cycles += machine.fetch(space, code_va, PrivMode::User)?.cycles;
        ip = ip.wrapping_add(1 + step.compute / 16);
        cycles += machine.run_compute(step.compute);
        cycles += os.user_access(machine, arena.pid, arena.va(step.offset), step.kind)?;
    }
    Ok(cycles)
}

/// Deterministic pattern generators. All take a seed so runs are
/// reproducible across schemes (the *same* trace is replayed on each).
#[derive(Clone, Debug)]
pub struct Patterns {
    rng: SplitMix64,
}

impl Patterns {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Patterns {
        Patterns {
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Sequential sweep: `n` accesses with the given stride, `write_ratio`
    /// in `[0,1]`, and fixed compute per access.
    pub fn sequential(
        &mut self,
        n: u64,
        stride: u64,
        write_ratio: f64,
        compute: u64,
    ) -> Vec<TraceStep> {
        (0..n)
            .map(|i| TraceStep {
                offset: i * stride,
                kind: self.kind(write_ratio),
                compute,
            })
            .collect()
    }

    /// Uniform random accesses over a working set of `ws_bytes`.
    pub fn random(
        &mut self,
        n: u64,
        ws_bytes: u64,
        write_ratio: f64,
        compute: u64,
    ) -> Vec<TraceStep> {
        (0..n)
            .map(|_| TraceStep {
                offset: self.rng.gen_range(0..ws_bytes.max(8)) & !7,
                kind: self.kind(write_ratio),
                compute,
            })
            .collect()
    }

    /// Skewed accesses: a fraction `hot_ratio` of references go to a small
    /// hot set of `hot_bytes`; the rest are uniform over `ws_bytes` — the
    /// shape of hash tables and graph frontiers.
    pub fn skewed(
        &mut self,
        n: u64,
        ws_bytes: u64,
        hot_bytes: u64,
        hot_ratio: f64,
        write_ratio: f64,
        compute: u64,
    ) -> Vec<TraceStep> {
        (0..n)
            .map(|_| {
                let offset = if self.rng.gen_bool(hot_ratio) {
                    self.rng.gen_range(0..hot_bytes.max(8))
                } else {
                    self.rng.gen_range(0..ws_bytes.max(8))
                };
                TraceStep {
                    offset: offset & !7,
                    kind: self.kind(write_ratio),
                    compute,
                }
            })
            .collect()
    }

    fn kind(&mut self, write_ratio: f64) -> AccessKind {
        if self.rng.gen_bool(write_ratio) {
            AccessKind::Write
        } else {
            AccessKind::Read
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::TeeBench;
    use hpmp_memsim::CoreKind;
    use hpmp_penglai::TeeFlavor;

    #[test]
    fn arena_round_trip() {
        let mut tee = TeeBench::boot(TeeFlavor::PenglaiPmp, CoreKind::Rocket);
        let arena = UserArena::create(&mut tee.os, &mut tee.machine, 8).unwrap();
        assert_eq!(arena.bytes, 8 * PAGE_SIZE);
        assert_eq!(arena.va(0), VirtAddr::new(USER_HEAP_BASE));
        assert_eq!(arena.va(arena.bytes + 8), VirtAddr::new(USER_HEAP_BASE + 8));
    }

    #[test]
    fn replay_accumulates_cycles() {
        let mut tee = TeeBench::boot(TeeFlavor::PenglaiHpmp, CoreKind::Rocket);
        let arena = UserArena::create(&mut tee.os, &mut tee.machine, 8).unwrap();
        let trace = Patterns::new(7).sequential(64, 64, 0.25, 4);
        let cycles = replay(&mut tee.os, &mut tee.machine, &arena, trace).unwrap();
        assert!(cycles > 64 * 4);
    }

    #[test]
    fn patterns_are_deterministic() {
        let a = Patterns::new(42).random(32, 1 << 20, 0.5, 1);
        let b = Patterns::new(42).random(32, 1 << 20, 0.5, 1);
        assert_eq!(a, b);
        let c = Patterns::new(43).random(32, 1 << 20, 0.5, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn skewed_pattern_respects_hot_set() {
        let steps = Patterns::new(1).skewed(1000, 1 << 24, 4096, 0.9, 0.0, 0);
        let hot = steps.iter().filter(|s| s.offset < 4096).count();
        assert!(hot > 800, "expected ~90% hot hits, got {hot}");
    }

    #[test]
    fn offsets_are_word_aligned() {
        for s in Patterns::new(9).random(100, 1 << 20, 0.5, 0) {
            assert_eq!(s.offset % 8, 0);
        }
    }
}
