//! Multi-hart (SMP) workload harness: one tenant enclave per hart over a
//! shared [`SmpSystem`], driven by a seeded deterministic interleaver.
//!
//! Each of the paper's workload names maps to an [`SmpWorkloadSpec`] —
//! batch size, footprint, compute share, and how often the tenant churns
//! memory (alloc + free, which triggers a cross-hart shootdown) or
//! round-trips through the host (domain switches, which broadcast
//! fences). The *access* path goes through each hart's real machine
//! ([`hpmp_machine::Machine::access`]) so private TLBs, PWCs and
//! PMPTW-Caches are exercised — the state the shootdown protocol exists to
//! keep coherent.
//!
//! Determinism: the hart interleaving comes from
//! [`HartScheduler`] and each hart's access pattern from
//! its own `SplitMix64` stream, both derived from the run seed. The run is
//! single-threaded regardless of `--jobs`, so its artifacts are
//! byte-identical at any parallelism.

use hpmp_machine::{ExecBackend, HartScheduler, Machine};
use hpmp_memsim::{
    AccessKind, CoreKind, FrameAllocator, PhysAddr, PrivMode, SplitMix64, VirtAddr, PAGE_SIZE,
};
use hpmp_paging::{AddressSpace, TranslationMode};
use hpmp_penglai::{DomainId, GmsLabel, MonitorError, SmpSystem, TeeFlavor};
use hpmp_trace::{Snapshot, SpanCollector, TimelineSink, TraceSink};

use crate::fixture::{config_for, RAM_BASE, RAM_SIZE};

/// Base virtual address of every tenant's data window.
const TENANT_VA_BASE: u64 = 0x10_0000;
/// Per-tenant PT-pool GMS size (NAPOT).
const POOL_SIZE: u64 = 256 * 1024;

/// Shape of one SMP workload: how each hart's tenant behaves between
/// scheduler steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmpWorkloadSpec {
    /// Workload name (one of the `hpmpsim` workload names).
    pub name: &'static str,
    /// Total scheduler steps (across all harts).
    pub rounds: u32,
    /// Data accesses per step.
    pub batch: u32,
    /// Mapped pages per tenant.
    pub footprint_pages: u64,
    /// Compute instructions per step.
    pub compute: u64,
    /// Every N steps of a hart, its tenant allocates and frees a region —
    /// a GMS permission change that must shoot down every other hart.
    /// 0 = never.
    pub churn_every: u32,
    /// Every N steps of a hart, it round-trips through the host — two
    /// domain switches, each broadcasting fences. 0 = never.
    pub switch_every: u32,
}

/// The spec for an `hpmpsim` workload name, if it has an SMP shape.
pub fn spec_for(name: &str) -> Option<SmpWorkloadSpec> {
    let spec = |rounds, batch, footprint_pages, compute, churn_every, switch_every, name| {
        SmpWorkloadSpec {
            name,
            rounds,
            batch,
            footprint_pages,
            compute,
            churn_every,
            switch_every,
        }
    };
    Some(match name {
        // Cold-start heavy: small footprints, frequent host round-trips.
        "serverless" => spec(96, 8, 64, 200, 0, 6, "serverless"),
        // Key-value serving: bigger working set, periodic host round-trips.
        "redis" => spec(128, 16, 128, 100, 0, 16, "redis"),
        // Graph analytics: large irregular footprint, no monitor traffic.
        "gap" => spec(96, 24, 256, 60, 0, 0, "gap"),
        // CPU-bound suite: compute dominates, little monitor traffic.
        "rv8" => spec(96, 8, 96, 500, 0, 0, "rv8"),
        // Syscall microbenchmarks: tiny touches, frequent switches.
        "lmbench" => spec(128, 4, 32, 40, 0, 8, "lmbench"),
        // Virtualized app stand-in: medium footprint and switch rate.
        "virtapp" => spec(64, 12, 128, 150, 0, 12, "virtapp"),
        // Multi-tenant churn: the shootdown stress case — allocs, frees
        // and switches continually.
        "tenancy" => spec(96, 6, 48, 80, 8, 4, "tenancy"),
        _ => return None,
    })
}

/// One hart's tenant: its enclave domain and user address space.
#[derive(Debug)]
pub struct SmpTenant {
    /// The enclave domain scheduled on this hart.
    pub domain: DomainId,
    /// The tenant's user address space (PT pages in its pool GMS).
    pub space: AddressSpace,
    /// Mapped pages starting at [`SmpTenant::va_base`].
    pub pages: u64,
    /// First mapped virtual address.
    pub va_base: VirtAddr,
}

/// Boots one enclave tenant per hart on `smp`: a PT-pool GMS (fast under
/// HPMP, so it becomes a segment), a data GMS sized to `footprint_pages`,
/// an address space with `footprint_pages` user pages mapped over the data
/// region, and a domain switch scheduling the tenant on its hart.
///
/// # Errors
///
/// Propagates monitor errors (undersized RAM, entry walls).
pub fn setup_tenants<S: TraceSink>(
    smp: &mut SmpSystem<S>,
    footprint_pages: u64,
) -> Result<Vec<SmpTenant>, MonitorError> {
    let pool_label = if smp.monitor().flavor() == TeeFlavor::PenglaiHpmp {
        GmsLabel::Fast
    } else {
        GmsLabel::Slow
    };
    let harts = smp.harts() as u16;
    let mut tenants = Vec::new();
    for hart in 0..harts {
        let (domain, _) = smp.create_domain_on(hart, POOL_SIZE, pool_label)?;
        let pool = smp.monitor().regions_of(domain)?[0].region;
        let data_size = (footprint_pages * PAGE_SIZE).max(PAGE_SIZE);
        let (data, _) = smp.alloc_on(hart, domain, data_size, GmsLabel::Slow)?;
        smp.switch_on(hart, domain)?;

        let mut frames = FrameAllocator::new(pool.base, pool.size);
        let machine = smp.machine(hart);
        let mut space = AddressSpace::new(
            TranslationMode::Sv39,
            hart + 1,
            machine.phys_mut(),
            &mut frames,
        )
        .expect("PT pool sized for the footprint");
        let va_base = VirtAddr::new(TENANT_VA_BASE);
        for page in 0..footprint_pages {
            space
                .map_page(
                    machine.phys_mut(),
                    &mut frames,
                    VirtAddr::new(va_base.raw() + page * PAGE_SIZE),
                    PhysAddr::new(data.base.raw() + page * PAGE_SIZE),
                    hpmp_memsim::Perms::RW,
                    true,
                )
                .expect("data GMS sized for the footprint");
        }
        tenants.push(SmpTenant {
            domain,
            space,
            pages: footprint_pages,
            va_base,
        });
    }
    Ok(tenants)
}

/// Result of one SMP workload run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmpOutcome {
    /// Harts simulated.
    pub harts: u32,
    /// Total modelled cycles: accesses + compute + monitor ops + shootdown
    /// stalls, across all harts.
    pub total_cycles: u64,
    /// Data accesses performed.
    pub accesses: u64,
    /// Shootdown IPIs delivered.
    pub ipis_delivered: u64,
}

/// Runs `spec` on `harts` harts under `flavor`, untraced.
///
/// # Errors
///
/// Propagates monitor errors.
pub fn run_smp(
    flavor: TeeFlavor,
    core: CoreKind,
    harts: usize,
    seed: u64,
    spec: SmpWorkloadSpec,
) -> Result<(SmpOutcome, Snapshot), MonitorError> {
    let machines = (0..harts).map(|_| Machine::new(config_for(core))).collect();
    let (outcome, snapshot, _) = run_smp_machines(machines, flavor, seed, spec)?;
    Ok((outcome, snapshot))
}

/// What an SMP run should record beyond counters. The default records
/// nothing and is exactly the untraced path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SmpTelemetrySpec {
    /// Cut a timeline slice every N global simulated cycles.
    pub snapshot_interval: Option<u64>,
    /// Collect monitor-operation/shootdown spans, retaining at most this
    /// many (overflow is counted in `trace.dropped.spans`).
    pub span_capacity: Option<usize>,
}

impl SmpTelemetrySpec {
    /// Default bound on retained spans when only an output path was given.
    pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 20;
}

/// The time-resolved artifacts of one SMP run.
#[derive(Clone, Debug, Default)]
pub struct SmpTelemetry {
    /// Periodic snapshot slices (present iff an interval was requested).
    /// Already finished: its slices re-sum to the returned snapshot.
    pub timeline: Option<TimelineSink>,
    /// Collected spans (present iff a capacity was requested).
    pub spans: Option<SpanCollector>,
}

/// Runs `spec` over pre-built machines (one per hart, e.g. each with its
/// own trace sink). Returns the outcome, the merged metrics snapshot
/// (`hart.<i>.*`, `smp.*`, `monitor.*`), and the per-hart sinks in hart
/// order.
///
/// # Errors
///
/// Propagates monitor errors.
pub fn run_smp_machines<S: TraceSink>(
    machines: Vec<Machine<S>>,
    flavor: TeeFlavor,
    seed: u64,
    spec: SmpWorkloadSpec,
) -> Result<(SmpOutcome, Snapshot, Vec<S>), MonitorError> {
    let (outcome, snapshot, sinks, _) =
        run_smp_telemetry(machines, flavor, seed, spec, SmpTelemetrySpec::default())?;
    Ok((outcome, snapshot, sinks))
}

/// As [`run_smp_machines`], additionally recording time-resolved
/// telemetry: timeline slices cut on the global simulated clock and
/// monitor-operation/shootdown spans. Telemetry is pure observation — the
/// outcome and snapshot are identical to the untraced run (modulo the
/// `trace.*` accounting counters), and both artifacts are byte-identical
/// at any `--jobs` because boundaries live on the simulated clock.
///
/// # Errors
///
/// Propagates monitor errors.
pub fn run_smp_telemetry<S: TraceSink>(
    machines: Vec<Machine<S>>,
    flavor: TeeFlavor,
    seed: u64,
    spec: SmpWorkloadSpec,
    telemetry: SmpTelemetrySpec,
) -> Result<(SmpOutcome, Snapshot, Vec<S>, SmpTelemetry), MonitorError> {
    let harts = machines.len();
    let ram = hpmp_core::PmpRegion::new(PhysAddr::new(RAM_BASE), RAM_SIZE);
    let mut smp = SmpSystem::boot_machines(machines, flavor, ram)?;
    if let Some(capacity) = telemetry.span_capacity {
        // Enabled before tenant setup so the boot-phase ops are spanned
        // too — the paper's boot → churn → steady-state story needs them.
        smp.enable_spans(capacity);
    }
    let mut timeline = telemetry.snapshot_interval.map(TimelineSink::new);
    let tenants = setup_tenants(&mut smp, spec.footprint_pages)?;

    // Per-hart access streams, decorrelated from the interleaver and from
    // each other.
    let mut rngs: Vec<SplitMix64> = (0..harts as u64)
        .map(|h| SplitMix64::seed_from_u64(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(h + 1))))
        .collect();
    let mut steps_of: Vec<u32> = vec![0; harts];
    let mut scheduler = HartScheduler::fair(seed, harts);

    let mut total_cycles = 0u64;
    let mut accesses = 0u64;
    for _ in 0..spec.rounds {
        let hart = scheduler.next_hart();
        let h = usize::from(hart);
        steps_of[h] += 1;
        let tenant = &tenants[h];

        let machine = smp.machine(hart);
        for i in 0..spec.batch {
            let page = rngs[h].gen_range(0..tenant.pages);
            let va = VirtAddr::new(tenant.va_base.raw() + page * PAGE_SIZE);
            let kind = if i % 4 == 3 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = machine
                .access(&tenant.space, va, kind, PrivMode::User)
                .expect("tenant reaches its own memory");
            total_cycles += out.cycles;
            accesses += 1;
        }
        total_cycles += machine.run_compute(spec.compute);

        if spec.churn_every != 0 && steps_of[h].is_multiple_of(spec.churn_every) {
            // Grow-then-shrink: a GMS grant and revoke, each a shootdown.
            let (region, cycles) = smp.alloc_on(hart, tenant.domain, 64 * 1024, GmsLabel::Slow)?;
            total_cycles += cycles;
            total_cycles += smp.free_on(hart, tenant.domain, region.base)?;
        }
        if spec.switch_every != 0 && steps_of[h].is_multiple_of(spec.switch_every) {
            // Host round-trip: an ecall-style exit and re-entry.
            total_cycles += smp.switch_on(hart, DomainId::HOST)?;
            total_cycles += smp.switch_on(hart, tenant.domain)?;
        }
        if let Some(tl) = timeline.as_mut() {
            // Boundaries are checked on the deterministic simulated clock
            // at round granularity: slices are ≥ interval wide, and
            // byte-identical at any `--jobs`/interleaving seed.
            let now = smp.global_cycles();
            if tl.due(now) {
                tl.record(now, &smp.metrics_snapshot());
            }
        }
    }

    smp.flush_sinks();
    let snapshot = smp.metrics_snapshot();
    if let Some(tl) = timeline.as_mut() {
        // The tail slice closes against the exact snapshot returned below,
        // so re-summing every slice reproduces it byte-for-byte.
        tl.finish(smp.global_cycles(), &snapshot);
    }
    let spans = telemetry.span_capacity.map(|_| smp.take_spans());
    let outcome = SmpOutcome {
        harts: harts as u32,
        total_cycles,
        accesses,
        ipis_delivered: snapshot.value("smp.ipis_delivered"),
    };
    Ok((
        outcome,
        snapshot,
        smp.into_sinks(),
        SmpTelemetry { timeline, spans },
    ))
}

/// As [`run_smp`], selecting the SMP execution backend. The two backends
/// produce identical outcomes and metric snapshots by construction (the
/// cross-backend conformance battery byte-compares them); `Threaded` runs
/// the epochs on real OS threads, so only its wall-clock differs.
///
/// # Errors
///
/// Propagates monitor errors.
pub fn run_smp_backend(
    flavor: TeeFlavor,
    core: CoreKind,
    harts: usize,
    seed: u64,
    spec: SmpWorkloadSpec,
    backend: ExecBackend,
) -> Result<(SmpOutcome, Snapshot), MonitorError> {
    match backend {
        ExecBackend::Deterministic => run_smp(flavor, core, harts, seed, spec),
        ExecBackend::Threaded => {
            let machines = (0..harts).map(|_| Machine::new(config_for(core))).collect();
            let (outcome, snapshot, _) = run_smp_threaded(machines, flavor, seed, spec)?;
            Ok((outcome, snapshot))
        }
    }
}

/// One scheduler round of the precomputed interleaving: which hart runs,
/// and whether its tenant churns memory or round-trips through the host
/// afterwards (either makes the round *serial* — it closes an epoch).
#[derive(Clone, Copy, Debug)]
struct RoundPlan {
    hart: u16,
    churn: bool,
    switch: bool,
}

impl RoundPlan {
    fn serial(self) -> bool {
        self.churn || self.switch
    }
}

/// One hart's private working set for the threaded backend: everything its
/// epoch body needs, moved onto the hart's thread each epoch.
#[derive(Debug)]
struct HartWork {
    tenant: SmpTenant,
    rng: SplitMix64,
    /// Rounds assigned to this hart in the current epoch.
    rounds: u32,
}

/// Runs `spec` under the **threaded** backend: the same seeded
/// interleaving as [`run_smp_machines`], but with the scheduler decisions
/// precomputed and the rounds between monitor operations executed as
/// parallel epochs — one OS thread per hart, each against its own
/// [`hpmp_memsim::PhysMem`] shard and metric arena.
///
/// An epoch is a maximal run of rounds ending at the first *serial* round
/// (one whose hart churns memory or switches domains), inclusive: a
/// round's accesses precede its monitor ops in the deterministic order, so
/// the closing round's accesses run in the parallel phase and only its
/// monitor ops run serially after the join. Each hart's access stream
/// depends only on its own RNG and its number of assigned rounds, and
/// counters are order-independent sums, so the outcome and snapshot are
/// byte-identical to the deterministic backend's.
///
/// Time-resolved telemetry (timelines, spans) requires the deterministic
/// backend and is not offered here.
///
/// # Errors
///
/// Propagates monitor errors.
pub fn run_smp_threaded<S: TraceSink + Send>(
    machines: Vec<Machine<S>>,
    flavor: TeeFlavor,
    seed: u64,
    spec: SmpWorkloadSpec,
) -> Result<(SmpOutcome, Snapshot, Vec<S>), MonitorError> {
    let harts = machines.len();
    let ram = hpmp_core::PmpRegion::new(PhysAddr::new(RAM_BASE), RAM_SIZE);
    let mut smp = SmpSystem::boot_machines(machines, flavor, ram)?;
    let tenants = setup_tenants(&mut smp, spec.footprint_pages)?;

    // Precompute the interleaving the deterministic loop would draw,
    // round by round.
    let mut scheduler = HartScheduler::fair(seed, harts);
    let mut steps_of = vec![0u32; harts];
    let plan: Vec<RoundPlan> = (0..spec.rounds)
        .map(|_| {
            let hart = scheduler.next_hart();
            let h = usize::from(hart);
            steps_of[h] += 1;
            RoundPlan {
                hart,
                churn: spec.churn_every != 0 && steps_of[h].is_multiple_of(spec.churn_every),
                switch: spec.switch_every != 0 && steps_of[h].is_multiple_of(spec.switch_every),
            }
        })
        .collect();

    let mut works: Vec<HartWork> = tenants
        .into_iter()
        .enumerate()
        .map(|(h, tenant)| HartWork {
            tenant,
            rng: SplitMix64::seed_from_u64(
                seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(h as u64 + 1)),
            ),
            rounds: 0,
        })
        .collect();

    // All setup done: unshare physical memory and go parallel.
    smp.enable_threaded();

    let mut total_cycles = 0u64;
    let mut accesses = 0u64;
    let mut start = 0usize;
    while start < plan.len() {
        // Epoch rounds `[start, stop)`; `stop - 1` is the first serial
        // round, or the tail of the plan.
        let mut stop = start;
        while stop < plan.len() {
            let serial = plan[stop].serial();
            stop += 1;
            if serial {
                break;
            }
        }
        for work in works.iter_mut() {
            work.rounds = 0;
        }
        for round in &plan[start..stop] {
            works[usize::from(round.hart)].rounds += 1;
        }
        let per_hart = smp.parallel_epoch(&mut works, |_, machine, work| {
            let mut cycles = 0u64;
            let mut accesses = 0u64;
            for _ in 0..work.rounds {
                for i in 0..spec.batch {
                    let page = work.rng.gen_range(0..work.tenant.pages);
                    let va = VirtAddr::new(work.tenant.va_base.raw() + page * PAGE_SIZE);
                    let kind = if i % 4 == 3 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    let out = machine
                        .access(&work.tenant.space, va, kind, PrivMode::User)
                        .expect("tenant reaches its own memory");
                    cycles += out.cycles;
                    accesses += 1;
                }
                cycles += machine.run_compute(spec.compute);
            }
            (cycles, accesses)
        });
        for (cycles, count) in per_hart {
            total_cycles += cycles;
            accesses += count;
        }
        // Serial phase: the epoch-closing round's monitor ops, in the
        // deterministic order (churn before switch).
        let last = plan[stop - 1];
        if last.serial() {
            let hart = last.hart;
            let domain = works[usize::from(hart)].tenant.domain;
            if last.churn {
                let (region, cycles) = smp.alloc_on(hart, domain, 64 * 1024, GmsLabel::Slow)?;
                total_cycles += cycles;
                total_cycles += smp.free_on(hart, domain, region.base)?;
            }
            if last.switch {
                total_cycles += smp.switch_on(hart, DomainId::HOST)?;
                total_cycles += smp.switch_on(hart, domain)?;
            }
        }
        start = stop;
    }

    // Drain shootdowns posted by the final serial phase, then snapshot.
    smp.quiesce();
    smp.flush_sinks();
    let snapshot = smp.metrics_snapshot();
    let outcome = SmpOutcome {
        harts: harts as u32,
        total_cycles,
        accesses,
        ipis_delivered: snapshot.value("smp.ipis_delivered"),
    };
    Ok((outcome, snapshot, smp.into_sinks()))
}

/// As [`run_smp`] but with one sink per hart, returning the sinks.
///
/// # Errors
///
/// As [`run_smp`].
pub fn run_smp_with_sinks<S: TraceSink>(
    flavor: TeeFlavor,
    core: CoreKind,
    seed: u64,
    spec: SmpWorkloadSpec,
    sinks: Vec<S>,
) -> Result<(SmpOutcome, Snapshot, Vec<S>), MonitorError> {
    let machines = sinks
        .into_iter()
        .map(|sink| Machine::with_sink(config_for(core), sink))
        .collect();
    run_smp_machines(machines, flavor, seed, spec)
}

/// The `hpmpsim` workload names that have SMP shapes, in report order.
pub const SMP_WORKLOADS: [&str; 7] = [
    "serverless",
    "redis",
    "gap",
    "rv8",
    "lmbench",
    "virtapp",
    "tenancy",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_name_has_a_spec() {
        for name in SMP_WORKLOADS {
            assert!(spec_for(name).is_some(), "{name} has no SMP spec");
        }
        assert!(spec_for("nonesuch").is_none());
    }

    #[test]
    fn runs_deterministically() {
        let spec = spec_for("tenancy").unwrap();
        let (a, snap_a) = run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 2, 42, spec).unwrap();
        let (b, snap_b) = run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 2, 42, spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(snap_a.to_json(), snap_b.to_json());
        let (c, _) = run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 2, 43, spec).unwrap();
        assert_ne!(a.total_cycles, c.total_cycles, "seed must matter");
    }

    #[test]
    fn churny_workload_shoots_down_remote_harts() {
        let spec = spec_for("tenancy").unwrap();
        let (out, snap) = run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 4, 7, spec).unwrap();
        assert!(out.ipis_delivered > 0, "churn must trigger shootdowns");
        for hart in 0..4 {
            assert!(
                snap.value(&format!("hart.{hart}.ipis_received")) > 0,
                "hart {hart} never received an IPI"
            );
        }
        // Every hart did real memory work.
        for hart in 0..4 {
            assert!(snap.value(&format!("hart.{hart}.machine.accesses")) > 0);
        }
    }

    #[test]
    fn telemetry_slices_resum_to_the_final_snapshot() {
        use hpmp_machine::MachineConfig;

        let spec = spec_for("tenancy").unwrap();
        let telemetry = SmpTelemetrySpec {
            snapshot_interval: Some(20_000),
            span_capacity: Some(1 << 16),
        };
        let machines = (0..2)
            .map(|_| Machine::new(MachineConfig::rocket()))
            .collect();
        let (_, snapshot, _, out) =
            run_smp_telemetry(machines, TeeFlavor::PenglaiHpmp, 42, spec, telemetry).unwrap();
        let timeline = out.timeline.expect("requested");
        assert!(timeline.slices().len() > 1, "run spans several slices");
        assert_eq!(
            timeline.resum().to_json_versioned(),
            snapshot.to_json_versioned(),
            "slice deltas must re-sum to the final snapshot byte-for-byte"
        );
        let spans = out.spans.expect("requested");
        assert!(!spans.is_empty(), "tenancy churns: ops must be spanned");
        assert_eq!(spans.dropped(), 0);
    }

    #[test]
    fn telemetry_is_pure_observation_and_deterministic() {
        use hpmp_machine::MachineConfig;

        let spec = spec_for("tenancy").unwrap();
        let run = |telemetry| {
            let machines = (0..2)
                .map(|_| Machine::new(MachineConfig::rocket()))
                .collect();
            run_smp_telemetry(machines, TeeFlavor::PenglaiHpmp, 42, spec, telemetry).unwrap()
        };
        let telemetry = SmpTelemetrySpec {
            snapshot_interval: Some(25_000),
            span_capacity: Some(1 << 16),
        };
        let (out_plain, _, _, _) = run(SmpTelemetrySpec::default());
        let (out_a, _, _, tel_a) = run(telemetry);
        let (out_b, _, _, tel_b) = run(telemetry);
        assert_eq!(out_plain, out_a, "telemetry must not perturb the run");

        let render = |tel: &SmpTelemetry| {
            let mut bytes = Vec::new();
            tel.timeline
                .as_ref()
                .unwrap()
                .write_jsonl(&mut bytes)
                .unwrap();
            tel.spans.as_ref().unwrap().write_jsonl(&mut bytes).unwrap();
            bytes
        };
        assert_eq!(out_a, out_b);
        assert_eq!(
            render(&tel_a),
            render(&tel_b),
            "telemetry artifacts must be byte-identical across runs"
        );
    }

    #[test]
    fn threaded_backend_matches_deterministic_exactly() {
        let spec = spec_for("tenancy").unwrap();
        let (det, det_snap) =
            run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 2, 42, spec).unwrap();
        let (thr, thr_snap) = run_smp_backend(
            TeeFlavor::PenglaiHpmp,
            CoreKind::Rocket,
            2,
            42,
            spec,
            ExecBackend::Threaded,
        )
        .unwrap();
        assert_eq!(det, thr, "outcomes must agree across backends");
        assert_eq!(
            det_snap.to_json_versioned(),
            thr_snap.to_json_versioned(),
            "merged counter snapshots must be byte-identical across backends"
        );
    }

    #[test]
    fn churn_rate_orders_shootdown_traffic() {
        // gap performs no monitor ops after setup, so its IPI count is the
        // fixed setup cost; tenancy churns continually and must exceed it.
        let gap = spec_for("gap").unwrap();
        let tenancy = spec_for("tenancy").unwrap();
        let (quiet, _) = run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 2, 7, gap).unwrap();
        let (churny, _) = run_smp(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 2, 7, tenancy).unwrap();
        assert!(
            churny.ipis_delivered > quiet.ipis_delivered,
            "churn must add shootdowns: {} vs {}",
            churny.ipis_delivered,
            quiet.ipis_delivered
        );
    }
}
