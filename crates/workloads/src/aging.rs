//! Fleet-churn aging campaign: thousands of enclave lifecycles over a
//! deliberately small physical arena, long enough to exhaust it and drive
//! the monitor's staged degradation ladder (normal → compacting →
//! table-only → admission control).
//!
//! The fleet is CoVE-style: a few **pinned residents** (one per hart,
//! with live guest page tables — the domains a cloud host cannot relocate)
//! plus a churning population of short-lived enclaves. A seeded fraction
//! of churn enclaves is *immortal* — never destroyed — so fragmentation
//! and base load ratchet upward until fast NAPOT placement fails, then
//! compaction runs out of holes, then even page-granular table mode runs
//! dry and the monitor pushes `ResourceExhausted` backpressure at the
//! host, which relieves it by evicting the oldest mortal enclave.
//!
//! Every churn enclave carries a **canary**: a seeded `u64` written at its
//! region base at create time and asserted at destroy time *from the
//! region's current base* — if compaction relocated the enclave, the
//! canary proves its bytes moved with it. A host-side **probe** after
//! every lifecycle compares the hardware fast path against the monitor's
//! cache-free oracle at the affected base, so a fast-path grant the oracle
//! denies (the fail-open bug class) is counted, not silently survived.
//!
//! Determinism: all churn decisions come from one `SplitMix64` stream and
//! every monitor operation is serial under both backends, so outcomes and
//! metric snapshots are byte-identical across `--jobs` and across the
//! deterministic/threaded backends (the access phases between lifecycles
//! are the only parallel work, and those are per-hart-RNG pure).

use hpmp_core::PmptwCache;
use hpmp_machine::{ExecBackend, Machine};
use hpmp_memsim::{AccessKind, CoreKind, PhysAddr, PrivMode, SplitMix64, VirtAddr, PAGE_SIZE};
use hpmp_penglai::{DegradeStage, DomainId, GmsLabel, MonitorError, SmpSystem, TeeFlavor};
use hpmp_trace::{Snapshot, SpanCollector, TraceSink};

use crate::fixture::{config_for, RAM_BASE};
use crate::smp::{setup_tenants, SmpTenant};

/// NAPOT RAM for the aging fleet: the monitor's 128 MiB floor, leaving a
/// ~64 MiB region arena — small enough that a thousand-lifecycle churn
/// run exhausts it and walks the whole degradation ladder.
pub const AGING_RAM_SIZE: u64 = 128 << 20;

/// Default lifecycle count for the `aging` scenario.
pub const DEFAULT_CHURN_OPS: u32 = 1200;

/// Shape of one aging campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AgingSpec {
    /// Enclave lifecycle operations (creates/destroys, reliefs included).
    pub churn_ops: u32,
    /// Mapped pages per pinned resident.
    pub resident_pages: u64,
    /// Resident data accesses per hart between lifecycles.
    pub batch: u32,
}

impl AgingSpec {
    /// The spec the `hpmpsim --scenario aging` run uses, with `churn_ops`
    /// lifecycles.
    pub fn with_ops(churn_ops: u32) -> AgingSpec {
        AgingSpec {
            churn_ops,
            resident_pages: 16,
            batch: 4,
        }
    }
}

/// One live churn enclave.
#[derive(Clone, Copy, Debug)]
struct ChurnEnclave {
    domain: DomainId,
    canary: u64,
    immortal: bool,
}

/// Everything one aging run observed. `Eq` so the cross-backend
/// conformance battery can compare runs outright.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AgingOutcome {
    /// Harts simulated.
    pub harts: u32,
    /// Lifecycle operations performed.
    pub ops: u32,
    /// Enclaves created (reliefs' retries included).
    pub creates: u64,
    /// Enclaves destroyed (reliefs included).
    pub destroys: u64,
    /// Creates refused with [`MonitorError::ResourceExhausted`].
    pub rejected: u64,
    /// Creates refused at the PMP flavour's entry wall.
    pub entry_wall_hits: u64,
    /// Evictions forced by backpressure (oldest mortal destroyed).
    pub reliefs: u64,
    /// Highest degradation stage reached (level, 0–3).
    pub max_stage: u8,
    /// Stage at the end of the run (level, 0–3).
    pub final_stage: u8,
    /// `(op index, stage level)` at every stage change, in order.
    pub stage_path: Vec<(u32, u8)>,
    /// Canaries that did not survive to destroy time. Must be zero: a
    /// non-zero count means compaction lost enclave bytes.
    pub canary_failures: u64,
    /// Fast-path/oracle disagreements observed by the host-side probe.
    /// Must be zero.
    pub oracle_violations: u64,
    /// Enclaves still live when the run ended (residents excluded).
    pub live_at_end: u32,
    /// Resident data accesses performed.
    pub accesses: u64,
    /// Total modelled cycles (accesses + monitor ops + stalls).
    pub total_cycles: u64,
    /// Shootdown IPIs delivered.
    pub ipis_delivered: u64,
}

/// Per-hart working set for the access phases.
#[derive(Debug)]
struct ResidentWork {
    tenant: SmpTenant,
    rng: SplitMix64,
}

fn access_phase<S: TraceSink>(
    machine: &mut Machine<S>,
    work: &mut ResidentWork,
    batch: u32,
) -> (u64, u64) {
    let mut cycles = 0u64;
    let mut accesses = 0u64;
    for i in 0..batch {
        let page = work.rng.gen_range(0..work.tenant.pages);
        let va = VirtAddr::new(work.tenant.va_base.raw() + page * PAGE_SIZE);
        let kind = if i % 4 == 3 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let out = machine
            .access(&work.tenant.space, va, kind, PrivMode::User)
            .expect("resident reaches its own memory");
        cycles += out.cycles;
        accesses += 1;
    }
    (cycles, accesses)
}

/// Draws the next churn enclave size: 64 KiB to 4 MiB, geometric.
fn draw_size(rng: &mut SplitMix64) -> u64 {
    let mut size = 64 * 1024;
    while size < (4 << 20) && rng.gen_range(0..2) == 1 {
        size *= 2;
    }
    size
}

/// Runs the aging campaign on fresh machines.
///
/// # Errors
///
/// Propagates monitor errors other than the backpressure/entry-wall
/// refusals the campaign is designed to absorb.
pub fn run_aging(
    flavor: TeeFlavor,
    core: CoreKind,
    harts: usize,
    seed: u64,
    spec: AgingSpec,
    backend: ExecBackend,
) -> Result<(AgingOutcome, Snapshot), MonitorError> {
    let machines = (0..harts).map(|_| Machine::new(config_for(core))).collect();
    let (outcome, snapshot, _) = run_aging_machines(machines, flavor, seed, spec, backend)?;
    Ok((outcome, snapshot))
}

/// As [`run_aging`], over pre-built machines (one per hart), returning
/// the per-hart sinks.
///
/// # Errors
///
/// As [`run_aging`].
pub fn run_aging_machines<S: TraceSink + Send>(
    machines: Vec<Machine<S>>,
    flavor: TeeFlavor,
    seed: u64,
    spec: AgingSpec,
    backend: ExecBackend,
) -> Result<(AgingOutcome, Snapshot, Vec<S>), MonitorError> {
    let (outcome, snapshot, _, sinks) =
        run_aging_inner(machines, flavor, seed, spec, backend, None)?;
    Ok((outcome, snapshot, sinks))
}

/// As [`run_aging_machines`], with span collection on (deterministic
/// backend only — spans live on the serial global clock): every monitor
/// op opens a span and each compaction pass emits a `compact` child span,
/// so `hpmp-analyze profile --spans` can attribute degradation cycles.
///
/// # Errors
///
/// As [`run_aging`].
pub fn run_aging_spans<S: TraceSink + Send>(
    machines: Vec<Machine<S>>,
    flavor: TeeFlavor,
    seed: u64,
    spec: AgingSpec,
    span_capacity: usize,
) -> Result<(AgingOutcome, Snapshot, SpanCollector, Vec<S>), MonitorError> {
    run_aging_inner(
        machines,
        flavor,
        seed,
        spec,
        ExecBackend::Deterministic,
        Some(span_capacity),
    )
}

fn run_aging_inner<S: TraceSink + Send>(
    machines: Vec<Machine<S>>,
    flavor: TeeFlavor,
    seed: u64,
    spec: AgingSpec,
    backend: ExecBackend,
    span_capacity: Option<usize>,
) -> Result<(AgingOutcome, Snapshot, SpanCollector, Vec<S>), MonitorError> {
    let harts = machines.len();
    let ram = hpmp_core::PmpRegion::new(PhysAddr::new(RAM_BASE), AGING_RAM_SIZE);
    let mut smp = SmpSystem::boot_machines(machines, flavor, ram)?;
    if let Some(capacity) = span_capacity {
        smp.enable_spans(capacity);
    }

    // Pinned residents: live guest page tables make them immovable.
    let tenants = setup_tenants(&mut smp, spec.resident_pages)?;
    for tenant in &tenants {
        smp.pin_domain(tenant.domain)?;
    }
    let mut works: Vec<ResidentWork> = tenants
        .into_iter()
        .enumerate()
        .map(|(h, tenant)| ResidentWork {
            tenant,
            rng: SplitMix64::seed_from_u64(
                seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(h as u64 + 1)),
            ),
        })
        .collect();
    if backend == ExecBackend::Threaded {
        smp.enable_threaded();
    }

    // All lifecycle decisions come from this one stream.
    let mut churn_rng = SplitMix64::seed_from_u64(seed ^ 0xA61C_E5EB_D5C3_A6E5);
    let mut live: Vec<ChurnEnclave> = Vec::new();
    let mut out = AgingOutcome {
        harts: harts as u32,
        ops: spec.churn_ops,
        ..AgingOutcome::default()
    };
    let mut stage = DegradeStage::Normal;
    out.stage_path.push((0, stage.level()));

    for op in 0..spec.churn_ops {
        // Parallel phase: residents touch their working sets.
        match backend {
            ExecBackend::Deterministic => {
                for (h, work) in works.iter_mut().enumerate() {
                    let (cycles, accesses) = access_phase(smp.machine(h as u16), work, spec.batch);
                    out.total_cycles += cycles;
                    out.accesses += accesses;
                }
            }
            ExecBackend::Threaded => {
                for (cycles, accesses) in smp.parallel_epoch(&mut works, |_, machine, work| {
                    access_phase(machine, work, spec.batch)
                }) {
                    out.total_cycles += cycles;
                    out.accesses += accesses;
                }
            }
        }

        // Serial phase: one lifecycle op, driven from a rotating hart that
        // ecalls out to the host for the management call.
        let hart = (op as usize % harts) as u16;
        let resident = works[usize::from(hart)].tenant.domain;
        out.total_cycles += smp.switch_on(hart, DomainId::HOST)?;

        let mortals = live.iter().filter(|e| !e.immortal).count();
        let create = mortals == 0 || churn_rng.gen_range(0..10) < 6;
        if create {
            let size = draw_size(&mut churn_rng);
            let immortal = churn_rng.gen_range(0..8) == 0;
            let canary = churn_rng.next_u64();
            match create_churn_enclave(&mut smp, hart, size, canary, immortal, &mut live) {
                Ok(cycles) => {
                    out.creates += 1;
                    out.total_cycles += cycles;
                }
                Err(refusal) if is_refusal(&refusal) => {
                    match live.iter().position(|e| !e.immortal) {
                        // Backpressure relief: evict the oldest mortal,
                        // then retry the same admission once.
                        Some(oldest) => {
                            out.reliefs += 1;
                            out.total_cycles +=
                                destroy_churn_enclave(&mut smp, hart, oldest, &mut live, &mut out)?;
                            out.destroys += 1;
                            match create_churn_enclave(
                                &mut smp, hart, size, canary, immortal, &mut live,
                            ) {
                                Ok(cycles) => {
                                    out.creates += 1;
                                    out.total_cycles += cycles;
                                }
                                Err(e) => count_refusal(e, &mut out)?,
                            }
                        }
                        None => count_refusal(refusal, &mut out)?,
                    }
                }
                Err(e) => return Err(e),
            }
        } else {
            let idx = churn_rng.gen_range(0..mortals as u64) as usize;
            let victim = live
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.immortal)
                .nth(idx)
                .map(|(i, _)| i)
                .expect("mortal index in range");
            out.total_cycles += destroy_churn_enclave(&mut smp, hart, victim, &mut live, &mut out)?;
            out.destroys += 1;
        }

        out.total_cycles += smp.switch_on(hart, resident)?;

        let now = smp.monitor().degrade_stage();
        if now != stage {
            stage = now;
            out.stage_path.push((op + 1, stage.level()));
        }
        out.max_stage = out.max_stage.max(stage.level());
    }

    smp.quiesce();
    smp.flush_sinks();
    out.final_stage = smp.monitor().degrade_stage().level();
    out.live_at_end = live.len() as u32;
    let snapshot = smp.metrics_snapshot();
    out.ipis_delivered = snapshot.value("smp.ipis_delivered");
    let spans = smp.take_spans();
    Ok((out, snapshot, spans, smp.into_sinks()))
}

/// Whether `err` is one of the refusals the campaign absorbs rather than
/// propagates.
fn is_refusal(err: &MonitorError) -> bool {
    matches!(
        err,
        MonitorError::ResourceExhausted { .. }
            | MonitorError::OutOfPmpEntries
            | MonitorError::OutOfMemory
    )
}

fn count_refusal(err: MonitorError, out: &mut AgingOutcome) -> Result<(), MonitorError> {
    match err {
        MonitorError::ResourceExhausted { .. } | MonitorError::OutOfMemory => {
            out.rejected += 1;
            Ok(())
        }
        MonitorError::OutOfPmpEntries => {
            out.entry_wall_hits += 1;
            Ok(())
        }
        other => Err(other),
    }
}

/// Creates one churn enclave, stamps its canary, and probes the host's
/// fast path against the oracle at the new base.
fn create_churn_enclave<S: TraceSink>(
    smp: &mut SmpSystem<S>,
    hart: u16,
    size: u64,
    canary: u64,
    immortal: bool,
    live: &mut Vec<ChurnEnclave>,
) -> Result<u64, MonitorError> {
    let (domain, cycles) = smp.create_domain_on(hart, size, GmsLabel::Slow)?;
    let base = smp.monitor().regions_of(domain)?[0].region.base;
    smp.machine(hart).phys_mut().write_u64(base, canary);
    live.push(ChurnEnclave {
        domain,
        canary,
        immortal,
    });
    Ok(cycles)
}

/// Destroys the churn enclave at `idx`, first asserting its canary from
/// the region's *current* (possibly relocated) base and probing the
/// fast-path/oracle agreement at it.
fn destroy_churn_enclave<S: TraceSink>(
    smp: &mut SmpSystem<S>,
    hart: u16,
    idx: usize,
    live: &mut Vec<ChurnEnclave>,
    out: &mut AgingOutcome,
) -> Result<u64, MonitorError> {
    let enclave = live.remove(idx);
    let base = smp.monitor().regions_of(enclave.domain)?[0].region.base;
    if smp.machine(hart).phys().read_u64(base) != enclave.canary {
        out.canary_failures += 1;
    }
    // Probe before teardown: the host (scheduled on `hart` during the
    // management call) must be *denied* at a live enclave base, by both
    // the fast path and the oracle; any disagreement is a violation.
    out.oracle_violations += u64::from(probe_disagrees(smp, hart, base));
    let cycles = smp.destroy_domain_on(hart, enclave.domain)?;
    // And after: the freed range is back under the host's backdrop.
    out.oracle_violations += u64::from(probe_disagrees(smp, hart, base));
    Ok(cycles)
}

/// Whether the fast path and the cache-free oracle disagree about `hart`'s
/// scheduled domain reading `addr`.
fn probe_disagrees<S: TraceSink>(smp: &mut SmpSystem<S>, hart: u16, addr: PhysAddr) -> bool {
    let oracle = smp.oracle_check_on(hart, addr, AccessKind::Read);
    let machine = smp.machine(hart);
    let fast = machine
        .regs()
        .check(
            machine.phys(),
            &mut PmptwCache::disabled(),
            addr,
            AccessKind::Read,
            PrivMode::Supervisor,
        )
        .allowed;
    fast != oracle
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0x4850_4d50;

    #[test]
    fn aging_walks_the_whole_degradation_ladder() {
        let spec = AgingSpec::with_ops(DEFAULT_CHURN_OPS);
        let (out, snap) = run_aging(
            TeeFlavor::PenglaiHpmp,
            CoreKind::Rocket,
            2,
            SEED,
            spec,
            ExecBackend::Deterministic,
        )
        .unwrap();
        assert_eq!(out.max_stage, 3, "stage path: {:?}", out.stage_path);
        let levels: Vec<u8> = out.stage_path.iter().map(|&(_, s)| s).collect();
        for want in [1, 2, 3] {
            assert!(levels.contains(&want), "never saw stage {want}: {levels:?}");
        }
        assert_eq!(out.canary_failures, 0, "compaction lost enclave bytes");
        assert_eq!(out.oracle_violations, 0, "fast path disagreed with oracle");
        assert!(out.rejected + out.reliefs > 0, "no backpressure observed");
        assert!(
            snap.value("monitor.compact.moved_pages") > 0,
            "no compaction happened"
        );
        assert!(snap.value("monitor.degrade.slow_allocs") > 0);
    }

    #[test]
    fn aging_is_byte_identical_across_backends() {
        let spec = AgingSpec::with_ops(400);
        let run = |backend| {
            run_aging(
                TeeFlavor::PenglaiHpmp,
                CoreKind::Rocket,
                2,
                SEED,
                spec,
                backend,
            )
            .unwrap()
        };
        let (det, det_snap) = run(ExecBackend::Deterministic);
        let (thr, thr_snap) = run(ExecBackend::Threaded);
        assert_eq!(det, thr, "outcomes must agree across backends");
        assert_eq!(
            det_snap.to_json_versioned(),
            thr_snap.to_json_versioned(),
            "snapshots must be byte-identical across backends"
        );
    }

    #[test]
    fn aging_seed_matters_and_reruns_reproduce() {
        let spec = AgingSpec::with_ops(200);
        let run = |seed| {
            run_aging(
                TeeFlavor::PenglaiHpmp,
                CoreKind::Rocket,
                2,
                seed,
                spec,
                ExecBackend::Deterministic,
            )
            .unwrap()
        };
        let (a, snap_a) = run(SEED);
        let (b, snap_b) = run(SEED);
        assert_eq!(a, b);
        assert_eq!(snap_a.to_json(), snap_b.to_json());
        let (c, _) = run(SEED + 1);
        assert_ne!(a.total_cycles, c.total_cycles, "seed must matter");
    }

    #[test]
    fn aging_spans_attribute_compaction_and_leave_the_outcome_alone() {
        let spec = AgingSpec::with_ops(DEFAULT_CHURN_OPS);
        let machines = (0..2)
            .map(|_| Machine::new(config_for(CoreKind::Rocket)))
            .collect();
        let (out, _, spans, _) =
            run_aging_spans(machines, TeeFlavor::PenglaiHpmp, SEED, spec, 1 << 16).unwrap();
        let compact_cycles: u64 = spans
            .spans()
            .iter()
            .filter(|s| s.kind == hpmp_trace::SpanKind::Compact)
            .map(hpmp_trace::SpanEvent::cycles)
            .sum();
        assert!(compact_cycles > 0, "no compact spans recorded");
        // Compact spans are children of the op that triggered the pass.
        assert!(spans
            .spans()
            .iter()
            .filter(|s| s.kind == hpmp_trace::SpanKind::Compact)
            .all(|s| s.parent.is_some()));
        // Collecting spans must not perturb the simulated run itself.
        let (plain, _) = run_aging(
            TeeFlavor::PenglaiHpmp,
            CoreKind::Rocket,
            2,
            SEED,
            spec,
            ExecBackend::Deterministic,
        )
        .unwrap();
        assert_eq!(out, plain, "span collection changed the run");
    }

    #[test]
    fn pmp_flavour_ages_into_the_entry_wall_not_the_table_stage() {
        let spec = AgingSpec::with_ops(400);
        let (out, snap) = run_aging(
            TeeFlavor::PenglaiPmp,
            CoreKind::Rocket,
            2,
            SEED,
            spec,
            ExecBackend::Deterministic,
        )
        .unwrap();
        assert!(out.entry_wall_hits > 0, "PMP never hit its entry wall");
        assert_eq!(
            snap.value("monitor.degrade.enter_stage2"),
            0,
            "PMP has no table to fall back on"
        );
        assert_eq!(out.canary_failures, 0);
        assert_eq!(out.oracle_violations, 0);
    }
}
