//! Multi-tenant scalability (§1's motivation: microservices and serverless
//! reach "more than 100 instances per node").
//!
//! Runs N concurrently-resident enclave domains round-robin, each serving
//! short requests over its private memory, with a monitor-mediated domain
//! switch between turns. Penglai-PMP collapses at the 16-entry wall;
//! the table-backed flavours keep per-request cost flat as N grows — the
//! scalability half of the paper's claim (the performance half is the rest
//! of the evaluation).

use hpmp_core::PmpRegion;
use hpmp_machine::Machine;
use hpmp_memsim::{AccessKind, CoreKind, PhysAddr, PrivMode, SplitMix64};
use hpmp_penglai::{DomainId, GmsLabel, MonitorError, SecureMonitor, TeeFlavor};

/// Result of a multi-tenant run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenancyOutcome {
    /// Domains that were actually created.
    pub tenants: u32,
    /// Total cycles across all requests and switches.
    pub total_cycles: u64,
    /// Requests served.
    pub requests: u64,
    /// Whether creation stopped early at the PMP entry wall.
    pub hit_entry_wall: bool,
}

impl TenancyOutcome {
    /// Mean cycles per request (switch cost included).
    pub fn cycles_per_request(&self) -> f64 {
        self.total_cycles as f64 / self.requests.max(1) as f64
    }
}

/// Boots `tenants` enclaves under `flavor` and serves `rounds` round-robin
/// request cycles; each request touches a few cache lines of the tenant's
/// private region (checked end-to-end through the machine).
///
/// # Errors
///
/// Propagates monitor errors other than the expected entry wall.
pub fn run_tenancy(
    flavor: TeeFlavor,
    core: CoreKind,
    tenants: u32,
    rounds: u32,
) -> Result<TenancyOutcome, MonitorError> {
    Ok(run_tenancy_with_sink(flavor, core, tenants, rounds, hpmp_trace::NullSink)?.0)
}

/// As [`run_tenancy`], recording walk events into `sink` and returning the
/// machine's metrics snapshot alongside the outcome.
///
/// # Errors
///
/// As [`run_tenancy`].
pub fn run_tenancy_with_sink<S: hpmp_trace::TraceSink>(
    flavor: TeeFlavor,
    core: CoreKind,
    tenants: u32,
    rounds: u32,
    sink: S,
) -> Result<(TenancyOutcome, hpmp_trace::Snapshot), MonitorError> {
    let config = crate::fixture::config_for(core);
    let mut machine = Machine::with_sink(config, sink);
    let ram = PmpRegion::new(PhysAddr::new(0x8000_0000), 1 << 30);
    let mut monitor = SecureMonitor::boot(&mut machine, flavor, ram).expect("monitor boots");

    let mut domains: Vec<(DomainId, PhysAddr)> = Vec::new();
    let mut hit_entry_wall = false;
    for _ in 0..tenants {
        match monitor.create_domain(&mut machine, 256 * 1024, GmsLabel::Slow) {
            Ok((id, _)) => {
                let base = monitor.regions_of(id)?[0].region.base;
                domains.push((id, base));
            }
            Err(MonitorError::OutOfPmpEntries) => {
                hit_entry_wall = true;
                break;
            }
            Err(e) => return Err(e),
        }
    }

    let mut rng = SplitMix64::seed_from_u64(0x7e7a);
    let mut total_cycles = 0u64;
    let mut requests = 0u64;
    let mut cache = hpmp_core::PmptwCache::disabled();
    for _ in 0..rounds {
        for &(id, base) in &domains {
            total_cycles += monitor.switch_to(&mut machine, id)?;
            // Serve one request: eight touches within the tenant's region,
            // checked by the active HPMP programming (M-mode check model:
            // S-mode data accesses at physical addresses via the checker +
            // memory system, since tenants here run flat-physical).
            for _ in 0..8 {
                let addr = PhysAddr::new(base.raw() + (rng.gen_range(0..64u64) * 64));
                let out = machine.regs().check(
                    machine.phys(),
                    &mut cache,
                    addr,
                    AccessKind::Read,
                    PrivMode::Supervisor,
                );
                assert!(out.allowed, "tenant must reach its own memory");
                total_cycles += 6; // modelled hit latency per touch
            }
            total_cycles += machine.run_compute(400);
            requests += 1;
        }
    }
    machine.flush_sink();
    let snapshot = machine.metrics_snapshot();
    Ok((
        TenancyOutcome {
            tenants: domains.len() as u32,
            total_cycles,
            requests,
            hit_entry_wall,
        },
        snapshot,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmp_hits_wall_table_flavours_scale() {
        let pmp = run_tenancy(TeeFlavor::PenglaiPmp, CoreKind::Rocket, 100, 1).unwrap();
        assert!(pmp.hit_entry_wall, "PMP must hit the entry wall");
        assert!(pmp.tenants <= 15);

        for flavor in [TeeFlavor::PenglaiPmpt, TeeFlavor::PenglaiHpmp] {
            let out = run_tenancy(flavor, CoreKind::Rocket, 100, 1).unwrap();
            assert!(!out.hit_entry_wall, "{flavor} must scale");
            assert_eq!(out.tenants, 100);
        }
    }

    #[test]
    fn per_request_cost_flat_in_tenant_count() {
        let small = run_tenancy(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 4, 4).unwrap();
        let large = run_tenancy(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 64, 4).unwrap();
        let ratio = large.cycles_per_request() / small.cycles_per_request();
        assert!(
            (0.9..1.1).contains(&ratio),
            "per-request cost must be flat: {ratio} ({} vs {})",
            small.cycles_per_request(),
            large.cycles_per_request()
        );
    }

    #[test]
    fn requests_scale_with_rounds() {
        let out = run_tenancy(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 8, 3).unwrap();
        assert_eq!(out.requests, 24);
        assert!(out.total_cycles > 0);
    }
}
