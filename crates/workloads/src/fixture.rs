//! Shared fixtures: the full TEE stack (monitor + OS + machine) used by the
//! application-level workloads, mirroring the paper's methodology of running
//! each benchmark inside a Penglai enclave under one of the three flavours.

use hpmp_machine::{Machine, MachineConfig};
use hpmp_memsim::{CoreKind, PhysAddr};
use hpmp_penglai::{DomainId, GmsLabel, PtPlacement, SecureMonitor, SimOs, TeeFlavor};
use hpmp_trace::{NullSink, TraceSink};

/// RAM region used by every fixture (1 GiB at the canonical RISC-V base).
pub const RAM_BASE: u64 = 0x8000_0000;
/// RAM size used by every fixture.
pub const RAM_SIZE: u64 = 1 << 30;

/// The full TEE stack: machine + monitor + one enclave domain running the
/// simulated OS.
#[derive(Debug)]
pub struct TeeBench<S: TraceSink = NullSink> {
    /// The simulated SoC.
    pub machine: Machine<S>,
    /// The secure monitor.
    pub monitor: SecureMonitor,
    /// The OS inside the enclave domain.
    pub os: SimOs,
    /// The enclave domain the OS runs in.
    pub domain: DomainId,
}

impl TeeBench {
    /// Boots the stack: monitor of the given flavour, one enclave with a
    /// 16 MiB PT-pool GMS (labelled fast under Penglai-HPMP) and a 256 MiB
    /// data GMS, and the OS with the matching PT placement.
    ///
    /// # Panics
    ///
    /// Panics if monitor or OS boot fails — fixture sizing is static.
    pub fn boot(flavor: TeeFlavor, core: CoreKind) -> TeeBench {
        Self::boot_with_config(flavor, config_for(core))
    }

    /// Boots with an explicit machine configuration (for PWC/PMPTW-Cache
    /// sweeps).
    ///
    /// # Panics
    ///
    /// As [`TeeBench::boot`].
    pub fn boot_with_config(flavor: TeeFlavor, config: MachineConfig) -> TeeBench {
        Self::boot_with_sink(flavor, config, NullSink)
    }
}

impl<S: TraceSink> TeeBench<S> {
    /// Boots the stack with a recording trace sink: every access performed
    /// by the workload produces one `WalkEvent`, tagged with the world the
    /// monitor last switched into.
    ///
    /// # Panics
    ///
    /// As [`TeeBench::boot`].
    pub fn boot_with_sink(flavor: TeeFlavor, config: MachineConfig, sink: S) -> TeeBench<S> {
        let mut machine = Machine::with_sink(config, sink);
        let ram = hpmp_core::PmpRegion::new(PhysAddr::new(RAM_BASE), RAM_SIZE);
        let mut monitor = SecureMonitor::boot(&mut machine, flavor, ram).expect("monitor boots");

        // One enclave domain with a PT pool and a data region.
        let pool_label = if flavor == TeeFlavor::PenglaiHpmp {
            GmsLabel::Fast
        } else {
            GmsLabel::Slow
        };
        let (domain, _) = monitor
            .create_domain(&mut machine, 16 << 20, pool_label)
            .expect("enclave creation");
        let pool = monitor.regions_of(domain).expect("regions")[0].region;
        let (data, _) = monitor
            .alloc_region(&mut machine, domain, 256 << 20, GmsLabel::Slow)
            .expect("data region");
        monitor.switch_to(&mut machine, domain).expect("switch");

        // All Penglai flavours keep PT pages in one contiguous region (the
        // base system already requires it, §5); what differs is whether the
        // region is segment-backed.
        let placement = PtPlacement::Contiguous;
        let os = SimOs::boot_with_layout(
            &mut machine,
            PhysAddr::new(RAM_BASE),
            RAM_SIZE,
            (pool.base, pool.size),
            (data.base, data.size),
            placement,
        );
        TeeBench {
            machine,
            monitor,
            os,
            domain,
        }
    }

    /// Convenience: cold-boot state before a measured run.
    pub fn flush(&mut self) {
        self.machine.flush_microarch();
    }
}

/// The canonical machine configuration for a core kind (Table 1).
pub fn config_for(core: CoreKind) -> MachineConfig {
    match core {
        CoreKind::Rocket => MachineConfig::rocket(),
        CoreKind::Boom => MachineConfig::boom(),
    }
}

/// All three flavours, in the order the figures plot them.
pub const FLAVORS: [TeeFlavor; 3] = [
    TeeFlavor::PenglaiPmp,
    TeeFlavor::PenglaiPmpt,
    TeeFlavor::PenglaiHpmp,
];

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_memsim::{AccessKind, VirtAddr};
    use hpmp_penglai::USER_CODE_BASE;

    #[test]
    fn boots_all_flavours_on_both_cores() {
        for flavor in FLAVORS {
            for core in [CoreKind::Rocket, CoreKind::Boom] {
                let mut tee = TeeBench::boot(flavor, core);
                let (pid, _) = tee.os.spawn(&mut tee.machine, 2).expect("spawn");
                tee.os
                    .user_access(
                        &mut tee.machine,
                        pid,
                        VirtAddr::new(USER_CODE_BASE),
                        AccessKind::Read,
                    )
                    .expect("user access");
            }
        }
    }

    #[test]
    fn hpmp_fixture_has_fast_pool() {
        let tee = TeeBench::boot(TeeFlavor::PenglaiHpmp, CoreKind::Rocket);
        let regions = tee.monitor.regions_of(tee.domain).unwrap();
        assert!(regions
            .iter()
            .any(|g| g.label == hpmp_penglai::GmsLabel::Fast));
        // Entry 1 should be the fast pool segment.
        let seg = tee.machine.regs().entry_region(1).expect("fast segment");
        let (pool_base, pool_size) = tee.os.pt_pool_region();
        assert_eq!(seg.base, pool_base);
        assert_eq!(seg.size, pool_size);
    }

    #[test]
    fn walk_cost_ordering_holds_in_full_stack() {
        let mut cold = Vec::new();
        for flavor in [
            TeeFlavor::PenglaiPmp,
            TeeFlavor::PenglaiHpmp,
            TeeFlavor::PenglaiPmpt,
        ] {
            let mut tee = TeeBench::boot(flavor, CoreKind::Rocket);
            let (pid, _) = tee.os.spawn(&mut tee.machine, 1).expect("spawn");
            tee.flush();
            let cycles = tee
                .os
                .user_access(
                    &mut tee.machine,
                    pid,
                    VirtAddr::new(USER_CODE_BASE),
                    AccessKind::Read,
                )
                .expect("access");
            cold.push((flavor, cycles));
        }
        assert!(cold[0].1 < cold[1].1, "PMP < HPMP: {cold:?}");
        assert!(cold[1].1 < cold[2].1, "HPMP < PMPT: {cold:?}");
    }
}
