//! Memory-fragmentation microbenchmark (§8.8, Figures 15/16).
//!
//! Four layouts: {contiguous, fragmented} virtual pages × {contiguous,
//! fragmented} physical pages. "Fragmented-VA" steps to the next virtual
//! page with an 8 GiB + 4 KiB offset (defeating PWC/TLB reach exactly as in
//! the paper); fragmented physical pages defeat the cache-line sharing of
//! adjacent PTEs and pmptes. The same walk is then measured with the
//! PMPTW-Cache enabled for Figure 16.

use hpmp_core::PmptwCacheConfig;
use hpmp_machine::{IsolationScheme, MachineConfig, SystemBuilder};
use hpmp_memsim::{AccessKind, CoreKind, Perms, PrivMode, VirtAddr, PAGE_SIZE};

/// Virtual-address layout of the touched pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VaLayout {
    /// Consecutive virtual pages.
    Contiguous,
    /// Next page at an 8 GiB + 4 KiB offset (the paper's Fragmented-VA).
    Fragmented,
}

impl std::fmt::Display for VaLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VaLayout::Contiguous => "Contiguous-VA",
            VaLayout::Fragmented => "Fragmented-VA",
        })
    }
}

/// Physical placement of the touched pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaLayout {
    /// Consecutive physical frames.
    Contiguous,
    /// Frames strided by 2 MiB + one page (buddy-allocator churn).
    Fragmented,
}

impl std::fmt::Display for PaLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PaLayout::Contiguous => "Contiguous-PA",
            PaLayout::Fragmented => "Fragmented-PA",
        })
    }
}

/// Number of pages touched by the microbenchmark.
pub const FRAG_PAGES: u64 = 24;

/// Measures the total latency of touching [`FRAG_PAGES`] fresh pages (one
/// access each, TLB-missing by construction) under the given layouts.
pub fn measure(
    core: CoreKind,
    scheme: IsolationScheme,
    va: VaLayout,
    pa: PaLayout,
    pmptw_cache: PmptwCacheConfig,
) -> u64 {
    let mut config = match core {
        CoreKind::Rocket => MachineConfig::rocket(),
        CoreKind::Boom => MachineConfig::boom(),
    };
    config.pmptw_cache = pmptw_cache;
    let mut sys = SystemBuilder::new(config, scheme).build();

    // Sv39 tops out below 512 GiB; 24 pages at 8 GiB stride fits.
    let va_stride = match va {
        VaLayout::Contiguous => PAGE_SIZE,
        VaLayout::Fragmented => (8u64 << 30) + PAGE_SIZE,
    };
    let pa_stride_pages = match pa {
        PaLayout::Contiguous => 1u64,
        PaLayout::Fragmented => (2u64 << 20) / PAGE_SIZE + 1,
    };

    let va_base = 0x10_0000u64;
    let frames: Vec<_> = (0..FRAG_PAGES)
        .map(|i| {
            let frame = hpmp_memsim::PhysAddr::new(
                sys.ram.base.raw() + (64 << 20) + i * pa_stride_pages * PAGE_SIZE,
            );
            sys.map_page_at(VirtAddr::new(va_base + i * va_stride), frame, Perms::RW);
            frame
        })
        .collect();
    let _ = frames;
    sys.sync_pt_grants();

    sys.machine.flush_microarch();
    let mut total = 0;
    for i in 0..FRAG_PAGES {
        let out = sys
            .machine
            .access(
                &sys.space,
                VirtAddr::new(va_base + i * va_stride),
                AccessKind::Read,
                PrivMode::Supervisor,
            )
            .expect("touch");
        total += out.cycles;
    }
    total
}

/// The virtualized fragmentation cases — §8.8's (3) contiguous and (4)
/// fragmented physical backing under fragmented host virtual pages. The
/// guest touches [`FRAG_PAGES`] fresh guest pages; `backing` selects how
/// the hypervisor placed the frames behind them.
pub fn measure_virt(core: CoreKind, scheme: hpmp_machine::VirtScheme, backing: PaLayout) -> u64 {
    use hpmp_machine::VirtMachine;
    let config = match core {
        CoreKind::Rocket => MachineConfig::rocket(),
        CoreKind::Boom => MachineConfig::boom(),
    };
    let mut m =
        VirtMachine::with_options(config, scheme, FRAG_PAGES, backing == PaLayout::Fragmented);
    m.flush_microarch();
    let mut total = 0;
    for i in 0..FRAG_PAGES {
        total += m
            .access(VirtAddr::new(0x20_0000 + i * PAGE_SIZE), AccessKind::Read)
            .expect("guest page")
            .cycles;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    const DISABLED: PmptwCacheConfig = PmptwCacheConfig::DISABLED;

    #[test]
    fn fragmentation_hurts() {
        let ideal = measure(
            CoreKind::Rocket,
            IsolationScheme::PmpTable,
            VaLayout::Contiguous,
            PaLayout::Contiguous,
            DISABLED,
        );
        let worst = measure(
            CoreKind::Rocket,
            IsolationScheme::PmpTable,
            VaLayout::Fragmented,
            PaLayout::Fragmented,
            DISABLED,
        );
        assert!(
            worst > ideal,
            "fragmented {worst} must exceed ideal {ideal}"
        );
    }

    #[test]
    fn hpmp_beats_pmpt_in_every_layout() {
        for va in [VaLayout::Contiguous, VaLayout::Fragmented] {
            for pa in [PaLayout::Contiguous, PaLayout::Fragmented] {
                let pmpt = measure(
                    CoreKind::Rocket,
                    IsolationScheme::PmpTable,
                    va,
                    pa,
                    DISABLED,
                );
                let hpmp = measure(CoreKind::Rocket, IsolationScheme::Hpmp, va, pa, DISABLED);
                let pmp = measure(CoreKind::Rocket, IsolationScheme::Pmp, va, pa, DISABLED);
                assert!(hpmp < pmpt, "{va}/{pa}: HPMP {hpmp} must beat PMPT {pmpt}");
                assert!(pmp < hpmp, "{va}/{pa}: PMP {pmp} must beat HPMP {hpmp}");
            }
        }
    }

    #[test]
    fn virt_fragmentation_cases() {
        use hpmp_machine::VirtScheme;
        // Case (4) costs more than case (3) for every scheme, and HPMP
        // stays between PMP and PMPT in both.
        for scheme in [VirtScheme::Pmp, VirtScheme::PmpTable, VirtScheme::Hpmp] {
            let contig = measure_virt(CoreKind::Rocket, scheme, PaLayout::Contiguous);
            let frag = measure_virt(CoreKind::Rocket, scheme, PaLayout::Fragmented);
            assert!(
                frag >= contig,
                "{scheme}: fragmented backing must not be cheaper ({frag} vs {contig})"
            );
        }
        let pmp = measure_virt(CoreKind::Rocket, VirtScheme::Pmp, PaLayout::Fragmented);
        let hpmp = measure_virt(CoreKind::Rocket, VirtScheme::Hpmp, PaLayout::Fragmented);
        let pmpt = measure_virt(CoreKind::Rocket, VirtScheme::PmpTable, PaLayout::Fragmented);
        assert!(pmp < hpmp && hpmp < pmpt, "ordering: {pmp} {hpmp} {pmpt}");
    }

    #[test]
    fn pmptw_cache_helps_fragmented_va() {
        // Figure 16: caching reduces PMPT's fragmented-VA latency, and
        // HPMP + cache is the best table-backed configuration.
        let without = measure(
            CoreKind::Rocket,
            IsolationScheme::PmpTable,
            VaLayout::Fragmented,
            PaLayout::Contiguous,
            DISABLED,
        );
        let with = measure(
            CoreKind::Rocket,
            IsolationScheme::PmpTable,
            VaLayout::Fragmented,
            PaLayout::Contiguous,
            PmptwCacheConfig::ENABLED_8,
        );
        assert!(with < without, "PMPTW-Cache must help: {with} vs {without}");
        let hpmp_cache = measure(
            CoreKind::Rocket,
            IsolationScheme::Hpmp,
            VaLayout::Fragmented,
            PaLayout::Contiguous,
            PmptwCacheConfig::ENABLED_8,
        );
        let hpmp_plain = measure(
            CoreKind::Rocket,
            IsolationScheme::Hpmp,
            VaLayout::Fragmented,
            PaLayout::Contiguous,
            DISABLED,
        );
        assert!(hpmp_cache <= hpmp_plain, "HPMP-Cache must not be worse");
        assert!(hpmp_cache < with, "HPMP-Cache beats PMPT-Cache");
    }
}
