//! The RV8 benchmark suite model (§8.3, Figure 11-a).
//!
//! RV8's kernels are compute-bound with small-to-medium working sets, which
//! is why even Penglai-PMPT costs only 0.0%–1.7% on them: nearly every
//! access is a TLB hit, and TLB inlining makes hits scheme-independent.
//! Each kernel is modelled by its compute:memory ratio, working-set size and
//! access pattern.

use hpmp_memsim::CoreKind;
use hpmp_penglai::{OsError, TeeFlavor};
use hpmp_trace::TraceSink;

use crate::arena::{replay, Patterns, UserArena};
use crate::fixture::TeeBench;

/// The eight RV8 kernels of Figure 11-a.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rv8Kernel {
    /// AES encryption over a buffer.
    Aes,
    /// NORX authenticated encryption.
    Norx,
    /// Prime sieve.
    Primes,
    /// SHA-512 hashing.
    Sha512,
    /// Quicksort over an array.
    Qsort,
    /// Dhrystone (pure integer compute).
    Dhrystone,
    /// miniz compression.
    Miniz,
    /// Big-integer arithmetic.
    Bigint,
}

/// All kernels in the figure's order.
pub const RV8_KERNELS: [Rv8Kernel; 8] = [
    Rv8Kernel::Aes,
    Rv8Kernel::Norx,
    Rv8Kernel::Primes,
    Rv8Kernel::Sha512,
    Rv8Kernel::Qsort,
    Rv8Kernel::Dhrystone,
    Rv8Kernel::Miniz,
    Rv8Kernel::Bigint,
];

impl std::fmt::Display for Rv8Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Rv8Kernel::Aes => "aes",
            Rv8Kernel::Norx => "norx",
            Rv8Kernel::Primes => "primes",
            Rv8Kernel::Sha512 => "sha512",
            Rv8Kernel::Qsort => "qsort",
            Rv8Kernel::Dhrystone => "dhrystone",
            Rv8Kernel::Miniz => "miniz",
            Rv8Kernel::Bigint => "bigint",
        })
    }
}

/// Behavioural profile of one kernel.
#[derive(Clone, Copy, Debug)]
struct Profile {
    /// Working set in bytes.
    ws: u64,
    /// Accesses issued (scaled iteration count).
    accesses: u64,
    /// Compute instructions per access.
    compute: u64,
    /// Store fraction.
    write_ratio: f64,
    /// Sequential (stride) if `Some(stride)`, random otherwise.
    stride: Option<u64>,
}

fn profile(kernel: Rv8Kernel) -> Profile {
    match kernel {
        // Streaming crypto: sequential buffers, heavy per-byte compute.
        Rv8Kernel::Aes => Profile {
            ws: 1 << 20,
            accesses: 3000,
            compute: 24,
            write_ratio: 0.5,
            stride: Some(64),
        },
        // NORX streams past the L2-TLB reach; paper's largest RV8 overhead.
        Rv8Kernel::Norx => Profile {
            ws: 6 << 20,
            accesses: 3000,
            compute: 18,
            write_ratio: 0.5,
            stride: Some(192),
        },
        // Sieve: sequential marks over a medium array.
        Rv8Kernel::Primes => Profile {
            ws: 2 << 20,
            accesses: 2500,
            compute: 10,
            write_ratio: 0.7,
            stride: Some(8),
        },
        Rv8Kernel::Sha512 => Profile {
            ws: 1 << 20,
            accesses: 2500,
            compute: 30,
            write_ratio: 0.2,
            stride: Some(64),
        },
        // Qsort: random-ish partitioning over a 3 MiB array (fits the L2
        // TLB once warm, like the RV8 input size does on the FPGA).
        Rv8Kernel::Qsort => Profile {
            ws: 3 << 20,
            accesses: 3500,
            compute: 10,
            write_ratio: 0.45,
            stride: None,
        },
        // Dhrystone: tiny working set, almost pure compute.
        Rv8Kernel::Dhrystone => Profile {
            ws: 64 << 10,
            accesses: 2000,
            compute: 40,
            write_ratio: 0.3,
            stride: Some(16),
        },
        Rv8Kernel::Miniz => Profile {
            ws: 5 << 20,
            accesses: 3000,
            compute: 16,
            write_ratio: 0.4,
            stride: Some(160),
        },
        // Bigint: tiny hot limbs, the paper's 0.0% case.
        Rv8Kernel::Bigint => Profile {
            ws: 32 << 10,
            accesses: 2000,
            compute: 36,
            write_ratio: 0.5,
            stride: Some(8),
        },
    }
}

/// Runs one RV8 kernel; returns total cycles.
///
/// # Errors
///
/// Propagates OS errors.
pub fn run_rv8(flavor: TeeFlavor, core: CoreKind, kernel: Rv8Kernel) -> Result<u64, OsError> {
    Ok(run_rv8_with_sink(flavor, core, kernel, hpmp_trace::NullSink)?.0)
}

/// As [`run_rv8`], recording walk events into `sink` and returning the
/// machine's metrics snapshot alongside the cycle count.
///
/// # Errors
///
/// Propagates OS errors.
pub fn run_rv8_with_sink<S: TraceSink>(
    flavor: TeeFlavor,
    core: CoreKind,
    kernel: Rv8Kernel,
    sink: S,
) -> Result<(u64, hpmp_trace::Snapshot), OsError> {
    let p = profile(kernel);
    let mut tee = TeeBench::boot_with_sink(flavor, crate::fixture::config_for(core), sink);
    let pages = p.ws.div_ceil(hpmp_memsim::PAGE_SIZE);
    let arena = UserArena::create(&mut tee.os, &mut tee.machine, pages)?;
    let mut patterns = Patterns::new(kernel as u64 + 1);
    let trace = match p.stride {
        Some(stride) => patterns.sequential(p.accesses, stride, p.write_ratio, p.compute),
        None => patterns.random(p.accesses, p.ws, p.write_ratio, p.compute),
    };
    // Warm-up pass over the working set (RV8 kernels iterate many times;
    // the steady state is what the paper measures).
    let warm = patterns.sequential(p.ws / 4096, 4096, 0.0, 0);
    replay(&mut tee.os, &mut tee.machine, &arena, warm)?;
    tee.machine.reset_stats();
    let cycles = replay(&mut tee.os, &mut tee.machine, &arena, trace)?;
    tee.machine.flush_sink();
    Ok((cycles, tee.machine.metrics_snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_small() {
        // Figure 11-a: PMPT ≤ ~2% over PMP on RV8 (good locality).
        for kernel in [Rv8Kernel::Dhrystone, Rv8Kernel::Bigint, Rv8Kernel::Qsort] {
            let pmp = run_rv8(TeeFlavor::PenglaiPmp, CoreKind::Rocket, kernel).unwrap();
            let pmpt = run_rv8(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, kernel).unwrap();
            let hpmp = run_rv8(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, kernel).unwrap();
            let pmpt_over = pmpt as f64 / pmp as f64;
            let hpmp_over = hpmp as f64 / pmp as f64;
            assert!(
                pmpt_over < 1.12,
                "{kernel}: PMPT overhead too large: {pmpt_over}"
            );
            assert!(
                hpmp_over <= pmpt_over + 1e-9,
                "{kernel}: HPMP must not exceed PMPT"
            );
        }
    }

    #[test]
    fn compute_bound_kernels_are_insensitive() {
        // Dhrystone/bigint: tiny WS => all TLB hits => near-zero overhead.
        let pmp = run_rv8(TeeFlavor::PenglaiPmp, CoreKind::Rocket, Rv8Kernel::Bigint).unwrap();
        let pmpt = run_rv8(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, Rv8Kernel::Bigint).unwrap();
        let over = pmpt as f64 / pmp as f64;
        assert!(over < 1.02, "bigint overhead should be ~0%: {over}");
    }

    #[test]
    fn all_kernels_have_profiles() {
        for kernel in RV8_KERNELS {
            let p = profile(kernel);
            assert!(p.ws > 0 && p.accesses > 0);
        }
    }
}
