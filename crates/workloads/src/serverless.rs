//! Serverless-computing case study (§8.4, Figure 12-a/b/c).
//!
//! Serverless functions are short-lived: every invocation pays process
//! creation (fork/exec with real page-table construction), cold first
//! touches of its working set, a compute phase, and teardown. The cold
//! walks are where the permission table hurts — unlike the long-running
//! suites, there is no steady state for the TLB to amortise into.

use hpmp_memsim::{AccessKind, CoreKind, PAGE_SIZE};
use hpmp_penglai::{OsError, TeeFlavor};
use hpmp_trace::TraceSink;

use crate::arena::{replay, replay_with_code, Patterns, TraceStep, UserArena};
use crate::fixture::TeeBench;

/// The FunctionBench functions of Figure 12-a/b.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Function {
    /// HTML templating (chameleon).
    Chameleon,
    /// `dd`-style block copy.
    Dd,
    /// Gzip compression.
    Gzip,
    /// Linpack linear algebra.
    Linpack,
    /// Matrix multiply.
    Matmul,
    /// AES in Python.
    PyAes,
    /// Image processing (single function).
    Image,
}

/// All functions in the figure's order.
pub const FUNCTIONS: [Function; 7] = [
    Function::Chameleon,
    Function::Dd,
    Function::Gzip,
    Function::Linpack,
    Function::Matmul,
    Function::PyAes,
    Function::Image,
];

impl std::fmt::Display for Function {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Function::Chameleon => "Chameleon",
            Function::Dd => "DD",
            Function::Gzip => "GZip",
            Function::Linpack => "Linpack",
            Function::Matmul => "Matmul",
            Function::PyAes => "PyAES",
            Function::Image => "Image",
        })
    }
}

/// Behavioural profile of one function invocation.
#[derive(Clone, Copy, Debug)]
struct Profile {
    /// Code pages (exec footprint: interpreters are large).
    code_pages: u64,
    /// Heap pages touched during the run.
    heap_pages: u64,
    /// Steady-phase accesses after the cold touches.
    accesses: u64,
    /// Compute instructions per access.
    compute: u64,
    /// Random (true) or streaming (false) steady phase.
    random: bool,
}

fn profile(function: Function) -> Profile {
    match function {
        // Template rendering: many small objects, random.
        Function::Chameleon => Profile {
            code_pages: 48,
            heap_pages: 160,
            accesses: 1600,
            compute: 8,
            random: true,
        },
        // dd: streaming copy, low compute.
        Function::Dd => Profile {
            code_pages: 16,
            heap_pages: 256,
            accesses: 2400,
            compute: 3,
            random: false,
        },
        Function::Gzip => Profile {
            code_pages: 24,
            heap_pages: 192,
            accesses: 2200,
            compute: 12,
            random: false,
        },
        // Linpack/Matmul: blocked numeric kernels, good locality, heavy FP.
        Function::Linpack => Profile {
            code_pages: 32,
            heap_pages: 128,
            accesses: 1800,
            compute: 22,
            random: false,
        },
        Function::Matmul => Profile {
            code_pages: 16,
            heap_pages: 96,
            accesses: 1500,
            compute: 26,
            random: false,
        },
        Function::PyAes => Profile {
            code_pages: 40,
            heap_pages: 64,
            accesses: 1400,
            compute: 18,
            random: true,
        },
        Function::Image => Profile {
            code_pages: 32,
            heap_pages: 200,
            accesses: 2000,
            compute: 9,
            random: false,
        },
    }
}

/// Runs one cold invocation of `function`; returns end-to-end cycles
/// (create + touch + compute + teardown).
///
/// # Errors
///
/// Propagates OS errors.
pub fn invoke<S: TraceSink>(
    tee: &mut TeeBench<S>,
    function: Function,
    seed: u64,
) -> Result<u64, OsError> {
    let p = profile(function);
    let mut cycles = 0;

    // Cold start: spawn with the function's code footprint; the heap is
    // reserved lazily, as mmap does — first touches take demand faults
    // (trap + frame grab + PTE install), the real cold-start dynamic.
    let (pid, spawn_cycles) = tee.os.spawn(&mut tee.machine, p.code_pages)?;
    cycles += spawn_cycles;
    let heap_base = tee.os.mmap_lazy(pid, p.heap_pages)?;

    let arena = UserArena {
        pid,
        base: heap_base,
        bytes: p.heap_pages * PAGE_SIZE,
    };
    // Cold touches: one demand fault per page.
    for i in 0..p.heap_pages {
        cycles += tee.machine.run_compute(4);
        cycles += tee.os.user_access_faulting(
            &mut tee.machine,
            pid,
            hpmp_memsim::VirtAddr::new(heap_base.raw() + i * PAGE_SIZE),
            AccessKind::Write,
        )?;
    }

    // Steady phase, with instruction fetches over the function's code
    // footprint (interpreters like Chameleon/PyAES have large text).
    let mut patterns = Patterns::new(seed);
    let ws = p.heap_pages * PAGE_SIZE;
    let steady = if p.random {
        patterns.random(p.accesses, ws, 0.4, p.compute)
    } else {
        patterns.sequential(p.accesses, 72, 0.4, p.compute)
    };
    cycles += replay_with_code(&mut tee.os, &mut tee.machine, &arena, p.code_pages, steady)?;

    // Teardown.
    cycles += tee.os.exit(&mut tee.machine, pid)?;
    Ok(cycles)
}

/// Mean invocation latency over `n` cold invocations on a fresh stack.
///
/// # Errors
///
/// Propagates OS errors.
pub fn measure_function(
    flavor: TeeFlavor,
    core: CoreKind,
    function: Function,
    n: u64,
) -> Result<u64, OsError> {
    let mut tee = TeeBench::boot(flavor, core);
    let mut total = 0;
    for i in 0..n {
        total += invoke(&mut tee, function, 0x5eed + i)?;
    }
    Ok(total / n)
}

/// As [`measure_function`] but on a caller-supplied stack (PWC sweeps).
///
/// # Errors
///
/// Propagates OS errors.
pub fn measure_function_on<S: TraceSink>(
    tee: &mut TeeBench<S>,
    function: Function,
    n: u64,
) -> Result<u64, OsError> {
    let mut total = 0;
    for i in 0..n {
        total += invoke(tee, function, 0x5eed + i)?;
    }
    Ok(total / n)
}

/// The chained image-processing application of Figure 12-c: four functions
/// invoked in sequence, each handling an `size × size` image (4 bytes per
/// pixel). Returns end-to-end latency.
///
/// # Errors
///
/// Propagates OS errors.
pub fn image_chain(flavor: TeeFlavor, core: CoreKind, size: u64) -> Result<u64, OsError> {
    let mut tee = TeeBench::boot(flavor, core);
    let image_bytes = size * size * 4;
    let image_pages = image_bytes.div_ceil(PAGE_SIZE).max(1);
    let mut cycles = 0;
    // Stages: decode, resize, filter, encode. Compute per pixel grows with
    // the stage's arithmetic intensity.
    for (stage, compute_per_px) in [(0u64, 6u64), (1, 4), (2, 10), (3, 8)] {
        let (pid, spawn_cycles) = tee.os.spawn(&mut tee.machine, 24)?;
        cycles += spawn_cycles;
        cycles += tee.os.mmap(&mut tee.machine, pid, image_pages * 2)?;
        let arena = UserArena {
            pid,
            base: hpmp_memsim::VirtAddr::new(hpmp_penglai::USER_HEAP_BASE),
            bytes: image_pages * 2 * PAGE_SIZE,
        };
        // Stream input image, write output image; sampled at one access per
        // 16 pixels to bound simulation time (compute scaled to match).
        let samples = (size * size / 16).max(64);
        let trace: Vec<TraceStep> = (0..samples)
            .flat_map(|i| {
                let off = (i * 64) % (image_pages * PAGE_SIZE);
                [
                    TraceStep {
                        offset: off,
                        kind: AccessKind::Read,
                        compute: compute_per_px * 16,
                    },
                    TraceStep {
                        offset: image_pages * PAGE_SIZE + off,
                        kind: AccessKind::Write,
                        compute: 2,
                    },
                ]
            })
            .collect();
        cycles += replay(&mut tee.os, &mut tee.machine, &arena, trace)?;
        cycles += tee.os.exit(&mut tee.machine, pid)?;
        let _ = stage;
    }
    Ok(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_separate_schemes() {
        // Figure 12: PMPT costs double-digit %, HPMP a few %.
        let pmp =
            measure_function(TeeFlavor::PenglaiPmp, CoreKind::Rocket, Function::Dd, 2).unwrap();
        let pmpt =
            measure_function(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, Function::Dd, 2).unwrap();
        let hpmp =
            measure_function(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, Function::Dd, 2).unwrap();
        let pmpt_over = pmpt as f64 / pmp as f64;
        let hpmp_over = hpmp as f64 / pmp as f64;
        assert!(
            pmpt_over > 1.01,
            "PMPT must cost >1% on serverless: {pmpt_over}"
        );
        assert!(hpmp_over < pmpt_over, "HPMP must recover the gap");
        assert!(
            (hpmp_over - 1.0) < 0.6 * (pmpt_over - 1.0),
            "HPMP should remove most of the overhead: {hpmp_over} vs {pmpt_over}"
        );
    }

    #[test]
    fn image_chain_grows_with_size() {
        let small = image_chain(TeeFlavor::PenglaiPmp, CoreKind::Rocket, 32).unwrap();
        let large = image_chain(TeeFlavor::PenglaiPmp, CoreKind::Rocket, 128).unwrap();
        assert!(large > small * 2, "latency must grow with image size");
    }

    #[test]
    fn image_chain_gap_shrinks_with_size() {
        // Figure 12-c: the PMPT gap narrows as compute grows (29.7% -> 1.6%).
        let over = |size| {
            let pmp = image_chain(TeeFlavor::PenglaiPmp, CoreKind::Rocket, size).unwrap();
            let pmpt = image_chain(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, size).unwrap();
            pmpt as f64 / pmp as f64
        };
        let small = over(32);
        let large = over(256);
        assert!(
            small > large,
            "overhead must shrink with size: {small} vs {large}"
        );
    }

    #[test]
    fn all_functions_run() {
        let mut tee = TeeBench::boot(TeeFlavor::PenglaiHpmp, CoreKind::Rocket);
        for function in FUNCTIONS {
            assert!(invoke(&mut tee, function, 1).unwrap() > 0, "{function}");
        }
    }
}
