//! The GAP benchmark suite model (§8.3, Figure 11-b/c).
//!
//! The paper runs the FireSim-ported GAP kernels on a Kronecker graph
//! (graph500-style). We generate a synthetic power-law graph in CSR form and
//! derive each kernel's memory-reference trace from its actual traversal
//! structure: sequential offset-array reads, semi-random edge reads, and
//! random property-array reads whose footprint is what produces the TLB-miss
//! profile GAP is known for.

use hpmp_memsim::{AccessKind, CoreKind, SplitMix64};
use hpmp_penglai::{OsError, TeeFlavor};
use hpmp_trace::TraceSink;

use crate::arena::{replay, TraceStep, UserArena};
use crate::fixture::TeeBench;

/// The six GAP kernels evaluated in Figure 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GapKernel {
    /// Betweenness centrality (most walk-intensive; worst case in paper).
    Bc,
    /// Breadth-first search.
    Bfs,
    /// Connected components.
    Cc,
    /// PageRank.
    Pr,
    /// Single-source shortest paths.
    Sssp,
    /// Triangle counting.
    Tc,
}

/// All kernels in the figure's order.
pub const GAP_KERNELS: [GapKernel; 6] = [
    GapKernel::Bc,
    GapKernel::Bfs,
    GapKernel::Cc,
    GapKernel::Pr,
    GapKernel::Sssp,
    GapKernel::Tc,
];

impl std::fmt::Display for GapKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GapKernel::Bc => "bc-kron",
            GapKernel::Bfs => "bfs-kron",
            GapKernel::Cc => "cc-kron",
            GapKernel::Pr => "pr-kron",
            GapKernel::Sssp => "sssp-kron",
            GapKernel::Tc => "tc-kron",
        })
    }
}

/// A synthetic Kronecker-flavoured graph in CSR layout.
#[derive(Clone, Debug)]
pub struct KronGraph {
    /// Number of vertices.
    pub vertices: u64,
    /// Edge targets, grouped by source (CSR `edges` array).
    pub edges: Vec<u64>,
    /// CSR row offsets (length `vertices + 1`).
    pub offsets: Vec<u64>,
}

impl KronGraph {
    /// Generates a graph with `2^scale` vertices and average degree
    /// `degree`, with the skewed degree distribution of Kronecker
    /// generators (a few hub vertices attract most edges).
    pub fn generate(scale: u32, degree: u64, seed: u64) -> KronGraph {
        let vertices = 1u64 << scale;
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut adjacency: Vec<Vec<u64>> = vec![Vec::new(); vertices as usize];
        let total_edges = vertices * degree;
        for _ in 0..total_edges {
            // R-MAT-style recursive quadrant selection (a=0.57, b=c=0.19).
            let mut src = 0u64;
            let mut dst = 0u64;
            for bit in (0..scale).rev() {
                let r = rng.gen_f64();
                let (sb, db) = if r < 0.57 {
                    (0, 0)
                } else if r < 0.76 {
                    (0, 1)
                } else if r < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                src |= sb << bit;
                dst |= db << bit;
            }
            adjacency[src as usize].push(dst);
        }
        let mut offsets = Vec::with_capacity(vertices as usize + 1);
        let mut edges = Vec::with_capacity(total_edges as usize);
        offsets.push(0);
        for list in &adjacency {
            edges.extend_from_slice(list);
            offsets.push(edges.len() as u64);
        }
        KronGraph {
            vertices,
            edges,
            offsets,
        }
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Neighbours of `v`.
    pub fn neighbours(&self, v: u64) -> &[u64] {
        &self.edges[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }
}

/// Bytes per property entry. The paper's graphs have 2^20 vertices; ours
/// are smaller for trace-replay speed, so property entries are strided to
/// give the property array the same *page footprint* (and therefore the
/// same TLB-miss behaviour) per random read as the full-size run.
pub const PROP_STRIDE: u64 = 256;

/// Byte layout of the graph inside the arena: `[offsets][edges][props]`.
#[derive(Clone, Copy, Debug)]
struct Layout {
    offsets_base: u64,
    edges_base: u64,
    props_base: u64,
}

fn layout(graph: &KronGraph) -> (Layout, u64) {
    let offsets_bytes = (graph.vertices + 1) * 8;
    let edges_bytes = graph.edge_count() * 8;
    let props_bytes = graph.vertices * PROP_STRIDE;
    let layout = Layout {
        offsets_base: 0,
        edges_base: offsets_bytes,
        props_base: offsets_bytes + edges_bytes,
    };
    (layout, offsets_bytes + edges_bytes + props_bytes)
}

/// Emits a breadth-first traversal trace: the frontier drives the visit
/// order (BFS/SSSP/CC really walk the graph this way, which gives bursts of
/// locality on hub regions followed by scattered fringe visits).
fn frontier_trace(graph: &KronGraph, compute: u64, prop_reads: u64, budget: u64) -> Vec<TraceStep> {
    let (l, _) = layout(graph);
    let mut trace = Vec::new();
    let mut visited = vec![false; graph.vertices as usize];
    let mut queue = std::collections::VecDeque::new();
    let mut edges_seen = 0u64;
    // Start from vertex 0 and restart on disconnected components.
    'outer: for root in 0..graph.vertices {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            trace.push(TraceStep {
                offset: l.offsets_base + v * 8,
                kind: AccessKind::Read,
                compute: 1,
            });
            for (i, &n) in graph.neighbours(v).iter().enumerate() {
                trace.push(TraceStep {
                    offset: l.edges_base + (graph.offsets[v as usize] + i as u64) * 8,
                    kind: AccessKind::Read,
                    compute,
                });
                for r in 0..prop_reads {
                    let target = if r == 0 { n } else { v };
                    trace.push(TraceStep {
                        offset: l.props_base + target * PROP_STRIDE,
                        kind: AccessKind::Read,
                        compute: 1,
                    });
                }
                if !visited[n as usize] {
                    visited[n as usize] = true;
                    queue.push_back(n);
                    // Discovery write (parent / distance / component id).
                    trace.push(TraceStep {
                        offset: l.props_base + n * PROP_STRIDE,
                        kind: AccessKind::Write,
                        compute: 1,
                    });
                }
                edges_seen += 1;
                if edges_seen >= budget {
                    break 'outer;
                }
            }
        }
    }
    trace
}

/// Emits the trace of one kernel over `graph`. `budget` caps the number of
/// edge visits so runtimes stay bounded. Traversal kernels (BFS, SSSP, CC)
/// use the frontier-driven order; the iterative kernels (PR, TC, BC's
/// passes) sweep vertices.
fn kernel_trace(graph: &KronGraph, kernel: GapKernel, budget: u64) -> Vec<TraceStep> {
    match kernel {
        GapKernel::Bfs => return frontier_trace(graph, 12, 1, budget),
        GapKernel::Cc => return frontier_trace(graph, 12, 1, budget),
        GapKernel::Sssp => return frontier_trace(graph, 18, 2, budget),
        _ => {}
    }
    let (l, _) = layout(graph);
    let mut trace = Vec::new();
    let mut visited = 0u64;
    // Per-edge behaviour differs by kernel: BC reads properties of both
    // endpoints across two passes (the most walk-intensive — the paper's
    // worst case), TC re-reads adjacency rows for intersections (compute
    // heavy, edge-array dominated), PR does per-edge float work.
    let (compute, prop_reads, prop_writes, passes) = match kernel {
        GapKernel::Bc => (10, 2, true, 2),
        GapKernel::Bfs => (12, 1, true, 1),
        GapKernel::Cc => (12, 1, true, 1),
        GapKernel::Pr => (26, 1, true, 1),
        GapKernel::Sssp => (18, 2, true, 1),
        GapKernel::Tc => (48, 1, false, 1),
    };
    'outer: for _pass in 0..passes {
        for v in 0..graph.vertices {
            // Read the offset entry (sequential, prefetch-friendly).
            trace.push(TraceStep {
                offset: l.offsets_base + v * 8,
                kind: AccessKind::Read,
                compute: 1,
            });
            for (i, &n) in graph.neighbours(v).iter().enumerate() {
                // Read the edge target (sequential within the row)…
                trace.push(TraceStep {
                    offset: l.edges_base + (graph.offsets[v as usize] + i as u64) * 8,
                    kind: AccessKind::Read,
                    compute,
                });
                // …then neighbour/source properties (random: the pain point).
                for r in 0..prop_reads {
                    // BC's second read models its backward-pass sigma/delta
                    // arrays: a second, differently-indexed random page.
                    let target = if r == 0 {
                        n
                    } else {
                        (n * 7 + v) % graph.vertices
                    };
                    trace.push(TraceStep {
                        offset: l.props_base + target * PROP_STRIDE,
                        kind: AccessKind::Read,
                        compute: 1,
                    });
                }
                if prop_writes {
                    trace.push(TraceStep {
                        offset: l.props_base + v * PROP_STRIDE,
                        kind: AccessKind::Write,
                        compute: 1,
                    });
                }
                visited += 1;
                if visited >= budget {
                    break 'outer;
                }
            }
        }
    }
    trace
}

/// Runs one GAP kernel under the given flavour/core; returns total cycles.
///
/// # Errors
///
/// Propagates OS errors.
pub fn run_gap(
    flavor: TeeFlavor,
    core: CoreKind,
    kernel: GapKernel,
    graph: &KronGraph,
    budget: u64,
) -> Result<u64, OsError> {
    Ok(run_gap_with_sink(flavor, core, kernel, graph, budget, hpmp_trace::NullSink)?.0)
}

/// As [`run_gap`], recording walk events into `sink` and returning the
/// machine's metrics snapshot alongside the cycle count.
///
/// # Errors
///
/// Propagates OS errors.
pub fn run_gap_with_sink<S: TraceSink>(
    flavor: TeeFlavor,
    core: CoreKind,
    kernel: GapKernel,
    graph: &KronGraph,
    budget: u64,
    sink: S,
) -> Result<(u64, hpmp_trace::Snapshot), OsError> {
    let mut tee = TeeBench::boot_with_sink(flavor, crate::fixture::config_for(core), sink);
    let (_, bytes) = layout(graph);
    let pages = bytes.div_ceil(hpmp_memsim::PAGE_SIZE) + 1;
    let arena = UserArena::create(&mut tee.os, &mut tee.machine, pages)?;
    let trace = kernel_trace(graph, kernel, budget);
    let cycles = replay(&mut tee.os, &mut tee.machine, &arena, trace)?;
    tee.machine.flush_sink();
    Ok((cycles, tee.machine.metrics_snapshot()))
}

/// A default graph for tests and benches: 2^14 vertices, degree 8 (scaled
/// down from the paper's 2^20; [`PROP_STRIDE`] keeps the property array's
/// page footprint — 8 MiB, past the 4 MiB L2-TLB reach — so the TLB-miss
/// profile of the random property reads matches the full-size runs).
pub fn default_graph() -> KronGraph {
    KronGraph::generate(14, 8, 0x9a9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_generation_is_consistent() {
        let g = KronGraph::generate(8, 4, 1);
        assert_eq!(g.vertices, 256);
        assert_eq!(g.edge_count(), 256 * 4);
        assert_eq!(*g.offsets.last().unwrap(), g.edge_count());
        // Deterministic for a fixed seed.
        let g2 = KronGraph::generate(8, 4, 1);
        assert_eq!(g.edges, g2.edges);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = KronGraph::generate(10, 8, 2);
        let mut degrees: Vec<usize> = (0..g.vertices).map(|v| g.neighbours(v).len()).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = degrees
            .iter()
            .take(g.vertices as usize / 100)
            .sum::<usize>();
        // The top 1% of vertices should hold far more than 1% of edges.
        assert!(top as f64 > 0.05 * g.edge_count() as f64, "top1%={top}");
    }

    #[test]
    fn trace_touches_properties_randomly() {
        let g = KronGraph::generate(8, 4, 3);
        let trace = kernel_trace(&g, GapKernel::Pr, 500);
        assert!(!trace.is_empty());
        let (l, total) = layout(&g);
        assert!(trace.iter().all(|s| s.offset < total));
        assert!(trace.iter().any(|s| s.offset >= l.props_base));
    }

    #[test]
    fn bc_emits_more_work_than_bfs() {
        let g = KronGraph::generate(8, 4, 3);
        let bc = kernel_trace(&g, GapKernel::Bc, u64::MAX).len();
        let bfs = kernel_trace(&g, GapKernel::Bfs, u64::MAX).len();
        assert!(bc > bfs);
    }

    #[test]
    fn overhead_small_and_ordered() {
        // Small graph, small budget: fast smoke check of Figure 11's shape.
        let g = KronGraph::generate(10, 4, 5);
        let budget = 1500;
        let pmp = run_gap(
            TeeFlavor::PenglaiPmp,
            CoreKind::Rocket,
            GapKernel::Pr,
            &g,
            budget,
        )
        .unwrap();
        let pmpt = run_gap(
            TeeFlavor::PenglaiPmpt,
            CoreKind::Rocket,
            GapKernel::Pr,
            &g,
            budget,
        )
        .unwrap();
        let hpmp = run_gap(
            TeeFlavor::PenglaiHpmp,
            CoreKind::Rocket,
            GapKernel::Pr,
            &g,
            budget,
        )
        .unwrap();
        let pmpt_over = pmpt as f64 / pmp as f64;
        let hpmp_over = hpmp as f64 / pmp as f64;
        assert!(pmpt_over > 1.0, "PMPT must cost more than PMP: {pmpt_over}");
        assert!(hpmp_over < pmpt_over, "HPMP must recover part of the gap");
        assert!(
            pmpt_over < 1.35,
            "GAP overhead stays small (TLB inlining): {pmpt_over}"
        );
    }
}
