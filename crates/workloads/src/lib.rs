//! # hpmp-workloads
//!
//! Workload models for every experiment in the paper's evaluation: the
//! TC1–TC4 latency microbenchmarks (Table 2 / Figures 10 and 13), the RV8
//! and GAP suites (Figure 11), LMBench syscalls (Table 3), FunctionBench
//! and the chained image-processing application (Figure 12-a/b/c), Redis
//! (Figure 12-d/e), and the fragmentation microbenchmark (Figures 15/16).
//!
//! Each workload is a deterministic memory-reference trace with compute
//! interleaved, replayed through the full simulated stack (monitor + OS +
//! machine) so the three isolation schemes differ only in what the paper
//! says they differ in: the cost of TLB-miss-time permission walks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aging;
pub mod arena;
pub mod fixture;
pub mod frag;
pub mod gap;
pub mod latency;
pub mod lmbench;
pub mod multi_tenant;
pub mod redis;
pub mod rv8;
pub mod serverless;
pub mod smp;
pub mod virt_app;

pub use fixture::{TeeBench, FLAVORS, RAM_BASE, RAM_SIZE};
