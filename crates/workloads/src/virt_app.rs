//! Application-level traffic in the virtualized environment (§6/§8.6
//! extension).
//!
//! The paper evaluates virtualization with single-access microbenchmarks
//! (Figure 13); this extension runs a sustained key-value-style workload in
//! the guest — random probes over a resident guest dataset — so the 3-D
//! walk's cost shows up as end-to-end throughput, the way Figure 12 shows
//! it for the native case.

use hpmp_machine::{VirtMachine, VirtScheme};
use hpmp_memsim::{AccessKind, CoreKind, SplitMix64, VirtAddr, PAGE_SIZE};

/// Result of a guest-application run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VirtAppOutcome {
    /// Requests served.
    pub requests: u64,
    /// Total cycles.
    pub cycles: u64,
}

impl VirtAppOutcome {
    /// Mean cycles per request.
    pub fn cycles_per_request(&self) -> f64 {
        self.cycles as f64 / self.requests.max(1) as f64
    }
}

/// Serves `requests` key-value probes in a guest with `dataset_pages` of
/// resident data, under `scheme`. Each request: parse compute, two random
/// dataset reads, one write.
///
/// # Panics
///
/// Panics if the guest fixture cannot be built (fixed layout; sizes are
/// bounded by the fixture's pools).
pub fn run_guest_kv(
    core: CoreKind,
    scheme: VirtScheme,
    dataset_pages: u64,
    requests: u64,
) -> VirtAppOutcome {
    run_guest_kv_with_sink(core, scheme, dataset_pages, requests, hpmp_trace::NullSink).0
}

/// As [`run_guest_kv`], recording walk events into `sink` and returning the
/// guest machine's metrics snapshot alongside the outcome.
///
/// # Panics
///
/// As [`run_guest_kv`].
pub fn run_guest_kv_with_sink<S: hpmp_trace::TraceSink>(
    core: CoreKind,
    scheme: VirtScheme,
    dataset_pages: u64,
    requests: u64,
    sink: S,
) -> (VirtAppOutcome, hpmp_trace::Snapshot) {
    let config = crate::fixture::config_for(core);
    let mut machine = VirtMachine::with_sink(config, scheme, dataset_pages, sink);
    let base = 0x20_0000u64;
    let bytes = dataset_pages * PAGE_SIZE;
    // Pre-fault the dataset (long-running guest).
    for i in 0..dataset_pages {
        machine
            .access(VirtAddr::new(base + i * PAGE_SIZE), AccessKind::Write)
            .expect("guest dataset page");
    }

    let mut rng = SplitMix64::seed_from_u64(0x6e57);
    let mut cycles = 0u64;
    for _ in 0..requests {
        cycles += 120; // parse/dispatch compute in the guest
        for _ in 0..2 {
            let off = rng.gen_range(0..bytes) & !7;
            cycles += machine
                .access(VirtAddr::new(base + off), AccessKind::Read)
                .expect("probe")
                .cycles;
        }
        let off = rng.gen_range(0..bytes) & !7;
        cycles += machine
            .access(VirtAddr::new(base + off), AccessKind::Write)
            .expect("update")
            .cycles;
    }
    machine.sink_mut().flush();
    let snapshot = machine.metrics_snapshot();
    (VirtAppOutcome { requests, cycles }, snapshot)
}

/// Dataset size for the default guest workload: large enough that probes
/// miss the combined TLB regularly (the 3-D-walk-exposing regime).
pub const GUEST_DATASET_PAGES: u64 = 1536;

#[cfg(test)]
mod tests {
    use super::*;

    fn cpr(scheme: VirtScheme) -> f64 {
        run_guest_kv(CoreKind::Rocket, scheme, GUEST_DATASET_PAGES, 400).cycles_per_request()
    }

    #[test]
    fn guest_ordering_matches_native_shape() {
        let pmp = cpr(VirtScheme::Pmp);
        let hpmp_gpt = cpr(VirtScheme::HpmpGpt);
        let hpmp = cpr(VirtScheme::Hpmp);
        let pmpt = cpr(VirtScheme::PmpTable);
        assert!(pmp < hpmp_gpt, "PMP {pmp} < HPMP-GPT {hpmp_gpt}");
        assert!(hpmp_gpt < hpmp, "HPMP-GPT {hpmp_gpt} < HPMP {hpmp}");
        assert!(hpmp < pmpt, "HPMP {hpmp} < PMPT {pmpt}");
    }

    #[test]
    fn small_dataset_closes_the_gap() {
        // A TLB-resident guest dataset makes schemes nearly equal
        // (permission inlining covers the hits).
        let small_pmp =
            run_guest_kv(CoreKind::Rocket, VirtScheme::Pmp, 64, 300).cycles_per_request();
        let small_pmpt =
            run_guest_kv(CoreKind::Rocket, VirtScheme::PmpTable, 64, 300).cycles_per_request();
        let ratio = small_pmpt / small_pmp;
        assert!(
            ratio < 1.05,
            "TLB-resident guest should be scheme-insensitive: {ratio}"
        );
    }

    #[test]
    fn outcome_accounting() {
        let out = run_guest_kv(CoreKind::Rocket, VirtScheme::Hpmp, 64, 10);
        assert_eq!(out.requests, 10);
        assert!(out.cycles > 10 * 120);
    }
}
