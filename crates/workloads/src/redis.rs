//! The Redis in-memory data-store model (§8.5, Figure 12-d/e).
//!
//! A long-running server with a large resident dataset: every request
//! parses input (compute + hot accesses), probes the keyspace hash table
//! (random accesses over the full dataset — the TLB-miss source), and walks
//! value structures whose shape depends on the command. Throughput is
//! reported as requests-per-second, so the scheme overhead appears as an
//! RPS *drop*, largest for pointer-chasing commands like `LRANGE`.

use hpmp_memsim::{AccessKind, CoreKind, SplitMix64, PAGE_SIZE};
use hpmp_penglai::{OsError, TeeFlavor};
use hpmp_trace::TraceSink;

use crate::arena::{replay, TraceStep, UserArena};
use crate::fixture::TeeBench;

/// The redis-benchmark commands of Figure 12-d/e.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RedisCommand {
    /// `PING` (inline protocol).
    PingInline,
    /// `PING` (bulk protocol).
    PingBulk,
    /// `SET key value`.
    Set,
    /// `GET key`.
    Get,
    /// `INCR key`.
    Incr,
    /// `LPUSH list value`.
    Lpush,
    /// `RPUSH list value`.
    Rpush,
    /// `LPOP list`.
    Lpop,
    /// `RPOP list`.
    Rpop,
    /// `SADD set value`.
    Sadd,
    /// `HSET hash field value`.
    Hset,
    /// `SPOP set`.
    Spop,
    /// `LRANGE` over 100 elements.
    Lrange100,
    /// `LRANGE` over 300 elements.
    Lrange300,
    /// `LRANGE` over 500 elements.
    Lrange500,
    /// `LRANGE` over 600 elements.
    Lrange600,
    /// `MSET` of 10 keys.
    Mset,
}

/// All commands in the figure's order.
pub const REDIS_COMMANDS: [RedisCommand; 17] = [
    RedisCommand::PingInline,
    RedisCommand::PingBulk,
    RedisCommand::Set,
    RedisCommand::Get,
    RedisCommand::Incr,
    RedisCommand::Lpush,
    RedisCommand::Rpush,
    RedisCommand::Lpop,
    RedisCommand::Rpop,
    RedisCommand::Sadd,
    RedisCommand::Hset,
    RedisCommand::Spop,
    RedisCommand::Lrange100,
    RedisCommand::Lrange300,
    RedisCommand::Lrange500,
    RedisCommand::Lrange600,
    RedisCommand::Mset,
];

impl std::fmt::Display for RedisCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RedisCommand::PingInline => "PING_INLINE",
            RedisCommand::PingBulk => "PING_BULK",
            RedisCommand::Set => "SET",
            RedisCommand::Get => "GET",
            RedisCommand::Incr => "INCR",
            RedisCommand::Lpush => "LPUSH",
            RedisCommand::Rpush => "RPUSH",
            RedisCommand::Lpop => "LPOP",
            RedisCommand::Rpop => "RPOP",
            RedisCommand::Sadd => "SADD",
            RedisCommand::Hset => "HSET",
            RedisCommand::Spop => "SPOP",
            RedisCommand::Lrange100 => "LRANGE_100",
            RedisCommand::Lrange300 => "LRANGE_300",
            RedisCommand::Lrange500 => "LRANGE_500",
            RedisCommand::Lrange600 => "LRANGE_600",
            RedisCommand::Mset => "MSET",
        })
    }
}

/// Per-request shape: `(keyspace_probes, value_nodes, writes, parse_compute)`.
fn shape(cmd: RedisCommand) -> (u64, u64, bool, u64) {
    match cmd {
        RedisCommand::PingInline => (0, 0, false, 60),
        RedisCommand::PingBulk => (0, 0, false, 80),
        RedisCommand::Set => (1, 1, true, 110),
        RedisCommand::Get => (1, 1, false, 100),
        RedisCommand::Incr => (1, 1, true, 105),
        RedisCommand::Lpush => (1, 2, true, 115),
        RedisCommand::Rpush => (1, 2, true, 115),
        RedisCommand::Lpop => (1, 2, true, 105),
        RedisCommand::Rpop => (1, 2, true, 105),
        RedisCommand::Sadd => (1, 2, true, 115),
        RedisCommand::Hset => (1, 2, true, 120),
        RedisCommand::Spop => (1, 2, true, 110),
        // LRANGE_N walks N list nodes scattered through the heap: the
        // pointer chase that makes it the worst case of the figure.
        RedisCommand::Lrange100 => (1, 100, false, 140),
        RedisCommand::Lrange300 => (1, 300, false, 180),
        RedisCommand::Lrange500 => (1, 500, false, 220),
        RedisCommand::Lrange600 => (1, 600, false, 240),
        // MSET: 10 keys, but each probe is cheap and parse dominates.
        RedisCommand::Mset => (10, 10, true, 260),
    }
}

/// A resident Redis server instance.
#[derive(Debug)]
pub struct RedisServer<S: TraceSink = hpmp_trace::NullSink> {
    tee: TeeBench<S>,
    arena: UserArena,
    rng: SplitMix64,
    dataset_bytes: u64,
}

impl RedisServer {
    /// Boots the stack and a server with a `dataset_pages`-page resident
    /// dataset, pre-faulted (Redis is long-running; its pages are resident).
    ///
    /// # Errors
    ///
    /// Propagates OS errors.
    pub fn start(
        flavor: TeeFlavor,
        core: CoreKind,
        dataset_pages: u64,
    ) -> Result<RedisServer, OsError> {
        RedisServer::start_with_sink(flavor, core, dataset_pages, hpmp_trace::NullSink)
    }
}

impl<S: TraceSink> RedisServer<S> {
    /// The underlying TEE stack (for stats and trace inspection).
    pub fn tee(&self) -> &TeeBench<S> {
        &self.tee
    }

    /// Mutable access to the underlying TEE stack.
    pub fn tee_mut(&mut self) -> &mut TeeBench<S> {
        &mut self.tee
    }

    /// As [`RedisServer::start`], recording walk events into `sink`.
    ///
    /// # Errors
    ///
    /// Propagates OS errors.
    pub fn start_with_sink(
        flavor: TeeFlavor,
        core: CoreKind,
        dataset_pages: u64,
        sink: S,
    ) -> Result<RedisServer<S>, OsError> {
        let mut tee = TeeBench::boot_with_sink(flavor, crate::fixture::config_for(core), sink);
        let arena = UserArena::create(&mut tee.os, &mut tee.machine, dataset_pages)?;
        // Pre-fault every page once.
        let warm: Vec<TraceStep> = (0..dataset_pages)
            .map(|i| TraceStep {
                offset: i * PAGE_SIZE,
                kind: AccessKind::Write,
                compute: 0,
            })
            .collect();
        replay(&mut tee.os, &mut tee.machine, &arena, warm)?;
        Ok(RedisServer {
            tee,
            arena,
            rng: SplitMix64::seed_from_u64(0x7ed1),
            dataset_bytes: dataset_pages * PAGE_SIZE,
        })
    }

    /// Serves one request; returns its cycle cost.
    ///
    /// # Errors
    ///
    /// Propagates access faults.
    pub fn serve(&mut self, cmd: RedisCommand) -> Result<u64, OsError> {
        let (probes, nodes, writes, parse) = shape(cmd);
        let mut trace = Vec::with_capacity((probes + nodes + 2) as usize);
        // Parse + dispatch over hot server state.
        trace.push(TraceStep {
            offset: 0,
            kind: AccessKind::Read,
            compute: parse,
        });
        for _ in 0..probes {
            // Hash-table probe: uniform over the dataset.
            trace.push(TraceStep {
                offset: self.rng.gen_range(0..self.dataset_bytes) & !7,
                kind: AccessKind::Read,
                compute: 6,
            });
        }
        for _ in 0..nodes {
            // Value nodes: allocator-scattered.
            trace.push(TraceStep {
                offset: self.rng.gen_range(0..self.dataset_bytes) & !7,
                kind: if writes {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                compute: 4,
            });
        }
        replay(&mut self.tee.os, &mut self.tee.machine, &self.arena, trace)
    }

    /// Requests-per-second for `cmd`, measured over `n` requests.
    ///
    /// # Errors
    ///
    /// Propagates access faults.
    pub fn rps(&mut self, cmd: RedisCommand, n: u64) -> Result<f64, OsError> {
        let mut total = 0;
        for _ in 0..n {
            total += self.serve(cmd)?;
        }
        let mean_cycles = total as f64 / n as f64;
        let hz = self.tee.machine.core().clock_mhz as f64 * 1e6;
        Ok(hz / mean_cycles)
    }
}

/// Default resident dataset: 32 MiB (large enough that hash probes miss the
/// 1024-entry L2 TLB, as redis-benchmark's keyspace does on the FPGA).
pub const DEFAULT_DATASET_PAGES: u64 = (32 << 20) / PAGE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    fn rps(flavor: TeeFlavor, cmd: RedisCommand) -> f64 {
        let mut server =
            RedisServer::start(flavor, CoreKind::Rocket, DEFAULT_DATASET_PAGES).unwrap();
        server.rps(cmd, 300).unwrap()
    }

    #[test]
    fn pmpt_drops_rps() {
        let pmp = rps(TeeFlavor::PenglaiPmp, RedisCommand::Get);
        let pmpt = rps(TeeFlavor::PenglaiPmpt, RedisCommand::Get);
        let hpmp = rps(TeeFlavor::PenglaiHpmp, RedisCommand::Get);
        assert!(pmpt < pmp, "PMPT must lower RPS: {pmpt} vs {pmp}");
        assert!(hpmp > pmpt, "HPMP must recover RPS: {hpmp} vs {pmpt}");
    }

    #[test]
    fn lrange_hurts_most() {
        let drop = |cmd| {
            let pmp = rps(TeeFlavor::PenglaiPmp, cmd);
            let pmpt = rps(TeeFlavor::PenglaiPmpt, cmd);
            1.0 - pmpt / pmp
        };
        let lrange = drop(RedisCommand::Lrange100);
        let mset = drop(RedisCommand::Mset);
        assert!(
            lrange > mset,
            "LRANGE_100 drop {lrange} should exceed MSET drop {mset}"
        );
    }

    #[test]
    fn ping_is_cheap_and_insensitive() {
        let pmp = rps(TeeFlavor::PenglaiPmp, RedisCommand::PingInline);
        let pmpt = rps(TeeFlavor::PenglaiPmpt, RedisCommand::PingInline);
        let get = rps(TeeFlavor::PenglaiPmp, RedisCommand::Get);
        assert!(pmp > get, "PING must be faster than GET");
        assert!(
            (pmp - pmpt).abs() / pmp < 0.12,
            "PING nearly scheme-independent"
        );
    }

    #[test]
    fn all_commands_serve() {
        let mut server =
            RedisServer::start(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, 1024).unwrap();
        for cmd in REDIS_COMMANDS {
            assert!(server.serve(cmd).unwrap() > 0, "{cmd}");
        }
    }
}
