//! The memory-access-latency microbenchmark (§8.1: Table 2, Figure 10; and
//! §8.6: Figure 13 for the virtualized environment).
//!
//! Measures a single `ld`/`sd` under the four microarchitectural states of
//! Table 2 (TC1 cold … TC4 all-warm) for each isolation scheme.

use hpmp_machine::{IsolationScheme, MachineConfig, SystemBuilder, VirtMachine, VirtScheme};
use hpmp_memsim::{AccessKind, CoreKind, Perms, PrivMode, VirtAddr, PAGE_SIZE};

/// The microarchitectural states of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TestCase {
    /// Everything cold: caches, PWC, TLB.
    Tc1,
    /// Caches warm, PWC and TLB cold (post-`sfence.vma`).
    Tc2,
    /// Caches and upper-level PWC warm, leaf PTE and TLB cold
    /// (the "jump to an adjacent page" case).
    Tc3,
    /// Everything warm: TLB hit, cache hit.
    Tc4,
}

/// All four cases in presentation order.
pub const TEST_CASES: [TestCase; 4] = [TestCase::Tc1, TestCase::Tc2, TestCase::Tc3, TestCase::Tc4];

impl std::fmt::Display for TestCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TestCase::Tc1 => "TC1",
            TestCase::Tc2 => "TC2",
            TestCase::Tc3 => "TC3",
            TestCase::Tc4 => "TC4",
        })
    }
}

fn machine_config(core: CoreKind) -> MachineConfig {
    match core {
        CoreKind::Rocket => MachineConfig::rocket(),
        CoreKind::Boom => MachineConfig::boom(),
    }
}

/// Measures one memory instruction's latency in cycles for the given core,
/// scheme, operation (`Read` = `ld`, `Write` = `sd`) and test case.
pub fn measure(core: CoreKind, scheme: IsolationScheme, op: AccessKind, case: TestCase) -> u64 {
    measure_with_config(machine_config(core), scheme, op, case)
}

/// As [`measure`], with an explicit machine configuration (PWC/PMPTW-Cache
/// sweeps).
pub fn measure_with_config(
    config: MachineConfig,
    scheme: IsolationScheme,
    op: AccessKind,
    case: TestCase,
) -> u64 {
    let mut sys = SystemBuilder::new(config, scheme).build();
    // Map a small working set: the measured page plus an adjacent page used
    // to pre-warm the shared upper PT levels for TC3. The VA is chosen with
    // non-zero VPN fields (9/17/33) so PTE slots land in distinct cache
    // sets, as arbitrary application addresses do — all-zero indices would
    // artificially conflict every hot line into L1 set 0.
    let target = VirtAddr::new((9 << 30) | (17 << 21) | (33 << 12) | 0x2c0);
    let neighbour = target.page_base() + PAGE_SIZE;
    sys.map_range(target, 2, Perms::RW);
    sys.sync_pt_grants();
    let m = &mut sys.machine;
    let s = PrivMode::Supervisor;

    match case {
        TestCase::Tc1 => {
            m.flush_microarch();
        }
        TestCase::Tc2 => {
            // Warm all state, then drop only translations (sfence.vma).
            m.access(&sys.space, target, op, s).expect("warm");
            m.access(&sys.space, target, op, s).expect("warm");
            m.sfence_vma_all();
        }
        TestCase::Tc3 => {
            // Warm the neighbour page: upper PWC levels and caches become
            // hot; the target's leaf PTE and TLB entry stay cold.
            m.flush_microarch();
            m.access(&sys.space, neighbour, op, s)
                .expect("warm neighbour");
        }
        TestCase::Tc4 => {
            m.access(&sys.space, target, op, s).expect("warm");
        }
    }
    m.access(&sys.space, target, op, s)
        .expect("measured access")
        .cycles
}

/// One row of Figure 10: the latencies for (PMPT, HPMP, PMP).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyRow {
    /// The test case.
    pub case: TestCase,
    /// PMP Table latency in cycles.
    pub pmpt: u64,
    /// HPMP latency in cycles.
    pub hpmp: u64,
    /// PMP latency in cycles.
    pub pmp: u64,
}

impl LatencyRow {
    /// Fraction of the PMPT-over-PMP cost that HPMP removes, in `[0, 1]`
    /// (the paper's "mitigates 23.1%–73.1% of costs").
    pub fn mitigation(&self) -> f64 {
        let extra_pmpt = self.pmpt.saturating_sub(self.pmp) as f64;
        let extra_hpmp = self.hpmp.saturating_sub(self.pmp) as f64;
        if extra_pmpt == 0.0 {
            0.0
        } else {
            1.0 - extra_hpmp / extra_pmpt
        }
    }
}

/// Produces the full Figure 10 panel for one core and operation.
pub fn figure_10_panel(core: CoreKind, op: AccessKind) -> Vec<LatencyRow> {
    TEST_CASES
        .iter()
        .map(|&case| LatencyRow {
            case,
            pmpt: measure(core, IsolationScheme::PmpTable, op, case),
            hpmp: measure(core, IsolationScheme::Hpmp, op, case),
            pmp: measure(core, IsolationScheme::Pmp, op, case),
        })
        .collect()
}

/// The microarchitectural states of Figure 13 (virtualized).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VirtCase {
    /// Everything cold.
    Tc1,
    /// After `hfence.vvma` (G-stage state retained).
    AfterHfenceV,
    /// After `hfence.gvma` (G-stage state flushed; caches warm).
    AfterHfenceG,
    /// Adjacent-page access (walk caches warm).
    Tc3,
    /// TLB hit.
    Tc4,
}

/// All five cases in presentation order.
pub const VIRT_CASES: [VirtCase; 5] = [
    VirtCase::Tc1,
    VirtCase::AfterHfenceV,
    VirtCase::AfterHfenceG,
    VirtCase::Tc3,
    VirtCase::Tc4,
];

impl std::fmt::Display for VirtCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VirtCase::Tc1 => "TC1",
            VirtCase::AfterHfenceV => "hfence.v",
            VirtCase::AfterHfenceG => "hfence.g",
            VirtCase::Tc3 => "TC3",
            VirtCase::Tc4 => "TC4",
        })
    }
}

/// Measures one guest access (the paper uses `hlv.d`) for Figure 13.
pub fn measure_virt(core: CoreKind, scheme: VirtScheme, case: VirtCase) -> u64 {
    measure_virt_with_sink(core, scheme, case, hpmp_trace::NullSink).0
}

/// As [`measure_virt`], recording walk events into `sink` and returning the
/// machine's metrics snapshot alongside the measured latency.
pub fn measure_virt_with_sink<S: hpmp_trace::TraceSink>(
    core: CoreKind,
    scheme: VirtScheme,
    case: VirtCase,
    sink: S,
) -> (u64, hpmp_trace::Snapshot) {
    let mut m = VirtMachine::with_sink(machine_config(core), scheme, 8, sink);
    let target = VirtAddr::new(0x20_0000);
    let neighbour = VirtAddr::new(0x20_0000 + PAGE_SIZE);
    match case {
        VirtCase::Tc1 => m.flush_microarch(),
        VirtCase::AfterHfenceV => {
            m.access(target, AccessKind::Read).expect("warm");
            m.hfence_vvma();
        }
        VirtCase::AfterHfenceG => {
            m.access(target, AccessKind::Read).expect("warm");
            m.hfence_gvma();
        }
        VirtCase::Tc3 => {
            m.flush_microarch();
            m.access(neighbour, AccessKind::Read)
                .expect("warm neighbour");
        }
        VirtCase::Tc4 => {
            m.access(target, AccessKind::Read).expect("warm");
        }
    }
    let cycles = m
        .access(target, AccessKind::Read)
        .expect("measured access")
        .cycles;
    m.sink_mut().flush();
    let snapshot = m.metrics_snapshot();
    (cycles, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tc1_ordering_per_figure_10() {
        for core in [CoreKind::Rocket, CoreKind::Boom] {
            for op in [AccessKind::Read, AccessKind::Write] {
                let pmp = measure(core, IsolationScheme::Pmp, op, TestCase::Tc1);
                let hpmp = measure(core, IsolationScheme::Hpmp, op, TestCase::Tc1);
                let pmpt = measure(core, IsolationScheme::PmpTable, op, TestCase::Tc1);
                assert!(
                    pmp < hpmp && hpmp < pmpt,
                    "{core} {op}: pmp={pmp} hpmp={hpmp} pmpt={pmpt}"
                );
            }
        }
    }

    #[test]
    fn tc4_equal_across_schemes() {
        for op in [AccessKind::Read, AccessKind::Write] {
            let pmp = measure(CoreKind::Rocket, IsolationScheme::Pmp, op, TestCase::Tc4);
            let hpmp = measure(CoreKind::Rocket, IsolationScheme::Hpmp, op, TestCase::Tc4);
            let pmpt = measure(
                CoreKind::Rocket,
                IsolationScheme::PmpTable,
                op,
                TestCase::Tc4,
            );
            assert_eq!(pmp, hpmp);
            assert_eq!(pmp, pmpt);
        }
    }

    #[test]
    fn cases_get_progressively_warmer() {
        let lat: Vec<u64> = TEST_CASES
            .iter()
            .map(|&c| {
                measure(
                    CoreKind::Rocket,
                    IsolationScheme::PmpTable,
                    AccessKind::Read,
                    c,
                )
            })
            .collect();
        assert!(lat[0] > lat[1], "TC1 > TC2: {lat:?}");
        assert!(lat[1] > lat[2], "TC2 > TC3: {lat:?}");
        assert!(lat[2] > lat[3], "TC3 > TC4: {lat:?}");
    }

    #[test]
    fn mitigation_in_paper_band() {
        // The paper: HPMP mitigates 23.1%–73.1% (BOOM) / 47.7%–72.4%
        // (Rocket) of the extra-dimensional walk cost. Accept a wider
        // sanity band: mitigation must be substantial on every walking case.
        for core in [CoreKind::Rocket, CoreKind::Boom] {
            for op in [AccessKind::Read, AccessKind::Write] {
                for row in figure_10_panel(core, op) {
                    if row.case == TestCase::Tc4 {
                        continue;
                    }
                    let m = row.mitigation();
                    assert!(
                        m > 0.2 && m <= 1.0,
                        "{core} {op} {}: mitigation {m}",
                        row.case
                    );
                }
            }
        }
    }

    #[test]
    fn sd_pays_more_than_ld_when_walking() {
        let ld = measure(
            CoreKind::Boom,
            IsolationScheme::PmpTable,
            AccessKind::Read,
            TestCase::Tc1,
        );
        let sd = measure(
            CoreKind::Boom,
            IsolationScheme::PmpTable,
            AccessKind::Write,
            TestCase::Tc1,
        );
        assert!(sd > ld);
    }

    #[test]
    fn virt_orderings_match_figure_13() {
        let lat: Vec<u64> = [
            VirtScheme::Pmp,
            VirtScheme::HpmpGpt,
            VirtScheme::Hpmp,
            VirtScheme::PmpTable,
        ]
        .iter()
        .map(|&s| measure_virt(CoreKind::Rocket, s, VirtCase::Tc1))
        .collect();
        assert!(
            lat[0] < lat[1] && lat[1] < lat[2] && lat[2] < lat[3],
            "{lat:?}"
        );
        // hfence.v cheaper than hfence.g for the table scheme.
        let v = measure_virt(
            CoreKind::Rocket,
            VirtScheme::PmpTable,
            VirtCase::AfterHfenceV,
        );
        let g = measure_virt(
            CoreKind::Rocket,
            VirtScheme::PmpTable,
            VirtCase::AfterHfenceG,
        );
        assert!(v < g, "hfence.v {v} < hfence.g {g}");
        // TC4 equal across schemes.
        let tc4: Vec<u64> = [
            VirtScheme::Pmp,
            VirtScheme::PmpTable,
            VirtScheme::Hpmp,
            VirtScheme::HpmpGpt,
        ]
        .iter()
        .map(|&s| measure_virt(CoreKind::Rocket, s, VirtCase::Tc4))
        .collect();
        assert!(tc4.windows(2).all(|w| w[0] == w[1]), "{tc4:?}");
    }
}
