//! The LMBench OS-operation model (§8.2, Table 3).
//!
//! Each syscall is modelled by the kernel work it actually performs on the
//! simulated OS: trap entry, kernel data-structure accesses (whose footprint
//! determines the TLB-miss rate and hence the scheme gap), buffer copies,
//! and — for fork/exec — genuine page-table construction through
//! [`hpmp_penglai::SimOs`]. `null` touches almost nothing and lands at
//! ~100% in every scheme; `fork+exec` rebuilds address spaces and lands at
//! the top of the table.

use hpmp_memsim::{AccessKind, CoreKind, PhysAddr, SplitMix64};
use hpmp_penglai::{OsError, Pid, TeeFlavor};
use hpmp_trace::TraceSink;

use crate::fixture::TeeBench;

/// The syscalls of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Syscall {
    /// `getppid`-style null syscall.
    Null,
    /// `read` from /dev/zero into a small buffer.
    Read,
    /// `write` to /dev/null.
    Write,
    /// `stat` of a path (dentry walk).
    Stat,
    /// `fstat` of an open fd.
    Fstat,
    /// `open` + `close` of a path.
    OpenClose,
    /// pipe round-trip between two processes.
    Pipe,
    /// `fork` + `exit`.
    ForkExit,
    /// `fork` + `exec`.
    ForkExec,
}

/// All syscalls in Table 3's order.
pub const SYSCALLS: [Syscall; 9] = [
    Syscall::Null,
    Syscall::Read,
    Syscall::Write,
    Syscall::Stat,
    Syscall::Fstat,
    Syscall::OpenClose,
    Syscall::Pipe,
    Syscall::ForkExit,
    Syscall::ForkExec,
];

impl std::fmt::Display for Syscall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Syscall::Null => "null",
            Syscall::Read => "read",
            Syscall::Write => "write",
            Syscall::Stat => "stat",
            Syscall::Fstat => "fstat",
            Syscall::OpenClose => "open/close",
            Syscall::Pipe => "pipe",
            Syscall::ForkExit => "fork+exit",
            Syscall::ForkExec => "fork+exec",
        })
    }
}

/// A benchmark context: a TEE stack with one resident process and a seeded
/// RNG for kernel-structure placement.
#[derive(Debug)]
pub struct LmbenchContext<S: TraceSink = hpmp_trace::NullSink> {
    tee: TeeBench<S>,
    proc: Pid,
    rng: SplitMix64,
    /// Base of the simulated kernel-object area (dentries, inodes, files).
    kernel_objs: PhysAddr,
}

impl LmbenchContext {
    /// Boots the stack and a resident benchmark process.
    ///
    /// # Errors
    ///
    /// Propagates OS boot errors.
    pub fn new(flavor: TeeFlavor, core: CoreKind) -> Result<LmbenchContext, OsError> {
        LmbenchContext::new_with_sink(flavor, core, hpmp_trace::NullSink)
    }
}

impl<S: TraceSink> LmbenchContext<S> {
    /// The underlying TEE stack (for stats and trace inspection).
    pub fn tee(&self) -> &TeeBench<S> {
        &self.tee
    }

    /// Mutable access to the underlying TEE stack.
    pub fn tee_mut(&mut self) -> &mut TeeBench<S> {
        &mut self.tee
    }

    /// As [`LmbenchContext::new`], recording walk events into `sink`.
    ///
    /// # Errors
    ///
    /// Propagates OS boot errors.
    pub fn new_with_sink(
        flavor: TeeFlavor,
        core: CoreKind,
        sink: S,
    ) -> Result<LmbenchContext<S>, OsError> {
        let mut tee = TeeBench::boot_with_sink(flavor, crate::fixture::config_for(core), sink);
        let (proc, _) = tee.os.spawn(&mut tee.machine, 8)?;
        tee.os.mmap(&mut tee.machine, proc, 8)?;
        // Kernel objects live in the OS's kernel area inside the data GMS.
        let kernel_objs = tee.os.kernel_area().0;
        Ok(LmbenchContext {
            tee,
            proc,
            rng: SplitMix64::seed_from_u64(0xbe9c),
            kernel_objs,
        })
    }

    /// Runs one iteration of `syscall`, returning its cycle cost.
    ///
    /// # Errors
    ///
    /// Propagates access faults.
    pub fn run(&mut self, syscall: Syscall) -> Result<u64, OsError> {
        let mut cycles = self.trap(120); // entry/exit + dispatch
        match syscall {
            Syscall::Null => {
                cycles += self.kernel_hot(4)?;
            }
            Syscall::Read => {
                cycles += self.kernel_hot(6)?;
                cycles += self.kernel_objects(6)?; // file, inode, page cache
                cycles += self.copy(512)?;
            }
            Syscall::Write => {
                cycles += self.kernel_hot(6)?;
                cycles += self.kernel_objects(3)?;
                cycles += self.copy(512)?;
            }
            Syscall::Stat => {
                cycles += self.kernel_hot(8)?;
                // Path walk: ~6 dentry/inode lookups scattered over the
                // dentry cache — the TLB-miss-heavy part.
                cycles += self.kernel_objects(26)?;
            }
            Syscall::Fstat => {
                cycles += self.kernel_hot(6)?;
                cycles += self.kernel_objects(5)?;
            }
            Syscall::OpenClose => {
                cycles += self.kernel_hot(10)?;
                cycles += self.kernel_objects(30)?; // walk + fd alloc + release
            }
            Syscall::Pipe => {
                cycles += self.kernel_hot(10)?;
                cycles += self.kernel_objects(12)?;
                cycles += self.copy(512)?;
                cycles += self
                    .tee
                    .os
                    .context_switch(&mut self.tee.machine, self.proc)?;
                cycles += self.copy(512)?;
                cycles += self
                    .tee
                    .os
                    .context_switch(&mut self.tee.machine, self.proc)?;
            }
            Syscall::ForkExit => {
                let (child, fork) = self.tee.os.fork(&mut self.tee.machine, self.proc)?;
                cycles += fork;
                cycles += self.kernel_objects(10)?;
                cycles += self.tee.os.exit(&mut self.tee.machine, child)?;
            }
            Syscall::ForkExec => {
                let (child, fork) = self.tee.os.fork(&mut self.tee.machine, self.proc)?;
                cycles += fork;
                cycles += self.tee.os.exit(&mut self.tee.machine, child)?;
                let (fresh, spawn) = self.tee.os.spawn(&mut self.tee.machine, 12)?;
                cycles += spawn;
                cycles += self.kernel_objects(12)?;
                cycles += self.tee.os.exit(&mut self.tee.machine, fresh)?;
            }
        }
        Ok(cycles)
    }

    fn trap(&mut self, instructions: u64) -> u64 {
        self.tee.machine.run_compute(instructions)
    }

    /// Hot per-CPU kernel data: a few lines, always TLB/cache resident.
    fn kernel_hot(&mut self, accesses: u64) -> Result<u64, OsError> {
        let mut cycles = 0;
        let (base, size) = self.tee.os.kernel_area();
        let hot = PhysAddr::new(base.raw() + size - (1 << 20));
        for i in 0..accesses {
            let pa = PhysAddr::new(hot.raw() + (i % 8) * 64);
            cycles += self
                .tee
                .os
                .kernel_access(&mut self.tee.machine, pa, AccessKind::Read)?;
        }
        Ok(cycles)
    }

    /// Scattered kernel objects over a 16 MiB slab area: dentries, inodes,
    /// files. This is where the schemes separate.
    fn kernel_objects(&mut self, accesses: u64) -> Result<u64, OsError> {
        let mut cycles = 0;
        let slab = (16u64 << 20).min(self.tee.os.kernel_area().1 / 2);
        for _ in 0..accesses {
            let off = self.rng.gen_range(0..slab) & !63;
            let pa = PhysAddr::new(self.kernel_objs.raw() + off);
            cycles += self
                .tee
                .os
                .kernel_access(&mut self.tee.machine, pa, AccessKind::Read)?;
            cycles += self.tee.machine.run_compute(12);
        }
        Ok(cycles)
    }

    /// A user↔kernel buffer copy of `bytes`.
    fn copy(&mut self, bytes: u64) -> Result<u64, OsError> {
        let mut cycles = 0;
        let lines = bytes.div_ceil(64);
        for i in 0..lines {
            let user_va = hpmp_memsim::VirtAddr::new(hpmp_penglai::USER_HEAP_BASE + i * 64);
            cycles += self.tee.os.user_access(
                &mut self.tee.machine,
                self.proc,
                user_va,
                AccessKind::Read,
            )?;
            let (base, size) = self.tee.os.kernel_area();
            let pa = PhysAddr::new(base.raw() + size - (2 << 20) + i * 64);
            cycles += self
                .tee
                .os
                .kernel_access(&mut self.tee.machine, pa, AccessKind::Write)?;
        }
        Ok(cycles)
    }
}

/// Mean cost of `syscall` over `iters` iterations (first iteration warms
/// up and is excluded).
///
/// # Errors
///
/// Propagates OS errors.
pub fn measure_syscall(
    flavor: TeeFlavor,
    core: CoreKind,
    syscall: Syscall,
    iters: u64,
) -> Result<u64, OsError> {
    let mut ctx = LmbenchContext::new(flavor, core)?;
    ctx.run(syscall)?; // warm-up
    let mut total = 0;
    for _ in 0..iters {
        total += ctx.run(syscall)?;
    }
    Ok(total / iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_scheme_independent() {
        let pmp =
            measure_syscall(TeeFlavor::PenglaiPmp, CoreKind::Rocket, Syscall::Null, 20).unwrap();
        let pmpt =
            measure_syscall(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, Syscall::Null, 20).unwrap();
        let ratio = pmpt as f64 / pmp as f64;
        assert!((0.98..1.05).contains(&ratio), "null ratio {ratio}");
    }

    #[test]
    fn stat_separates_schemes() {
        let pmp =
            measure_syscall(TeeFlavor::PenglaiPmp, CoreKind::Rocket, Syscall::Stat, 12).unwrap();
        let pmpt =
            measure_syscall(TeeFlavor::PenglaiPmpt, CoreKind::Rocket, Syscall::Stat, 12).unwrap();
        let hpmp =
            measure_syscall(TeeFlavor::PenglaiHpmp, CoreKind::Rocket, Syscall::Stat, 12).unwrap();
        let pmpt_ratio = pmpt as f64 / pmp as f64;
        let hpmp_ratio = hpmp as f64 / pmp as f64;
        assert!(
            pmpt_ratio > 1.05,
            "stat: PMPT should cost >5%: {pmpt_ratio}"
        );
        assert!(hpmp_ratio < pmpt_ratio, "stat: HPMP must beat PMPT");
    }

    #[test]
    fn fork_exec_heaviest() {
        let mut ctx = LmbenchContext::new(TeeFlavor::PenglaiPmpt, CoreKind::Rocket).unwrap();
        let null = ctx.run(Syscall::Null).unwrap();
        let fork_exec = ctx.run(Syscall::ForkExec).unwrap();
        assert!(
            fork_exec > 10 * null,
            "fork+exec {fork_exec} vs null {null}"
        );
    }

    #[test]
    fn all_syscalls_run_on_all_flavours() {
        for flavor in crate::fixture::FLAVORS {
            let mut ctx = LmbenchContext::new(flavor, CoreKind::Rocket).unwrap();
            for syscall in SYSCALLS {
                assert!(ctx.run(syscall).unwrap() > 0, "{flavor} {syscall}");
            }
        }
    }
}
