//! CLI-level tests of the `hpmp-analyze` binary: argument handling, exit
//! codes, and the doctored-baseline gate acceptance criterion.

use hpmp_trace::{
    AccessClass, BenchReport, ExperimentRecord, LatencyHistograms, MetricsRegistry, Snapshot,
    SpanCollector, SpanEvent, SpanKind,
};
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hpmp-analyze"))
}

/// A scratch file under the target-adjacent temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hpmp-analyze-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn write(name: &str, content: &str) -> PathBuf {
    let path = scratch(name);
    std::fs::write(&path, content).expect("write scratch file");
    path
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn snapshot(cycles: u64, walk_latency: u64) -> Snapshot {
    let mut hists = LatencyHistograms::new();
    for _ in 0..10 {
        hists.record(AccessClass::ReadWalk, walk_latency);
    }
    let mut reg = MetricsRegistry::new();
    reg.set("machine.cycles", cycles);
    reg.set("machine.refs", 60);
    hists.export(&mut reg, "machine.latency");
    reg.snapshot()
}

fn bench_report(cycles: u64) -> String {
    let mut r = BenchReport::new("repro");
    r.set_config("scheme", "hpmp");
    r.push(ExperimentRecord::from_snapshot(
        "fig2",
        cycles,
        snapshot(cycles, 30),
    ));
    r.to_json()
}

/// A tiny span stream — one op on hart 0, one shootdown delivery on
/// hart 1 — serialized as the JSONL artifact, plus the snapshot its
/// handler spans re-derive.
fn span_artifact(name: &str) -> (PathBuf, Snapshot) {
    let mut c = SpanCollector::bounded(64);
    let op = c.reserve().expect("capacity");
    let recv = c
        .emit(SpanKind::ShootdownRecv, 1, Some(7), Some(op), 100, 180)
        .expect("capacity");
    c.emit(SpanKind::Trap, 1, Some(7), Some(recv), 110, 140);
    c.emit(SpanKind::Reprogram, 1, Some(7), Some(recv), 140, 165);
    c.emit(SpanKind::Fence, 1, Some(7), Some(recv), 165, 180);
    c.emit_reserved(SpanEvent {
        id: op,
        parent: None,
        kind: SpanKind::Free,
        hart: 0,
        domain: Some(7),
        begin: 90,
        end: 200,
    });
    let mut bytes = Vec::new();
    c.write_jsonl(&mut bytes).expect("Vec writes cannot fail");
    let path = scratch(name);
    std::fs::write(&path, bytes).expect("write span artifact");

    let mut reg = MetricsRegistry::new();
    reg.set("hart.1.shootdown_cycles", 70); // trap 30 + reprogram 25 + fence 15
    reg.set("hart.1.shootdowns", 1);
    reg.set("hart.0.shootdown_cycles", 0);
    reg.set("hart.0.shootdowns", 0);
    (path, reg.snapshot())
}

#[test]
fn export_needs_an_output() {
    let out = run(&["export"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--chrome"));
}

#[test]
fn export_chrome_needs_spans() {
    let chrome = scratch("orphan.chrome.json");
    let out = run(&["export", "--chrome", chrome.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--spans"));
}

#[test]
fn export_writes_chrome_trace_and_verifies_the_round_trip() {
    let (spans, snapshot) = span_artifact("export_ok.spans.jsonl");
    let final_path = write("export_ok.final.json", &snapshot.to_json_versioned());
    let chrome = scratch("export_ok.chrome.json");
    let out = run(&[
        "export",
        "--spans",
        spans.to_str().unwrap(),
        "--final",
        final_path.to_str().unwrap(),
        "--chrome",
        chrome.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("round trip"), "{stdout}");
    let doc = std::fs::read_to_string(&chrome).expect("chrome trace written");
    assert!(doc.contains("\"traceEvents\""), "{doc}");
    assert!(doc.contains("\"ph\":\"X\""), "{doc}");
}

#[test]
fn export_fails_when_durations_do_not_re_derive_the_counters() {
    let (spans, _) = span_artifact("export_bad.spans.jsonl");
    let mut reg = MetricsRegistry::new();
    reg.set("hart.1.shootdown_cycles", 71); // off by one
    reg.set("hart.1.shootdowns", 1);
    let final_path = write("export_bad.final.json", &reg.snapshot().to_json_versioned());
    let chrome = scratch("export_bad.chrome.json");
    let out = run(&[
        "export",
        "--spans",
        spans.to_str().unwrap(),
        "--final",
        final_path.to_str().unwrap(),
        "--chrome",
        chrome.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "round-trip violations fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("violation"));
}

#[test]
fn trend_single_entry_is_baseline_and_passes() {
    let history = scratch("trend_baseline.jsonl");
    let _ = std::fs::remove_file(&history);
    let report = write("trend_baseline.bench.json", &bench_report(1000));
    let out = run(&[
        "trend",
        history.to_str().unwrap(),
        "--append",
        report.to_str().unwrap(),
        "--label",
        "seed",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("BASELINE"), "{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
}

#[test]
fn trend_detects_an_injected_regression() {
    let history = scratch("trend_regress.jsonl");
    let _ = std::fs::remove_file(&history);
    for cycles in [1000, 1005] {
        let report = write("trend_regress.bench.json", &bench_report(cycles));
        let out = run(&[
            "trend",
            history.to_str().unwrap(),
            "--append",
            report.to_str().unwrap(),
            "--label",
            "seed",
        ]);
        assert_eq!(out.status.code(), Some(0), "stable history passes");
    }
    // Inject a +30% cycle regression (threshold defaults to 10%).
    let slow = write("trend_regress.slow.json", &bench_report(1300));
    let out = run(&[
        "trend",
        history.to_str().unwrap(),
        "--append",
        slow.to_str().unwrap(),
        "--label",
        "seed",
    ]);
    assert_eq!(out.status.code(), Some(1), "regression must fail the build");
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSION"));

    // --report-only downgrades the same verdict to exit 0.
    let out = run(&["trend", history.to_str().unwrap(), "--report-only"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("report-only"));
}

#[test]
fn trend_append_requires_a_label() {
    let history = scratch("trend_nolabel.jsonl");
    let report = write("trend_nolabel.bench.json", &bench_report(1000));
    let out = run(&[
        "trend",
        history.to_str().unwrap(),
        "--append",
        report.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--label"));
}

#[test]
fn trend_rejects_alien_history_schema() {
    let history = write(
        "trend_alien.jsonl",
        "{\"schema\":99,\"stream\":\"hpmp-bench-history\",\"label\":\"x\",\
         \"report\":\"r\",\"experiments\":{}}\n",
    );
    let out = run(&["trend", history.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("99"), "{stderr}");
}

#[test]
fn no_args_is_a_usage_error() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("hpmp-analyze gate"));
}

#[test]
fn profile_rejects_headerless_trace() {
    let path = write("headerless.jsonl", "{\"seq\":0}\n");
    let out = run(&["profile", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));
}

#[test]
fn diff_of_identical_metrics_reports_no_change() {
    let text = snapshot(100, 30).to_json_versioned();
    let a = write("m_a.json", &text);
    let b = write("m_b.json", &text);
    let out = run(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no counter changed"));
}

#[test]
fn diff_shows_deltas_and_percentile_shifts() {
    let a = write("m_old.json", &snapshot(100, 30).to_json_versioned());
    let b = write("m_new.json", &snapshot(150, 120).to_json_versioned());
    let out = run(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("machine.cycles"), "{stdout}");
    assert!(stdout.contains("+50.0%"), "{stdout}");
    assert!(stdout.contains("percentile shifts"), "{stdout}");
}

#[test]
fn gate_passes_against_equal_baseline() {
    let baseline = write("base_ok.json", &bench_report(1000));
    let current = write("cur_ok.json", &bench_report(1000));
    let out = run(&[
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--threshold",
        "5%",
        current.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}

#[test]
fn gate_fails_on_doctored_baseline_with_cycle_regression() {
    // The acceptance criterion: a baseline doctored to claim the run used
    // to be >5% faster must make the gate exit nonzero.
    let baseline = write("base_doctored.json", &bench_report(1000));
    let current = write("cur_slow.json", &bench_report(1100));
    let out = run(&[
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--threshold",
        "5%",
        current.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "gate must fail the build");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn gate_report_only_never_fails_the_build() {
    let baseline = write("base_ro.json", &bench_report(1000));
    let current = write("cur_ro.json", &bench_report(1100));
    let out = run(&[
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--report-only",
        current.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "report-only always exits 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "still reports: {stdout}");
    assert!(stdout.contains("report-only"), "{stdout}");
}

#[test]
fn gate_rejects_unversioned_baseline() {
    let baseline = write("base_unversioned.json", "{\"experiments\":[]}");
    let current = write("cur_v.json", &bench_report(1000));
    let out = run(&[
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        current.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));
}

#[test]
fn gate_rejects_bad_threshold() {
    let baseline = write("base_t.json", &bench_report(1000));
    let current = write("cur_t.json", &bench_report(1000));
    let out = run(&[
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--threshold",
        "banana",
        current.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}
