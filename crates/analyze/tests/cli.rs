//! CLI-level tests of the `hpmp-analyze` binary: argument handling, exit
//! codes, and the doctored-baseline gate acceptance criterion.

use hpmp_trace::{
    AccessClass, BenchReport, ExperimentRecord, LatencyHistograms, MetricsRegistry, Snapshot,
};
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hpmp-analyze"))
}

/// A scratch file under the target-adjacent temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hpmp-analyze-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn write(name: &str, content: &str) -> PathBuf {
    let path = scratch(name);
    std::fs::write(&path, content).expect("write scratch file");
    path
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn snapshot(cycles: u64, walk_latency: u64) -> Snapshot {
    let mut hists = LatencyHistograms::new();
    for _ in 0..10 {
        hists.record(AccessClass::ReadWalk, walk_latency);
    }
    let mut reg = MetricsRegistry::new();
    reg.set("machine.cycles", cycles);
    reg.set("machine.refs", 60);
    hists.export(&mut reg, "machine.latency");
    reg.snapshot()
}

fn bench_report(cycles: u64) -> String {
    let mut r = BenchReport::new("repro");
    r.set_config("scheme", "hpmp");
    r.push(ExperimentRecord::from_snapshot(
        "fig2",
        cycles,
        snapshot(cycles, 30),
    ));
    r.to_json()
}

#[test]
fn no_args_is_a_usage_error() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("hpmp-analyze gate"));
}

#[test]
fn profile_rejects_headerless_trace() {
    let path = write("headerless.jsonl", "{\"seq\":0}\n");
    let out = run(&["profile", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));
}

#[test]
fn diff_of_identical_metrics_reports_no_change() {
    let text = snapshot(100, 30).to_json_versioned();
    let a = write("m_a.json", &text);
    let b = write("m_b.json", &text);
    let out = run(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no counter changed"));
}

#[test]
fn diff_shows_deltas_and_percentile_shifts() {
    let a = write("m_old.json", &snapshot(100, 30).to_json_versioned());
    let b = write("m_new.json", &snapshot(150, 120).to_json_versioned());
    let out = run(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("machine.cycles"), "{stdout}");
    assert!(stdout.contains("+50.0%"), "{stdout}");
    assert!(stdout.contains("percentile shifts"), "{stdout}");
}

#[test]
fn gate_passes_against_equal_baseline() {
    let baseline = write("base_ok.json", &bench_report(1000));
    let current = write("cur_ok.json", &bench_report(1000));
    let out = run(&[
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--threshold",
        "5%",
        current.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}

#[test]
fn gate_fails_on_doctored_baseline_with_cycle_regression() {
    // The acceptance criterion: a baseline doctored to claim the run used
    // to be >5% faster must make the gate exit nonzero.
    let baseline = write("base_doctored.json", &bench_report(1000));
    let current = write("cur_slow.json", &bench_report(1100));
    let out = run(&[
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--threshold",
        "5%",
        current.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "gate must fail the build");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn gate_report_only_never_fails_the_build() {
    let baseline = write("base_ro.json", &bench_report(1000));
    let current = write("cur_ro.json", &bench_report(1100));
    let out = run(&[
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--report-only",
        current.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "report-only always exits 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "still reports: {stdout}");
    assert!(stdout.contains("report-only"), "{stdout}");
}

#[test]
fn gate_rejects_unversioned_baseline() {
    let baseline = write("base_unversioned.json", "{\"experiments\":[]}");
    let current = write("cur_v.json", &bench_report(1000));
    let out = run(&[
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        current.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));
}

#[test]
fn gate_rejects_bad_threshold() {
    let baseline = write("base_t.json", &bench_report(1000));
    let current = write("cur_t.json", &bench_report(1000));
    let out = run(&[
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--threshold",
        "banana",
        current.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}
