//! Offline analytics over the HPMP simulator's observability artifacts.
//!
//! The write side (`hpmp-trace` + the bench binaries) emits three versioned
//! artifact families: JSONL walk-event traces (`--trace-out`), metrics
//! snapshots (`--metrics-out`), and perf-trajectory bench reports
//! (`--bench-out`). This crate is the read side — the `hpmp-analyze`
//! binary plus the library underneath it:
//!
//! * [`profile`] — cycle attribution by world × access class × step kind
//!   with per-level PT/PMPT splits, step-sum invariant verification, and
//!   the paper's reference-count claims (6 vs 12 native, 12 vs 36
//!   virtualized) recomputed from event data alone;
//! * [`diff`] — A/B differential reports: per-counter deltas, percent
//!   change, and histogram percentile shifts between two runs;
//! * [`gate`] — the regression gate CI runs against a committed baseline;
//! * [`campaign`] — fault-campaign artifact analysis (`--campaign-out`):
//!   per-class injected/detected/silent tallies recounted from trial
//!   records and cross-checked against the embedded summary;
//! * [`timeline`] — time-resolved analysis of `--snapshot-interval` /
//!   `--spans-out` artifacts: per-slice activity rates, cumulative
//!   latency-percentile drift, and span-based critical-path attribution
//!   of cross-hart shootdown stalls;
//! * [`export`] — converters into industry-standard viewer formats:
//!   Chrome Trace Event JSON (Perfetto / `chrome://tracing`) from span
//!   streams, and collapsed stacks (flamegraph.pl / inferno) from
//!   walk-event traces, each with a round-trip validator re-summing the
//!   exported durations against the run's metrics snapshot;
//! * [`trend`] — bench-history trend tracking over the committed
//!   `ci/BENCH_history.jsonl`: per-series step-change detection of the
//!   deterministic cycle totals, report-only until history exists.

pub mod campaign;
pub mod diff;
pub mod export;
pub mod gate;
pub mod profile;
pub mod timeline;
pub mod trend;

pub use campaign::{CampaignAnalysis, ClassTally};
pub use diff::{diff_snapshots, load_artifact, percentile_shifts, render_diff, Artifact};
pub use export::{
    chrome_trace, collapsed_stacks, render_collapsed, verify_collapsed, verify_span_export,
};
pub use gate::{gate, Finding, GateOutcome};
pub use profile::{ColdWalk, EventRefs, IsolationShape, WalkProfile};
pub use timeline::{analyze_timeline, Attribution, DriftRow, SliceRow, TimelineAnalysis};
pub use trend::{
    analyze_trend, parse_history, read_history_file, HistoryEntry, HistoryPoint, SeriesVerdict,
    TrendReport, BENCH_HISTORY_STREAM,
};
