//! `hpmp-analyze`: offline analytics over HPMP simulator artifacts.
//!
//! ```text
//! hpmp-analyze profile [<trace.jsonl>] [--spans <spans.jsonl>]
//! hpmp-analyze diff <a.json> <b.json>
//! hpmp-analyze gate --baseline <BENCH_seed.json> [--threshold 5%]
//!                   [--report-only] <BENCH_current.json>
//! hpmp-analyze campaign <campaign.jsonl>
//! hpmp-analyze timeline <timeline.jsonl> [--spans <spans.jsonl>]
//!                       [--final <metrics.json>] [--threshold 95%]
//!                       [--report-out <report.json>]
//! hpmp-analyze export [--spans <spans.jsonl>] [--timeline <t.jsonl>]
//!                     [--trace <walks.jsonl>] [--final <metrics.json>]
//!                     [--chrome <trace.json>] [--collapsed <stacks.txt>]
//! hpmp-analyze trend <history.jsonl> [--threshold 10%] [--window N]
//!                    [--append <BENCH.json> --label <label>] [--report-only]
//! ```
//!
//! Exit codes: 0 — analysis clean; 1 — the analysis itself found a problem
//! (invariant violation, claim mismatch, perf regression); 2 — usage,
//! I/O, or schema error.

use hpmp_analyze::{
    analyze_timeline, analyze_trend, chrome_trace, collapsed_stacks, gate, load_artifact,
    profile::{SpanProfile, WalkProfile},
    read_history_file, render_collapsed, render_diff, verify_collapsed, verify_span_export,
    CampaignAnalysis, HistoryEntry,
};
use hpmp_trace::{read_trace_file, BenchReport, Snapshot, SpanStream, Timeline};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  hpmp-analyze profile [<trace.jsonl>] [--spans <spans.jsonl>]
      Cycle-attribution profile of a walk-event trace: breakdown by
      world x access class x step kind, per-level splits, step-sum
      invariant check, and the paper's reference-count claims. --spans
      adds (or, alone, substitutes) monitor-operation attribution from a
      --spans-out artifact: cycles per span kind and the share of
      operation cycles spent in degradation-ladder segment compaction.

  hpmp-analyze diff <a.json> <b.json>
      Differential report between two versioned artifacts of the same
      kind (--metrics-out snapshots or --bench-out reports): counter
      deltas, percent change, latency percentile shifts.

  hpmp-analyze gate --baseline <file> [--threshold <pct>%] [--report-only]
                    <current.json>
      Compare a --bench-out report against a committed baseline; exit 1
      on cycle / walk-reference / p99 regression beyond the threshold
      (default 5%). --report-only prints the verdict but always exits 0.

  hpmp-analyze campaign <campaign.jsonl>
      Analyze a fault-campaign artifact (hpmpsim --campaign-out):
      per-class injected/detected/silent table recounted from the trial
      records and cross-checked against the embedded summary; exit 1 on
      any silent violation, recovery failure, or summary mismatch.

  hpmp-analyze timeline <timeline.jsonl> [--spans <spans.jsonl>]
                        [--final <metrics.json>] [--threshold <pct>%]
                        [--report-out <report.json>]
      Time-resolved analysis of an SMP run's --snapshot-interval /
      --spans-out artifacts: per-slice activity rates, cumulative latency
      percentile drift, and shootdown critical-path attribution from the
      causally linked spans. --final re-sums the slices and byte-compares
      against the run's --metrics-out snapshot. Exit 1 on a structural
      violation or when the named receiver-side spans explain less than
      --threshold (default 95%) of the counted sender stall cycles.
      --report-out writes a gate-compatible bench report.

  hpmp-analyze export [--spans <spans.jsonl>] [--timeline <timeline.jsonl>]
                      [--trace <walks.jsonl>] [--final <metrics.json>]
                      [--chrome <trace.json>] [--collapsed <stacks.txt>]
      Convert simulator artifacts into industry-standard viewer formats.
      --chrome (needs --spans; --timeline adds counter tracks) writes
      Chrome Trace Event JSON loadable in Perfetto or chrome://tracing:
      per-hart tracks, one slice per span, causal flow arrows from the
      parent ids. --collapsed (needs --trace) writes collapsed stacks
      (world;class;step cycles) for flamegraph.pl / inferno. With
      --final, each projection is re-summed against the run's metrics
      snapshot — receiver handler spans against hart.<i>.shootdown
      counters, per-class stack totals against the latency cycle
      counters — and a mismatch exits 1 instead of rendering a lie.

  hpmp-analyze trend <history.jsonl> [--threshold <pct>%] [--window N]
                     [--append <BENCH.json> --label <label>] [--report-only]
      Drift detection over the committed bench history (one
      self-describing JSON line per CI run). --append first distills a
      --bench-out report into a new history line under --label. Then
      every (label, experiment) series is judged: the last point's
      cycles against the median of its predecessors (the last --window
      points; default 20). A step change beyond --threshold (default
      10%) exits 1; series with fewer than two points are baselines and
      never fail, so CI is report-only until history exists.
";

fn fail_usage(message: &str) -> ExitCode {
    eprintln!("hpmp-analyze: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn read_to_string(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("hpmp-analyze: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let mut trace_path: Option<String> = None;
    let mut spans_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spans" => match it.next() {
                Some(path) => spans_path = Some(path.clone()),
                None => return fail_usage("--spans needs a file"),
            },
            other if !other.starts_with('-') && trace_path.is_none() => {
                trace_path = Some(other.to_string());
            }
            other => return fail_usage(&format!("unknown profile argument \"{other}\"")),
        }
    }
    if trace_path.is_none() && spans_path.is_none() {
        return fail_usage("profile needs a trace file and/or --spans");
    }
    if let Some(path) = &trace_path {
        let events = match read_trace_file(path) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("hpmp-analyze: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let profile = WalkProfile::from_events(&events);
        print!("{}", profile.render());
        if !profile.is_balanced() {
            eprintln!("hpmp-analyze: step-sum invariant violated");
            return ExitCode::from(1);
        }
        if !profile.claims_hold() {
            eprintln!("hpmp-analyze: measured reference counts deviate from the paper");
            return ExitCode::from(1);
        }
    }
    if let Some(path) = &spans_path {
        let stream = match SpanStream::read_file(path) {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("hpmp-analyze: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if trace_path.is_some() {
            println!();
        }
        print!("{}", SpanProfile::from_stream(&stream).render());
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let [path_a, path_b] = args else {
        return fail_usage("diff takes exactly two artifact files");
    };
    let (text_a, text_b) = match (read_to_string(path_a), read_to_string(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let load = |path: &str, text: &str| {
        load_artifact(text).map_err(|e| {
            eprintln!("hpmp-analyze: {path}: {e}");
            ExitCode::from(2)
        })
    };
    let (a, b) = match (load(path_a, &text_a), load(path_b, &text_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    match render_diff(path_a, path_b, &a, &b) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("hpmp-analyze: {message}");
            ExitCode::from(2)
        }
    }
}

fn parse_threshold(raw: &str) -> Option<f64> {
    let trimmed = raw.trim().trim_end_matches('%');
    let value: f64 = trimmed.parse().ok()?;
    (value >= 0.0 && value.is_finite()).then_some(value)
}

fn cmd_gate(args: &[String]) -> ExitCode {
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut threshold = 5.0;
    let mut report_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(path) => baseline_path = Some(path.clone()),
                None => return fail_usage("--baseline needs a file"),
            },
            "--threshold" => match it.next().map(|raw| parse_threshold(raw)) {
                Some(Some(value)) => threshold = value,
                _ => return fail_usage("--threshold needs a percentage like 5%"),
            },
            "--report-only" => report_only = true,
            other if !other.starts_with('-') && current_path.is_none() => {
                current_path = Some(other.to_string());
            }
            other => return fail_usage(&format!("unknown gate argument \"{other}\"")),
        }
    }
    let Some(baseline_path) = baseline_path else {
        return fail_usage("gate needs --baseline <file>");
    };
    let Some(current_path) = current_path else {
        return fail_usage("gate needs a current bench report");
    };
    let load = |path: &str| -> Result<BenchReport, ExitCode> {
        let text = read_to_string(path)?;
        BenchReport::from_json(&text).map_err(|e| {
            eprintln!("hpmp-analyze: {path}: {e}");
            ExitCode::from(2)
        })
    };
    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let outcome = gate(&current, &baseline, threshold);
    print!("{}", outcome.render(threshold));
    if outcome.passed() || report_only {
        if report_only && !outcome.passed() {
            println!("(report-only mode: not failing the build)");
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_campaign(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail_usage("campaign takes exactly one campaign artifact");
    };
    let text = match read_to_string(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let analysis = match CampaignAnalysis::from_jsonl(&text) {
        Ok(analysis) => analysis,
        Err(e) => {
            eprintln!("hpmp-analyze: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", analysis.render());
    if analysis.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("hpmp-analyze: campaign failed the fail-closed invariant");
        ExitCode::from(1)
    }
}

fn cmd_timeline(args: &[String]) -> ExitCode {
    let mut timeline_path: Option<String> = None;
    let mut spans_path: Option<String> = None;
    let mut final_path: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut threshold = 95.0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spans" => match it.next() {
                Some(path) => spans_path = Some(path.clone()),
                None => return fail_usage("--spans needs a file"),
            },
            "--final" => match it.next() {
                Some(path) => final_path = Some(path.clone()),
                None => return fail_usage("--final needs a file"),
            },
            "--threshold" => match it.next().map(|raw| parse_threshold(raw)) {
                Some(Some(value)) => threshold = value,
                _ => return fail_usage("--threshold needs a percentage like 95%"),
            },
            "--report-out" => match it.next() {
                Some(path) => report_out = Some(path.clone()),
                None => return fail_usage("--report-out needs a file"),
            },
            other if !other.starts_with('-') && timeline_path.is_none() => {
                timeline_path = Some(other.to_string());
            }
            other => return fail_usage(&format!("unknown timeline argument \"{other}\"")),
        }
    }
    let Some(timeline_path) = timeline_path else {
        return fail_usage("timeline needs a timeline artifact");
    };
    let timeline = match Timeline::read_file(&timeline_path) {
        Ok(timeline) => timeline,
        Err(e) => {
            eprintln!("hpmp-analyze: {timeline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spans = match &spans_path {
        Some(path) => match SpanStream::read_file(path) {
            Ok(spans) => Some(spans),
            Err(e) => {
                eprintln!("hpmp-analyze: {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let final_snapshot = match &final_path {
        Some(path) => {
            let text = match read_to_string(path) {
                Ok(text) => text,
                Err(code) => return code,
            };
            match Snapshot::from_json(&text) {
                Ok(snap) => Some(snap),
                Err(e) => {
                    eprintln!("hpmp-analyze: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let analysis = analyze_timeline(&timeline, spans.as_ref(), final_snapshot.as_ref());
    print!("{}", analysis.render());
    if let Some(path) = &report_out {
        if let Err(e) = std::fs::write(path, analysis.to_bench_report().to_json()) {
            eprintln!("hpmp-analyze: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("report -> {path}");
    }
    if analysis.passed(threshold) {
        ExitCode::SUCCESS
    } else {
        eprintln!("hpmp-analyze: timeline analysis failed (threshold {threshold}%)");
        ExitCode::from(1)
    }
}

fn cmd_export(args: &[String]) -> ExitCode {
    let mut spans_path: Option<String> = None;
    let mut timeline_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut final_path: Option<String> = None;
    let mut chrome_out: Option<String> = None;
    let mut collapsed_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut path_value = |name: &str| match it.next() {
            Some(path) => Ok(path.clone()),
            None => Err(format!("{name} needs a file")),
        };
        let result = match arg.as_str() {
            "--spans" => path_value("--spans").map(|p| spans_path = Some(p)),
            "--timeline" => path_value("--timeline").map(|p| timeline_path = Some(p)),
            "--trace" => path_value("--trace").map(|p| trace_path = Some(p)),
            "--final" => path_value("--final").map(|p| final_path = Some(p)),
            "--chrome" => path_value("--chrome").map(|p| chrome_out = Some(p)),
            "--collapsed" => path_value("--collapsed").map(|p| collapsed_out = Some(p)),
            other => Err(format!("unknown export argument \"{other}\"")),
        };
        if let Err(message) = result {
            return fail_usage(&message);
        }
    }
    if chrome_out.is_none() && collapsed_out.is_none() {
        return fail_usage("export needs at least one of --chrome / --collapsed");
    }
    if chrome_out.is_some() && spans_path.is_none() {
        return fail_usage("--chrome needs --spans");
    }
    if collapsed_out.is_some() && trace_path.is_none() {
        return fail_usage("--collapsed needs --trace");
    }

    let final_snapshot = match &final_path {
        Some(path) => {
            let text = match read_to_string(path) {
                Ok(text) => text,
                Err(code) => return code,
            };
            match Snapshot::from_json(&text) {
                Ok(snap) => Some(snap),
                Err(e) => {
                    eprintln!("hpmp-analyze: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    let mut violations = Vec::new();
    if let Some(out_path) = &chrome_out {
        let spans_path = spans_path.as_deref().expect("checked above");
        let spans = match SpanStream::read_file(spans_path) {
            Ok(spans) => spans,
            Err(e) => {
                eprintln!("hpmp-analyze: {spans_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let timeline = match &timeline_path {
            Some(path) => match Timeline::read_file(path) {
                Ok(timeline) => Some(timeline),
                Err(e) => {
                    eprintln!("hpmp-analyze: {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            None => None,
        };
        if let Some(snap) = &final_snapshot {
            violations.extend(verify_span_export(&spans, snap));
        }
        if let Err(e) = std::fs::write(out_path, chrome_trace(&spans, timeline.as_ref())) {
            eprintln!("hpmp-analyze: cannot write {out_path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "chrome trace: {} span(s){} -> {out_path}",
            spans.spans.len(),
            timeline
                .as_ref()
                .map(|t| format!(" + {} slice(s)", t.slices.len()))
                .unwrap_or_default()
        );
    }
    if let Some(out_path) = &collapsed_out {
        let trace_path = trace_path.as_deref().expect("checked above");
        let events = match read_trace_file(trace_path) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("hpmp-analyze: {trace_path}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Some(snap) = &final_snapshot {
            violations.extend(verify_collapsed(&events, snap));
        }
        let stacks = collapsed_stacks(&events);
        if let Err(e) = std::fs::write(out_path, render_collapsed(&stacks)) {
            eprintln!("hpmp-analyze: cannot write {out_path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "collapsed stacks: {} stack(s) from {} event(s) -> {out_path}",
            stacks.len(),
            events.len()
        );
    }
    if violations.is_empty() {
        if final_snapshot.is_some() {
            println!("round trip: exported durations re-derive the snapshot counters");
        }
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("hpmp-analyze: round-trip violation: {violation}");
        }
        eprintln!(
            "hpmp-analyze: export does not re-derive the snapshot counters \
             ({} violation(s))",
            violations.len()
        );
        ExitCode::from(1)
    }
}

fn cmd_trend(args: &[String]) -> ExitCode {
    let mut history_path: Option<String> = None;
    let mut append_path: Option<String> = None;
    let mut label: Option<String> = None;
    let mut threshold = 10.0;
    let mut window = 20usize;
    let mut report_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--append" => match it.next() {
                Some(path) => append_path = Some(path.clone()),
                None => return fail_usage("--append needs a bench report file"),
            },
            "--label" => match it.next() {
                Some(value) => label = Some(value.clone()),
                None => return fail_usage("--label needs a name"),
            },
            "--threshold" => match it.next().map(|raw| parse_threshold(raw)) {
                Some(Some(value)) => threshold = value,
                _ => return fail_usage("--threshold needs a percentage like 10%"),
            },
            "--window" => match it.next().map(|raw| raw.parse()) {
                Some(Ok(n)) => window = n,
                _ => return fail_usage("--window needs an entry count (0 = unlimited)"),
            },
            "--report-only" => report_only = true,
            other if !other.starts_with('-') && history_path.is_none() => {
                history_path = Some(other.to_string());
            }
            other => return fail_usage(&format!("unknown trend argument \"{other}\"")),
        }
    }
    let Some(history_path) = history_path else {
        return fail_usage("trend needs a history file");
    };
    if append_path.is_some() != label.is_some() {
        return fail_usage("--append and --label go together");
    }

    if let (Some(bench_path), Some(label)) = (&append_path, &label) {
        let text = match read_to_string(bench_path) {
            Ok(text) => text,
            Err(code) => return code,
        };
        let report = match BenchReport::from_json(&text) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("hpmp-analyze: {bench_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let line = HistoryEntry::from_report(label.clone(), &report).to_json_line();
        let mut existing = match std::fs::read_to_string(&history_path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => {
                eprintln!("hpmp-analyze: cannot read {history_path}: {e}");
                return ExitCode::from(2);
            }
        };
        if !existing.is_empty() && !existing.ends_with('\n') {
            existing.push('\n');
        }
        existing.push_str(&line);
        existing.push('\n');
        if let Err(e) = std::fs::write(&history_path, existing) {
            eprintln!("hpmp-analyze: cannot write {history_path}: {e}");
            return ExitCode::from(2);
        }
        println!("appended {label} entry from {bench_path} -> {history_path}");
    }

    let entries = match read_history_file(&history_path) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("hpmp-analyze: {history_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = analyze_trend(&entries, threshold, window);
    print!("{}", report.render(threshold));
    if report.passed() || report_only {
        if report_only && !report.passed() {
            println!("(report-only mode: not failing the build)");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "hpmp-analyze: bench history regressed beyond {threshold}% \
             ({} series)",
            report.regressions
        );
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "profile" => cmd_profile(rest),
            "diff" => cmd_diff(rest),
            "gate" => cmd_gate(rest),
            "campaign" => cmd_campaign(rest),
            "timeline" => cmd_timeline(rest),
            "export" => cmd_export(rest),
            "trend" => cmd_trend(rest),
            "--help" | "-h" | "help" => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            other => fail_usage(&format!("unknown command \"{other}\"")),
        },
        None => fail_usage("no command given"),
    }
}
