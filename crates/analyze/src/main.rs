//! `hpmp-analyze`: offline analytics over HPMP simulator artifacts.
//!
//! ```text
//! hpmp-analyze profile <trace.jsonl>
//! hpmp-analyze diff <a.json> <b.json>
//! hpmp-analyze gate --baseline <BENCH_seed.json> [--threshold 5%]
//!                   [--report-only] <BENCH_current.json>
//! hpmp-analyze campaign <campaign.jsonl>
//! hpmp-analyze timeline <timeline.jsonl> [--spans <spans.jsonl>]
//!                       [--final <metrics.json>] [--threshold 95%]
//!                       [--report-out <report.json>]
//! ```
//!
//! Exit codes: 0 — analysis clean; 1 — the analysis itself found a problem
//! (invariant violation, claim mismatch, perf regression); 2 — usage,
//! I/O, or schema error.

use hpmp_analyze::{
    analyze_timeline, gate, load_artifact, profile::WalkProfile, render_diff, CampaignAnalysis,
};
use hpmp_trace::{read_trace_file, BenchReport, Snapshot, SpanStream, Timeline};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  hpmp-analyze profile <trace.jsonl>
      Cycle-attribution profile of a walk-event trace: breakdown by
      world x access class x step kind, per-level splits, step-sum
      invariant check, and the paper's reference-count claims.

  hpmp-analyze diff <a.json> <b.json>
      Differential report between two versioned artifacts of the same
      kind (--metrics-out snapshots or --bench-out reports): counter
      deltas, percent change, latency percentile shifts.

  hpmp-analyze gate --baseline <file> [--threshold <pct>%] [--report-only]
                    <current.json>
      Compare a --bench-out report against a committed baseline; exit 1
      on cycle / walk-reference / p99 regression beyond the threshold
      (default 5%). --report-only prints the verdict but always exits 0.

  hpmp-analyze campaign <campaign.jsonl>
      Analyze a fault-campaign artifact (hpmpsim --campaign-out):
      per-class injected/detected/silent table recounted from the trial
      records and cross-checked against the embedded summary; exit 1 on
      any silent violation, recovery failure, or summary mismatch.

  hpmp-analyze timeline <timeline.jsonl> [--spans <spans.jsonl>]
                        [--final <metrics.json>] [--threshold <pct>%]
                        [--report-out <report.json>]
      Time-resolved analysis of an SMP run's --snapshot-interval /
      --spans-out artifacts: per-slice activity rates, cumulative latency
      percentile drift, and shootdown critical-path attribution from the
      causally linked spans. --final re-sums the slices and byte-compares
      against the run's --metrics-out snapshot. Exit 1 on a structural
      violation or when the named receiver-side spans explain less than
      --threshold (default 95%) of the counted sender stall cycles.
      --report-out writes a gate-compatible bench report.
";

fn fail_usage(message: &str) -> ExitCode {
    eprintln!("hpmp-analyze: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn read_to_string(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("hpmp-analyze: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail_usage("profile takes exactly one trace file");
    };
    let events = match read_trace_file(path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("hpmp-analyze: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let profile = WalkProfile::from_events(&events);
    print!("{}", profile.render());
    if !profile.is_balanced() {
        eprintln!("hpmp-analyze: step-sum invariant violated");
        return ExitCode::from(1);
    }
    if !profile.claims_hold() {
        eprintln!("hpmp-analyze: measured reference counts deviate from the paper");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let [path_a, path_b] = args else {
        return fail_usage("diff takes exactly two artifact files");
    };
    let (text_a, text_b) = match (read_to_string(path_a), read_to_string(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let load = |path: &str, text: &str| {
        load_artifact(text).map_err(|e| {
            eprintln!("hpmp-analyze: {path}: {e}");
            ExitCode::from(2)
        })
    };
    let (a, b) = match (load(path_a, &text_a), load(path_b, &text_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    match render_diff(path_a, path_b, &a, &b) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("hpmp-analyze: {message}");
            ExitCode::from(2)
        }
    }
}

fn parse_threshold(raw: &str) -> Option<f64> {
    let trimmed = raw.trim().trim_end_matches('%');
    let value: f64 = trimmed.parse().ok()?;
    (value >= 0.0 && value.is_finite()).then_some(value)
}

fn cmd_gate(args: &[String]) -> ExitCode {
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut threshold = 5.0;
    let mut report_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(path) => baseline_path = Some(path.clone()),
                None => return fail_usage("--baseline needs a file"),
            },
            "--threshold" => match it.next().map(|raw| parse_threshold(raw)) {
                Some(Some(value)) => threshold = value,
                _ => return fail_usage("--threshold needs a percentage like 5%"),
            },
            "--report-only" => report_only = true,
            other if !other.starts_with('-') && current_path.is_none() => {
                current_path = Some(other.to_string());
            }
            other => return fail_usage(&format!("unknown gate argument \"{other}\"")),
        }
    }
    let Some(baseline_path) = baseline_path else {
        return fail_usage("gate needs --baseline <file>");
    };
    let Some(current_path) = current_path else {
        return fail_usage("gate needs a current bench report");
    };
    let load = |path: &str| -> Result<BenchReport, ExitCode> {
        let text = read_to_string(path)?;
        BenchReport::from_json(&text).map_err(|e| {
            eprintln!("hpmp-analyze: {path}: {e}");
            ExitCode::from(2)
        })
    };
    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let outcome = gate(&current, &baseline, threshold);
    print!("{}", outcome.render(threshold));
    if outcome.passed() || report_only {
        if report_only && !outcome.passed() {
            println!("(report-only mode: not failing the build)");
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_campaign(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail_usage("campaign takes exactly one campaign artifact");
    };
    let text = match read_to_string(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let analysis = match CampaignAnalysis::from_jsonl(&text) {
        Ok(analysis) => analysis,
        Err(e) => {
            eprintln!("hpmp-analyze: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", analysis.render());
    if analysis.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("hpmp-analyze: campaign failed the fail-closed invariant");
        ExitCode::from(1)
    }
}

fn cmd_timeline(args: &[String]) -> ExitCode {
    let mut timeline_path: Option<String> = None;
    let mut spans_path: Option<String> = None;
    let mut final_path: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut threshold = 95.0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spans" => match it.next() {
                Some(path) => spans_path = Some(path.clone()),
                None => return fail_usage("--spans needs a file"),
            },
            "--final" => match it.next() {
                Some(path) => final_path = Some(path.clone()),
                None => return fail_usage("--final needs a file"),
            },
            "--threshold" => match it.next().map(|raw| parse_threshold(raw)) {
                Some(Some(value)) => threshold = value,
                _ => return fail_usage("--threshold needs a percentage like 95%"),
            },
            "--report-out" => match it.next() {
                Some(path) => report_out = Some(path.clone()),
                None => return fail_usage("--report-out needs a file"),
            },
            other if !other.starts_with('-') && timeline_path.is_none() => {
                timeline_path = Some(other.to_string());
            }
            other => return fail_usage(&format!("unknown timeline argument \"{other}\"")),
        }
    }
    let Some(timeline_path) = timeline_path else {
        return fail_usage("timeline needs a timeline artifact");
    };
    let timeline = match Timeline::read_file(&timeline_path) {
        Ok(timeline) => timeline,
        Err(e) => {
            eprintln!("hpmp-analyze: {timeline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spans = match &spans_path {
        Some(path) => match SpanStream::read_file(path) {
            Ok(spans) => Some(spans),
            Err(e) => {
                eprintln!("hpmp-analyze: {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let final_snapshot = match &final_path {
        Some(path) => {
            let text = match read_to_string(path) {
                Ok(text) => text,
                Err(code) => return code,
            };
            match Snapshot::from_json(&text) {
                Ok(snap) => Some(snap),
                Err(e) => {
                    eprintln!("hpmp-analyze: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let analysis = analyze_timeline(&timeline, spans.as_ref(), final_snapshot.as_ref());
    print!("{}", analysis.render());
    if let Some(path) = &report_out {
        if let Err(e) = std::fs::write(path, analysis.to_bench_report().to_json()) {
            eprintln!("hpmp-analyze: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("report -> {path}");
    }
    if analysis.passed(threshold) {
        ExitCode::SUCCESS
    } else {
        eprintln!("hpmp-analyze: timeline analysis failed (threshold {threshold}%)");
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "profile" => cmd_profile(rest),
            "diff" => cmd_diff(rest),
            "gate" => cmd_gate(rest),
            "campaign" => cmd_campaign(rest),
            "timeline" => cmd_timeline(rest),
            "--help" | "-h" | "help" => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            other => fail_usage(&format!("unknown command \"{other}\"")),
        },
        None => fail_usage("no command given"),
    }
}
