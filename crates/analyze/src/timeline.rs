//! Time-resolved analysis: slice rates, percentile drift, and span-based
//! critical-path attribution of shootdown stalls.
//!
//! `hpmp-analyze timeline` consumes the two artifacts an SMP run emits
//! with `--snapshot-interval` / `--spans-out`:
//!
//! * the **timeline** — periodic counter-delta slices on the global
//!   simulated clock, which telescope back to the end-of-run snapshot;
//! * the **span stream** — monitor-operation spans with causally linked
//!   per-receiver shootdown children (IPI flight → trap → reprogram →
//!   fence).
//!
//! From the first it derives per-slice activity rates and cumulative
//! latency-percentile drift; from the second it rebuilds each shootdown's
//! critical path — the sender stalls for exactly the slowest receiver's
//! delivery — and checks that the named child spans account for the
//! `fence_stall_cycles` the counters charged. A run whose spans explain
//! less than the threshold (default 95%) of its stall cycles fails: some
//! synchronization cost is invisible to the causal trace, which is the
//! observability bug this command exists to catch.

use hpmp_trace::{
    histograms_in_snapshot, BenchReport, ExperimentRecord, LatencyHistogram, Percentiles, Snapshot,
    SpanEvent, SpanKind, SpanStream, Timeline,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Activity rates over one timeline slice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceRow {
    /// Slice number.
    pub index: u64,
    /// First cycle covered.
    pub start_cycle: u64,
    /// One past the last cycle covered.
    pub end_cycle: u64,
    /// Data accesses in the slice (all harts).
    pub accesses: u64,
    /// Page walks in the slice (all harts).
    pub walks: u64,
    /// Shootdown IPIs delivered in the slice.
    pub ipis: u64,
    /// Sender fence-stall cycles charged in the slice (all harts).
    pub stall_cycles: u64,
    /// Monitor cycles spent in the slice.
    pub monitor_cycles: u64,
}

impl SliceRow {
    /// The slice's width on the cycle axis.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Events per kilocycle.
    fn rate(&self, count: u64) -> f64 {
        if self.cycles() == 0 {
            0.0
        } else {
            1000.0 * count as f64 / self.cycles() as f64
        }
    }
}

/// Cumulative walk-latency percentiles at one slice boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftRow {
    /// Slice number the cumulative prefix ends at.
    pub index: u64,
    /// Percentiles of the merged (all-hart) `read_walk` histogram over
    /// slices `0..=index`, when any walks happened yet.
    pub read_walk: Option<Percentiles>,
}

/// Where the critical path of the run's shootdowns spent its cycles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Sender fence-stall cycles the counters charged (denominator).
    pub stall_cycles: u64,
    /// Stall cycles explained by the slowest receiver-side
    /// `shootdown_recv` span of each operation (numerator).
    pub attributed: u64,
    /// Operations that triggered at least one shootdown delivery.
    pub ops: u64,
    /// Per-receiver deliveries observed.
    pub deliveries: u64,
    /// Critical-path cycles in receiver trap entry/return.
    pub trap: u64,
    /// Critical-path cycles reprogramming receiver register images.
    pub reprogram: u64,
    /// Critical-path cycles in receiver-side fences.
    pub fence: u64,
    /// Critical-path cycles in interconnect flight (umbrella minus its
    /// named children).
    pub flight: u64,
    /// Spans the producer discarded at capacity — the honest reason
    /// attribution can fall short.
    pub dropped_spans: u64,
}

impl Attribution {
    /// Percentage of stall cycles the named child spans explain (100 when
    /// there was nothing to explain).
    pub fn pct(&self) -> f64 {
        if self.stall_cycles == 0 {
            100.0
        } else {
            100.0 * self.attributed as f64 / self.stall_cycles as f64
        }
    }
}

/// Everything `hpmp-analyze timeline` derives from the artifacts.
#[derive(Clone, Debug, Default)]
pub struct TimelineAnalysis {
    /// The producer's slice interval in cycles.
    pub interval: u64,
    /// Final global cycle.
    pub end_cycle: u64,
    /// Boundaries the producer folded after hitting its slice bound.
    pub dropped_boundaries: u64,
    /// Per-slice activity rates.
    pub rows: Vec<SliceRow>,
    /// Cumulative percentile drift, one row per slice.
    pub drift: Vec<DriftRow>,
    /// End-of-run percentiles per collapsed histogram base (the `hart.<i>.`
    /// prefix merged away), for classes that recorded anything.
    pub final_percentiles: Vec<(String, Percentiles)>,
    /// Shootdown critical-path attribution (present iff spans were given).
    pub attribution: Option<Attribution>,
    /// Invariant violations (slice structure, re-sum mismatch). Any entry
    /// fails the analysis.
    pub violations: Vec<String>,
}

/// Sum of every counter matching `name` — the bare name or any
/// `hart.<i>.`-prefixed copy of it.
pub(crate) fn sum_over_harts(snap: &Snapshot, name: &str) -> u64 {
    let suffix = format!(".{name}");
    snap.iter()
        .filter(|(key, _)| *key == name || (key.starts_with("hart.") && key.ends_with(&suffix)))
        .map(|(_, v)| v)
        .sum()
}

/// Histograms of `snap` with per-hart copies merged: `hart.<i>.machine.
/// latency.read_walk` and `machine.latency.read_walk` collapse into one
/// base.
fn collapsed_histograms(snap: &Snapshot) -> BTreeMap<String, LatencyHistogram> {
    let mut merged: BTreeMap<String, LatencyHistogram> = BTreeMap::new();
    for (base, hist) in histograms_in_snapshot(snap) {
        let collapsed = match base.strip_prefix("hart.") {
            Some(rest) => match rest.split_once('.') {
                Some((hart, tail)) if hart.chars().all(|c| c.is_ascii_digit()) => tail.to_string(),
                _ => base.clone(),
            },
            None => base.clone(),
        };
        merged.entry(collapsed).or_default().merge(&hist);
    }
    merged
}

/// Rebuild each shootdown's critical path from the span stream.
///
/// The sender of an operation stalls until its slowest receiver acks, so
/// per operation the explained stall is the widest `shootdown_recv` child;
/// that child's own trap/reprogram/fence children split the critical path
/// into named phases, and whatever the umbrella covers beyond them is
/// interconnect flight.
fn attribute(spans: &SpanStream, stall_cycles: u64) -> Attribution {
    let mut out = Attribution {
        stall_cycles,
        dropped_spans: spans.dropped,
        ..Attribution::default()
    };
    // Per-receiver deliveries, grouped under the operation that caused
    // them.
    let mut umbrellas: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    let mut children: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for span in &spans.spans {
        match span.kind {
            SpanKind::ShootdownRecv => {
                if let Some(parent) = span.parent {
                    umbrellas.entry(parent).or_default().push(span);
                }
            }
            SpanKind::Trap | SpanKind::Reprogram | SpanKind::Fence => {
                if let Some(parent) = span.parent {
                    children.entry(parent).or_default().push(span);
                }
            }
            _ => {}
        }
    }
    for receivers in umbrellas.values() {
        out.ops += 1;
        out.deliveries += receivers.len() as u64;
        let slowest = receivers
            .iter()
            .max_by_key(|r| (r.cycles(), r.id))
            .expect("grouped by presence");
        out.attributed += slowest.cycles();
        let mut named = 0;
        for child in children.get(&slowest.id).into_iter().flatten() {
            named += child.cycles();
            match child.kind {
                SpanKind::Trap => out.trap += child.cycles(),
                SpanKind::Reprogram => out.reprogram += child.cycles(),
                SpanKind::Fence => out.fence += child.cycles(),
                _ => unreachable!("only phase kinds are grouped"),
            }
        }
        out.flight += slowest.cycles().saturating_sub(named);
    }
    out
}

/// Analyze a parsed timeline, optionally with the matching span stream
/// and the run's `--metrics-out` snapshot for an exact re-sum check.
pub fn analyze_timeline(
    timeline: &Timeline,
    spans: Option<&SpanStream>,
    final_snapshot: Option<&Snapshot>,
) -> TimelineAnalysis {
    let mut analysis = TimelineAnalysis {
        interval: timeline.interval,
        end_cycle: timeline.end_cycle,
        dropped_boundaries: timeline.dropped_boundaries,
        ..TimelineAnalysis::default()
    };
    if let Err(violation) = timeline.verify() {
        analysis.violations.push(violation);
    }

    let mut cumulative = Snapshot::new();
    for slice in &timeline.slices {
        analysis.rows.push(SliceRow {
            index: slice.index,
            start_cycle: slice.start_cycle,
            end_cycle: slice.end_cycle,
            accesses: sum_over_harts(&slice.counters, "machine.accesses"),
            walks: sum_over_harts(&slice.counters, "machine.walks"),
            ipis: slice.counters.value("smp.ipis_delivered"),
            stall_cycles: sum_over_harts(&slice.counters, "fence_stall_cycles"),
            monitor_cycles: slice.counters.value("monitor.cycles"),
        });
        cumulative = cumulative.merge(&slice.counters);
        analysis.drift.push(DriftRow {
            index: slice.index,
            read_walk: collapsed_histograms(&cumulative)
                .get("machine.latency.read_walk")
                .and_then(Percentiles::of),
        });
    }

    analysis.final_percentiles = collapsed_histograms(&cumulative)
        .iter()
        .filter_map(|(base, hist)| Percentiles::of(hist).map(|p| (base.clone(), p)))
        .collect();

    if let Some(final_snapshot) = final_snapshot {
        let resum = cumulative.to_json_versioned();
        let fin = final_snapshot.to_json_versioned();
        if resum != fin {
            analysis.violations.push(
                "re-summed slices do not reproduce the final snapshot — the timeline \
                 drifted from the counters it claims to decompose"
                    .to_string(),
            );
        }
    }

    if let Some(spans) = spans {
        let stall = sum_over_harts(&cumulative, "fence_stall_cycles");
        analysis.attribution = Some(attribute(spans, stall));
    }
    analysis
}

impl TimelineAnalysis {
    /// Whether the analysis is clean: no structural violation and (when
    /// spans were given) attribution at or above `threshold_pct`.
    pub fn passed(&self, threshold_pct: f64) -> bool {
        self.violations.is_empty()
            && self
                .attribution
                .as_ref()
                .is_none_or(|a| a.pct() >= threshold_pct)
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline: {} slice(s) every {} cycles, run ends at cycle {}",
            self.rows.len(),
            self.interval,
            self.end_cycle
        );
        if self.dropped_boundaries > 0 {
            let _ = writeln!(
                out,
                "  ({} boundaries folded into the tail after the slice bound)",
                self.dropped_boundaries
            );
        }
        let _ = writeln!(
            out,
            "  {:>5} {:>12} {:>12} {:>9} {:>9} {:>9} {:>8} {:>9}",
            "slice", "cycles", "accesses/kc", "walks/kc", "ipis/kc", "stall%", "mon%", "p99 walk"
        );
        for (row, drift) in self.rows.iter().zip(&self.drift) {
            let width = row.cycles().max(1);
            let p99 = drift
                .read_walk
                .map(|p| p.p99.to_string())
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "  {:>5} {:>12} {:>12.2} {:>9.2} {:>9.3} {:>8.1}% {:>7.1}% {:>9}",
                row.index,
                row.cycles(),
                row.rate(row.accesses),
                row.rate(row.walks),
                row.rate(row.ipis),
                100.0 * row.stall_cycles as f64 / width as f64,
                100.0 * row.monitor_cycles as f64 / width as f64,
                p99,
            );
        }
        if !self.final_percentiles.is_empty() {
            let _ = writeln!(out, "  end-of-run latency percentiles (cycles):");
            for (base, p) in &self.final_percentiles {
                let _ = writeln!(
                    out,
                    "    {:<40} p50={} p90={} p99={}",
                    base, p.p50, p.p90, p.p99
                );
            }
        }
        if let Some(a) = &self.attribution {
            let _ = writeln!(
                out,
                "  shootdown critical path: {} stall cycles, {} attributed ({:.1}%) \
                 over {} op(s), {} deliveries",
                a.stall_cycles,
                a.attributed,
                a.pct(),
                a.ops,
                a.deliveries
            );
            if a.attributed > 0 {
                let share = |c: u64| 100.0 * c as f64 / a.attributed as f64;
                let _ = writeln!(
                    out,
                    "    phases: flight {:.1}%, trap {:.1}%, reprogram {:.1}%, fence {:.1}%",
                    share(a.flight),
                    share(a.trap),
                    share(a.reprogram),
                    share(a.fence)
                );
            }
            if a.dropped_spans > 0 {
                let _ = writeln!(
                    out,
                    "    ({} spans dropped at capacity — attribution is a lower bound)",
                    a.dropped_spans
                );
            }
        }
        for violation in &self.violations {
            let _ = writeln!(out, "  VIOLATION: {violation}");
        }
        out
    }

    /// A gate-compatible perf-trajectory report: one record carrying the
    /// re-summed end-of-run counters, with the attribution verdict in the
    /// config block.
    pub fn to_bench_report(&self) -> BenchReport {
        let mut resum = Snapshot::new();
        // The rows were derived from the slices; re-sum once more for the
        // record so the report stands alone.
        let mut report = BenchReport::new("hpmp-analyze timeline");
        report.set_config("interval", self.interval.to_string());
        report.set_config("slices", self.rows.len().to_string());
        report.set_config("end_cycle", self.end_cycle.to_string());
        if let Some(a) = &self.attribution {
            report.set_config("attribution_pct", format!("{:.2}", a.pct()));
            report.set_config("dropped_spans", a.dropped_spans.to_string());
        }
        for row in &self.rows {
            let mut reg = hpmp_trace::MetricsRegistry::new();
            reg.set("slice.accesses", row.accesses);
            reg.set("slice.walks", row.walks);
            reg.set("slice.ipis_delivered", row.ipis);
            reg.set("slice.fence_stall_cycles", row.stall_cycles);
            reg.set("slice.monitor_cycles", row.monitor_cycles);
            resum = resum.merge(&reg.snapshot());
        }
        report.push(ExperimentRecord::from_snapshot(
            "timeline",
            self.end_cycle,
            resum,
        ));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_trace::{MetricsRegistry, SpanCollector, TimelineSink};

    fn sample_timeline() -> Timeline {
        let mut reg = MetricsRegistry::new();
        let mut sink = TimelineSink::new(100);
        reg.set("hart.0.machine.accesses", 10);
        reg.set("hart.0.machine.cycles", 90);
        reg.set("hart.0.fence_stall_cycles", 20);
        reg.set("smp.ipis_delivered", 2);
        sink.record(120, &reg.snapshot());
        reg.add("hart.0.machine.accesses", 30);
        reg.add("hart.0.machine.cycles", 200);
        reg.add("hart.0.fence_stall_cycles", 40);
        reg.add("smp.ipis_delivered", 4);
        sink.finish(300, &reg.snapshot());
        let mut bytes = Vec::new();
        sink.write_jsonl(&mut bytes).unwrap();
        Timeline::parse(bytes.as_slice()).unwrap()
    }

    #[test]
    fn slice_rows_aggregate_per_hart_counters() {
        let analysis = analyze_timeline(&sample_timeline(), None, None);
        assert!(analysis.violations.is_empty());
        assert_eq!(analysis.rows.len(), 2);
        assert_eq!(analysis.rows[0].accesses, 10);
        assert_eq!(analysis.rows[1].accesses, 30);
        assert_eq!(analysis.rows[1].ipis, 4);
        assert_eq!(analysis.rows[1].stall_cycles, 40);
        assert!(analysis.passed(95.0));
    }

    #[test]
    fn resum_mismatch_is_a_violation() {
        let timeline = sample_timeline();
        let mut reg = MetricsRegistry::new();
        reg.set("hart.0.machine.accesses", 999);
        let wrong = reg.snapshot();
        let analysis = analyze_timeline(&timeline, None, Some(&wrong));
        assert_eq!(analysis.violations.len(), 1);
        assert!(!analysis.passed(95.0));

        let right = timeline.resum();
        let analysis = analyze_timeline(&timeline, None, Some(&right));
        assert!(analysis.violations.is_empty());
    }

    /// One op, two receivers: the slowest umbrella is the whole sender
    /// stall, and its children split the critical path.
    fn sample_spans(stall: u64) -> SpanStream {
        let mut c = SpanCollector::bounded(64);
        let op = c.reserve().unwrap();
        // Receiver 1: fast.
        let r1 = c
            .emit(
                SpanKind::ShootdownRecv,
                1,
                Some(1),
                Some(op),
                100,
                100 + stall - 80,
            )
            .unwrap();
        c.emit(SpanKind::Trap, 1, Some(1), Some(r1), 160, 200);
        // Receiver 2: the critical path.
        let r2 = c
            .emit(
                SpanKind::ShootdownRecv,
                2,
                Some(1),
                Some(op),
                100,
                100 + stall,
            )
            .unwrap();
        c.emit(SpanKind::Trap, 2, Some(1), Some(r2), 160, 420);
        c.emit(SpanKind::Reprogram, 2, Some(1), Some(r2), 420, 500);
        c.emit(SpanKind::Fence, 2, Some(1), Some(r2), 500, 620);
        c.emit_reserved(hpmp_trace::SpanEvent {
            id: op,
            parent: None,
            kind: SpanKind::Free,
            hart: 0,
            domain: Some(1),
            begin: 80,
            end: 100 + stall,
        });
        let mut bytes = Vec::new();
        c.write_jsonl(&mut bytes).unwrap();
        SpanStream::parse(bytes.as_slice()).unwrap()
    }

    #[test]
    fn attribution_explains_the_stall_via_the_slowest_receiver() {
        let timeline = sample_timeline();
        let stall = timeline.resum().value("hart.0.fence_stall_cycles");
        assert_eq!(stall, 60);
        let spans = sample_spans(stall);
        let analysis = analyze_timeline(&timeline, Some(&spans), None);
        let a = analysis.attribution.as_ref().unwrap();
        assert_eq!(a.stall_cycles, 60);
        assert_eq!(a.attributed, 60);
        assert_eq!(a.ops, 1);
        assert_eq!(a.deliveries, 2);
        assert_eq!((a.trap, a.reprogram, a.fence), (260, 80, 120));
        assert!((a.pct() - 100.0).abs() < 1e-9);
        assert!(analysis.passed(95.0));
    }

    #[test]
    fn under_attribution_fails_the_threshold() {
        let timeline = sample_timeline();
        // Spans only explain 40 of the 60 stall cycles.
        let spans = sample_spans(40);
        let analysis = analyze_timeline(&timeline, Some(&spans), None);
        let a = analysis.attribution.as_ref().unwrap();
        assert!(a.pct() < 95.0, "{}", a.pct());
        assert!(!analysis.passed(95.0));
        assert!(analysis.passed(50.0));
    }

    #[test]
    fn render_and_report_carry_the_verdict() {
        let timeline = sample_timeline();
        let stall = timeline.resum().value("hart.0.fence_stall_cycles");
        let spans = sample_spans(stall);
        let analysis = analyze_timeline(&timeline, Some(&spans), None);
        let text = analysis.render();
        assert!(text.contains("2 slice(s) every 100 cycles"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
        let report = analysis.to_bench_report();
        assert_eq!(report.config.get("attribution_pct").unwrap(), "100.00");
        let record = report.experiment("timeline").unwrap();
        assert_eq!(record.counters.value("slice.accesses"), 40);
        // The report itself round-trips through the gate loader.
        assert!(BenchReport::from_json(&report.to_json()).is_ok());
    }
}
