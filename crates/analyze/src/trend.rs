//! Bench-history trend tracking: a committed JSONL trajectory of every
//! CI run's headline numbers, and drift detection over it.
//!
//! `ci/BENCH_history.jsonl` accumulates one line per (labelled) bench
//! run: the deterministic `cycles` and `walks` of each experiment,
//! distilled from the full `--bench-out` report. Unlike the other JSONL
//! artifacts (header line + records), every history line is a complete,
//! self-describing document — append-only files written by many CI runs
//! over months cannot share a header — so each line carries its own
//! `schema` and `stream` tag and is validated independently.
//!
//! [`analyze_trend`] then walks each `(label, experiment)` series in
//! file order: with fewer than two points a series is a baseline (never
//! a failure — CI stays report-only until history exists); with more,
//! the last point is compared against the median of its predecessors,
//! and a step change beyond the threshold is a regression. Walk-count
//! changes are reported (the workload itself changed) but never fail
//! the build on their own: walks are deterministic, so a change is a
//! deliberate PR effect, not drift.

use hpmp_trace::json::{parse_json, JsonValue};
use hpmp_trace::{BenchReport, ReadError, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The `stream` tag carried by every history line.
pub const BENCH_HISTORY_STREAM: &str = "hpmp-bench-history";

/// One experiment's headline numbers inside a history entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistoryPoint {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total simulated page walks.
    pub walks: u64,
}

/// One appended bench run: a label naming the configuration (e.g.
/// `seed`, `multihart`) plus per-experiment points.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Configuration label; series are keyed by `(label, experiment)`.
    pub label: String,
    /// Name of the report the entry was distilled from (e.g. `repro`).
    pub report: String,
    /// Headline numbers per experiment.
    pub experiments: BTreeMap<String, HistoryPoint>,
}

impl HistoryEntry {
    /// Distill a full bench report into a history entry.
    pub fn from_report(label: impl Into<String>, report: &BenchReport) -> HistoryEntry {
        HistoryEntry {
            label: label.into(),
            report: report.name.clone(),
            experiments: report
                .experiments
                .iter()
                .map(|e| {
                    (
                        e.name.clone(),
                        HistoryPoint {
                            cycles: e.cycles,
                            walks: e.walks,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Serialize as one self-describing JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let experiments: Vec<String> = self
            .experiments
            .iter()
            .map(|(name, p)| {
                format!(
                    "\"{}\":{{\"cycles\":{},\"walks\":{}}}",
                    escape(name),
                    p.cycles,
                    p.walks
                )
            })
            .collect();
        format!(
            "{{\"schema\":{},\"stream\":\"{}\",\"label\":\"{}\",\"report\":\"{}\",\
             \"experiments\":{{{}}}}}",
            SCHEMA_VERSION,
            BENCH_HISTORY_STREAM,
            escape(&self.label),
            escape(&self.report),
            experiments.join(",")
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a history file: one self-describing entry per non-empty line,
/// each validated for schema version and stream tag independently.
pub fn parse_history(text: &str) -> Result<Vec<HistoryEntry>, ReadError> {
    let mut entries = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse_json(line).map_err(|e| ReadError::Parse {
            line: line_no,
            message: format!("history line is not valid JSON ({e})"),
        })?;
        match doc.get("schema").and_then(JsonValue::as_u64) {
            Some(v) if v == u64::from(SCHEMA_VERSION) => {}
            Some(v) => {
                return Err(ReadError::Schema {
                    message: format!(
                        "history line {line_no} declares schema version {v}, but this \
                         reader only understands version {SCHEMA_VERSION}"
                    ),
                })
            }
            None => {
                return Err(ReadError::Schema {
                    message: format!("history line {line_no} has no \"schema\" field"),
                })
            }
        }
        match doc.get("stream").and_then(JsonValue::as_str) {
            Some(BENCH_HISTORY_STREAM) => {}
            Some(other) => {
                return Err(ReadError::Schema {
                    message: format!(
                        "history line {line_no} is stream \"{other}\", expected \
                         \"{BENCH_HISTORY_STREAM}\""
                    ),
                })
            }
            None => {
                return Err(ReadError::Schema {
                    message: format!("history line {line_no} has no \"stream\" field"),
                })
            }
        }
        let label = doc
            .get("label")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        let report = doc
            .get("report")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        let mut experiments = BTreeMap::new();
        if let Some(members) = doc.get("experiments").and_then(JsonValue::as_object) {
            for (name, p) in members {
                let field = |k: &str| {
                    p.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| ReadError::Parse {
                            line: line_no,
                            message: format!("experiment \"{name}\" has no u64 \"{k}\""),
                        })
                };
                experiments.insert(
                    name.clone(),
                    HistoryPoint {
                        cycles: field("cycles")?,
                        walks: field("walks")?,
                    },
                );
            }
        }
        entries.push(HistoryEntry {
            label,
            report,
            experiments,
        });
    }
    Ok(entries)
}

/// Read and parse a history file from disk.
pub fn read_history_file(path: &str) -> Result<Vec<HistoryEntry>, ReadError> {
    parse_history(&std::fs::read_to_string(path)?)
}

/// The verdict on one `(label, experiment)` series.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesVerdict {
    /// Configuration label.
    pub label: String,
    /// Experiment name.
    pub experiment: String,
    /// Points considered (after windowing).
    pub n: usize,
    /// Median cycles of the points before the last (0 when `n < 2`).
    pub baseline_cycles: u64,
    /// The last point's cycles.
    pub last_cycles: u64,
    /// Percent change of the last point vs. the baseline median.
    pub delta_pct: f64,
    /// Step change beyond the threshold.
    pub regressed: bool,
    /// The last point's walk count differs from its predecessor's: the
    /// workload itself changed (reported, never a failure by itself).
    pub walks_changed: bool,
}

/// The full drift report over a history file.
#[derive(Clone, Debug, Default)]
pub struct TrendReport {
    /// One verdict per series, sorted by `(label, experiment)`.
    pub series: Vec<SeriesVerdict>,
    /// Series with fewer than two points (no judgement possible).
    pub baselines: usize,
    /// Series whose last point regressed beyond the threshold.
    pub regressions: usize,
}

impl TrendReport {
    /// Whether no series regressed.
    pub fn passed(&self) -> bool {
        self.regressions == 0
    }

    /// Render as a text report.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-history trend: {} series, {} baseline-only, threshold {threshold}%",
            self.series.len(),
            self.baselines
        );
        for s in &self.series {
            if s.n < 2 {
                let _ = writeln!(
                    out,
                    "  {}/{:<12} n={} BASELINE ({} cycles; need 2+ entries to judge)",
                    s.label, s.experiment, s.n, s.last_cycles
                );
                continue;
            }
            let verdict = if s.regressed { "REGRESSION" } else { "ok" };
            let walks = if s.walks_changed {
                " [walks changed]"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {}/{:<12} n={} median {} -> last {} ({:+.1}%) {verdict}{walks}",
                s.label, s.experiment, s.n, s.baseline_cycles, s.last_cycles, s.delta_pct
            );
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.passed() {
                "PASS".to_string()
            } else {
                format!("FAIL ({} regressed series)", self.regressions)
            }
        );
        out
    }
}

/// Analyze drift: for each `(label, experiment)` series (windowed to the
/// last `window` points, in file order), compare the last point against
/// the median cycles of its predecessors. A step change above
/// `threshold_pct` percent is a regression; faster-than-baseline never
/// fails.
pub fn analyze_trend(entries: &[HistoryEntry], threshold_pct: f64, window: usize) -> TrendReport {
    let mut series: BTreeMap<(String, String), Vec<HistoryPoint>> = BTreeMap::new();
    for entry in entries {
        for (experiment, point) in &entry.experiments {
            series
                .entry((entry.label.clone(), experiment.clone()))
                .or_default()
                .push(*point);
        }
    }
    let mut report = TrendReport::default();
    for ((label, experiment), mut points) in series {
        if window > 0 && points.len() > window {
            points.drain(..points.len() - window);
        }
        let n = points.len();
        let last = points[n - 1];
        if n < 2 {
            report.baselines += 1;
            report.series.push(SeriesVerdict {
                label,
                experiment,
                n,
                baseline_cycles: 0,
                last_cycles: last.cycles,
                delta_pct: 0.0,
                regressed: false,
                walks_changed: false,
            });
            continue;
        }
        let mut prior_cycles: Vec<u64> = points[..n - 1].iter().map(|p| p.cycles).collect();
        prior_cycles.sort_unstable();
        // Lower median: for an even prior count, the smaller middle value —
        // the stricter baseline (a smaller denominator inflates the delta).
        let baseline = prior_cycles[(prior_cycles.len() - 1) / 2];
        let delta_pct = if baseline == 0 {
            0.0
        } else {
            100.0 * (last.cycles as f64 - baseline as f64) / baseline as f64
        };
        let regressed = delta_pct > threshold_pct;
        if regressed {
            report.regressions += 1;
        }
        report.series.push(SeriesVerdict {
            label,
            experiment,
            n,
            baseline_cycles: baseline,
            last_cycles: last.cycles,
            delta_pct,
            regressed,
            walks_changed: last.walks != points[n - 2].walks,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_trace::{ExperimentRecord, MetricsRegistry};

    fn entry(label: &str, cycles: u64, walks: u64) -> HistoryEntry {
        HistoryEntry {
            label: label.to_string(),
            report: "repro".to_string(),
            experiments: [("fig2".to_string(), HistoryPoint { cycles, walks })]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn entry_round_trips_through_jsonl() {
        let entries = vec![entry("seed", 1000, 50), entry("seed", 1010, 50)];
        let text: String = entries
            .iter()
            .map(|e| format!("{}\n", e.to_json_line()))
            .collect();
        assert_eq!(parse_history(&text).unwrap(), entries);
    }

    #[test]
    fn from_report_distills_cycles_and_walks() {
        let mut reg = MetricsRegistry::new();
        reg.set("machine.walks", 42);
        let mut report = BenchReport::new("repro");
        report.push(ExperimentRecord::from_snapshot(
            "fig2",
            1270,
            reg.snapshot(),
        ));
        let e = HistoryEntry::from_report("seed", &report);
        assert_eq!(e.report, "repro");
        assert_eq!(e.experiments["fig2"].cycles, 1270);
        assert_eq!(e.experiments["fig2"].walks, 42);
    }

    #[test]
    fn unknown_schema_is_rejected_with_version_and_line() {
        let good = entry("seed", 1, 1).to_json_line();
        let bad = good.replacen("\"schema\":1", "\"schema\":6", 1);
        let err = parse_history(&format!("{good}\n{bad}\n")).expect_err("must reject");
        let msg = err.to_string();
        assert!(msg.contains('6'), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn wrong_stream_is_rejected() {
        let bad = entry("seed", 1, 1).to_json_line().replacen(
            BENCH_HISTORY_STREAM,
            "hpmp-walk-events",
            1,
        );
        let err = parse_history(&bad).expect_err("must reject");
        assert!(err.to_string().contains("hpmp-walk-events"), "{err}");
    }

    #[test]
    fn single_entry_series_is_baseline_only() {
        let report = analyze_trend(&[entry("seed", 1000, 50)], 5.0, 0);
        assert_eq!(report.baselines, 1);
        assert!(report.passed());
        assert!(report.render(5.0).contains("BASELINE"));
    }

    #[test]
    fn stable_series_passes() {
        let entries = vec![
            entry("seed", 1000, 50),
            entry("seed", 1002, 50),
            entry("seed", 1001, 50),
        ];
        let report = analyze_trend(&entries, 5.0, 0);
        assert!(report.passed(), "{}", report.render(5.0));
        assert_eq!(report.series[0].baseline_cycles, 1000);
    }

    #[test]
    fn step_change_beyond_threshold_regresses() {
        let entries = vec![
            entry("seed", 1000, 50),
            entry("seed", 1001, 50),
            entry("seed", 1100, 50),
        ];
        let report = analyze_trend(&entries, 5.0, 0);
        assert!(!report.passed());
        assert_eq!(report.regressions, 1);
        assert!(report.render(5.0).contains("REGRESSION"));
    }

    #[test]
    fn speedups_never_fail() {
        let entries = vec![entry("seed", 1000, 50), entry("seed", 500, 50)];
        let report = analyze_trend(&entries, 5.0, 0);
        assert!(report.passed());
        assert!(report.series[0].delta_pct < 0.0);
    }

    #[test]
    fn walk_changes_are_reported_not_failed() {
        let entries = vec![entry("seed", 1000, 50), entry("seed", 1000, 60)];
        let report = analyze_trend(&entries, 5.0, 0);
        assert!(report.passed());
        assert!(report.series[0].walks_changed);
        assert!(report.render(5.0).contains("walks changed"));
    }

    #[test]
    fn window_limits_the_series() {
        // Old slow history outside the window must not mask a recent
        // regression baseline.
        let mut entries: Vec<HistoryEntry> = (0..10).map(|_| entry("seed", 2000, 50)).collect();
        entries.extend((0..5).map(|_| entry("seed", 1000, 50)));
        entries.push(entry("seed", 1100, 50));
        let windowed = analyze_trend(&entries, 5.0, 6);
        assert!(!windowed.passed(), "window of 6: baseline is 1000");
        let unwindowed = analyze_trend(&entries, 5.0, 0);
        assert!(unwindowed.passed(), "full history: median is 2000");
    }

    #[test]
    fn series_are_keyed_by_label() {
        let entries = vec![
            entry("seed", 1000, 50),
            entry("multihart", 9000, 500),
            entry("seed", 1001, 50),
            entry("multihart", 9001, 500),
        ];
        let report = analyze_trend(&entries, 5.0, 0);
        assert_eq!(report.series.len(), 2);
        assert!(report.passed());
    }
}
