//! Exporters: simulator artifacts → industry-standard viewer formats.
//!
//! Two targets, both fed by the PR 6 telemetry artifacts:
//!
//! * **Chrome Trace Event Format** ([`chrome_trace`]) from a span stream
//!   (plus, optionally, a timeline): one JSON document loadable in
//!   Perfetto or `chrome://tracing`. Harts become threads, monitor
//!   operations and shootdown deliveries become complete (`"X"`) slices,
//!   the causal parent ids become flow arrows (`"s"`/`"f"` pairs), and
//!   timeline slices become counter (`"C"`) tracks. One simulated cycle
//!   is rendered as one microsecond — the viewer's time unit is
//!   *simulated* time, never host time.
//! * **Collapsed stacks** ([`collapsed_stacks`]) from a walk-event trace:
//!   `world;class;step` frames, one line per stack with its summed
//!   cycles, directly consumable by `flamegraph.pl` or inferno to render
//!   a cycle-attribution flamegraph.
//!
//! Both directions are *lossy projections* of the artifacts, so each has
//! a round-trip validator ([`verify_span_export`], [`verify_collapsed`])
//! re-summing the exported durations against the run's metrics snapshot:
//! receiver-side handler spans must re-derive `hart.<i>.shootdown_cycles`
//! exactly, and per-class stack totals must re-derive the
//! `machine.latency.<class>.cycles` counters. If a projection ever drops
//! or double-counts cycles, the export fails rather than rendering a
//! pretty lie.

use crate::timeline::sum_over_harts;
use hpmp_trace::{AccessClass, Snapshot, SpanEvent, SpanKind, SpanStream, Timeline, WalkEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The Chrome `cat` field of a span: monitor operations vs. the shootdown
/// machinery under them.
fn category(kind: SpanKind) -> &'static str {
    if kind.is_operation() {
        "operation"
    } else {
        "shootdown"
    }
}

/// Convert a span stream (and optional timeline) into one Chrome Trace
/// Event Format document.
///
/// Event order is deterministic: process/thread metadata, then every
/// span in stream order, then one flow pair per parent link in stream
/// order, then the timeline's counter samples in slice order.
pub fn chrome_trace(spans: &SpanStream, timeline: Option<&Timeline>) -> String {
    let mut events: Vec<String> = Vec::new();

    // Track metadata: one process, one thread per hart seen.
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"hpmp-sim (simulated cycles as us)\"}}"
            .to_string(),
    );
    let mut harts: Vec<u16> = spans.spans.iter().map(|s| s.hart).collect();
    harts.sort_unstable();
    harts.dedup();
    for hart in &harts {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{hart},\
             \"args\":{{\"name\":\"hart {hart}\"}}}}"
        ));
    }

    // Complete events: one slice per span, on its hart's track.
    let by_id: BTreeMap<u64, &SpanEvent> = spans.spans.iter().map(|s| (s.id, s)).collect();
    for span in &spans.spans {
        let mut args = format!("\"span\":{}", span.id);
        if let Some(domain) = span.domain {
            let _ = write!(args, ",\"domain\":{domain}");
        }
        if let Some(parent) = span.parent {
            let _ = write!(args, ",\"parent\":{parent}");
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":{},\"args\":{{{}}}}}",
            span.kind.label(),
            category(span.kind),
            span.begin,
            span.cycles(),
            span.hart,
            args
        ));
    }

    // Flow arrows: one s/f pair per causal parent link, drawn from the
    // parent's begin to the child's begin, across hart tracks. The child
    // id doubles as the flow id (every child has exactly one parent).
    for span in &spans.spans {
        let Some(parent) = span.parent.and_then(|id| by_id.get(&id)) else {
            continue;
        };
        events.push(format!(
            "{{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\
             \"ts\":{},\"pid\":0,\"tid\":{}}}",
            span.id, parent.begin, parent.hart
        ));
        events.push(format!(
            "{{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
             \"id\":{},\"ts\":{},\"pid\":0,\"tid\":{}}}",
            span.id, span.begin, span.hart
        ));
    }

    // Counter tracks from the timeline: cumulative walks and delivered
    // IPIs sampled at each slice boundary.
    if let Some(timeline) = timeline {
        let mut walks = 0u64;
        let mut ipis = 0u64;
        for slice in &timeline.slices {
            walks += sum_over_harts(&slice.counters, "machine.walks");
            ipis += slice.counters.value("smp.ipis_delivered");
            events.push(format!(
                "{{\"name\":\"walks\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                 \"args\":{{\"walks\":{walks}}}}}",
                slice.end_cycle
            ));
            events.push(format!(
                "{{\"name\":\"ipis\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                 \"args\":{{\"delivered\":{ipis}}}}}",
                slice.end_cycle
            ));
        }
    }

    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\
         \"otherData\":{{\"source\":\"hpmp-analyze export\",\"dropped_spans\":{}}}}}\n",
        events.join(","),
        spans.dropped
    )
}

/// Re-sum the span projection against the run's final metrics snapshot.
///
/// Two invariants, exact by construction of the SMP harness:
///
/// * per hart, the receiver-side handler spans (`trap` + `reprogram` +
///   `fence`) sum to `hart.<i>.shootdown_cycles` — the cycles
///   [`charge_shootdown`](hpmp_machine) charged;
/// * per hart, the `shootdown_recv` span count equals
///   `hart.<i>.shootdowns`.
///
/// Returns the list of violations (empty = round trip clean). A stream
/// that dropped spans cannot re-derive the counters; that is reported as
/// a violation rather than silently tolerated.
pub fn verify_span_export(spans: &SpanStream, metrics: &Snapshot) -> Vec<String> {
    let mut violations = Vec::new();
    if spans.dropped > 0 {
        violations.push(format!(
            "{} spans were dropped at capture; durations cannot re-derive the counters",
            spans.dropped
        ));
    }
    let mut handler_cycles: BTreeMap<u16, u64> = BTreeMap::new();
    let mut recv_count: BTreeMap<u16, u64> = BTreeMap::new();
    for span in &spans.spans {
        match span.kind {
            SpanKind::Trap | SpanKind::Reprogram | SpanKind::Fence => {
                *handler_cycles.entry(span.hart).or_insert(0) += span.cycles();
            }
            SpanKind::ShootdownRecv => {
                *recv_count.entry(span.hart).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    // Harts are taken from the metrics side so a hart whose spans all
    // vanished is caught too.
    let mut harts: Vec<u16> = metrics
        .iter()
        .filter_map(|(name, _)| {
            name.strip_prefix("hart.")?
                .split('.')
                .next()?
                .parse::<u16>()
                .ok()
        })
        .collect();
    harts.extend(handler_cycles.keys().copied());
    harts.sort_unstable();
    harts.dedup();
    for hart in harts {
        let want_cycles = metrics.value(&format!("hart.{hart}.shootdown_cycles"));
        let got_cycles = handler_cycles.get(&hart).copied().unwrap_or(0);
        if want_cycles != got_cycles {
            violations.push(format!(
                "hart {hart}: exported handler spans sum to {got_cycles} cycles but \
                 hart.{hart}.shootdown_cycles = {want_cycles}"
            ));
        }
        let want_count = metrics.value(&format!("hart.{hart}.shootdowns"));
        let got_count = recv_count.get(&hart).copied().unwrap_or(0);
        if want_count != got_count {
            violations.push(format!(
                "hart {hart}: {got_count} shootdown_recv spans exported but \
                 hart.{hart}.shootdowns = {want_count}"
            ));
        }
    }
    violations
}

/// Collapse a walk-event trace into `world;class;step` stacks with
/// summed cycles — the flamegraph.pl / inferno input format. Leveled
/// steps keep their level as an `_L<n>` suffix so Sv39's three PT levels
/// stay distinguishable; each event's fixed pipeline overhead becomes a
/// `pipeline` leaf.
pub fn collapsed_stacks(events: &[WalkEvent]) -> BTreeMap<String, u64> {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for event in events {
        let world = event.world.label();
        let class = AccessClass::classify(event.op, event.tlb.is_hit()).label();
        for step in &event.steps {
            let frame = match step.level {
                Some(level) => format!("{world};{class};{}_L{level}", step.kind.label()),
                None => format!("{world};{class};{}", step.kind.label()),
            };
            *stacks.entry(frame).or_insert(0) += step.cycles;
        }
        if event.pipeline_cycles > 0 {
            *stacks
                .entry(format!("{world};{class};pipeline"))
                .or_insert(0) += event.pipeline_cycles;
        }
    }
    stacks.retain(|_, cycles| *cycles > 0);
    stacks
}

/// Render collapsed stacks as text: one `frame;frame;frame cycles` line
/// per stack, sorted by frame path (deterministic for byte-comparison).
pub fn render_collapsed(stacks: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, cycles) in stacks {
        let _ = writeln!(out, "{stack} {cycles}");
    }
    out
}

/// Re-sum the collapsed-stack projection against the run's final metrics
/// snapshot: per access class, the cycles of that class's events must
/// equal the class's latency-histogram cycle counter
/// (`machine.latency.<class>.cycles`, summed over harts), and every
/// event's stack total must equal its own cycle count (the step-sum
/// invariant). Returns the violations (empty = round trip clean).
pub fn verify_collapsed(events: &[WalkEvent], metrics: &Snapshot) -> Vec<String> {
    let mut violations = Vec::new();
    let mut by_class: BTreeMap<&'static str, u64> = BTreeMap::new();
    for event in events {
        let class = AccessClass::classify(event.op, event.tlb.is_hit()).label();
        *by_class.entry(class).or_insert(0) += event.cycles;
        let stacked: u64 =
            event.pipeline_cycles + event.steps.iter().map(|s| s.cycles).sum::<u64>();
        if stacked != event.cycles {
            violations.push(format!(
                "event seq {}: stacked cycles {} != event cycles {} (step-sum violation)",
                event.seq, stacked, event.cycles
            ));
        }
    }
    for class in AccessClass::ALL {
        let label = class.label();
        let want = sum_over_harts(metrics, &format!("machine.latency.{label}.cycles"));
        let got = by_class.get(label).copied().unwrap_or(0);
        if want != got {
            violations.push(format!(
                "class {label}: stacks sum to {got} cycles but the latency counters \
                 say {want}"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_trace::{
        AccessOp, MetricsRegistry, PrivLevel, SpanCollector, StepKind, TlbOutcome, WalkStep, World,
    };

    fn spans_with_shootdown() -> SpanStream {
        let mut c = SpanCollector::bounded(64);
        // An op on hart 0 with one receiver on hart 1.
        let op = c.reserve().unwrap();
        let recv = c
            .emit(SpanKind::ShootdownRecv, 1, Some(7), Some(op), 100, 180)
            .unwrap();
        c.emit(SpanKind::Trap, 1, Some(7), Some(recv), 110, 140);
        c.emit(SpanKind::Reprogram, 1, Some(7), Some(recv), 140, 165);
        c.emit(SpanKind::Fence, 1, Some(7), Some(recv), 165, 180);
        c.emit_reserved(SpanEvent {
            id: op,
            parent: None,
            kind: SpanKind::Free,
            hart: 0,
            domain: Some(7),
            begin: 90,
            end: 200,
        });
        SpanStream {
            dropped: 0,
            spans: c.spans().to_vec(),
        }
    }

    fn matching_metrics() -> Snapshot {
        let mut reg = MetricsRegistry::new();
        // trap 30 + reprogram 25 + fence 15 = 70 handler cycles.
        reg.set("hart.1.shootdown_cycles", 70);
        reg.set("hart.1.shootdowns", 1);
        reg.set("hart.0.shootdown_cycles", 0);
        reg.set("hart.0.shootdowns", 0);
        reg.snapshot()
    }

    #[test]
    fn chrome_export_has_tracks_slices_and_flows() {
        let spans = spans_with_shootdown();
        let json = chrome_trace(&spans, None);
        // Parses as JSON at all.
        let doc = hpmp_trace::json::parse_json(&json).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 1 process + 2 threads + 5 spans + 4 flow pairs (recv->op,
        // trap/reprogram/fence->recv).
        assert_eq!(events.len(), 1 + 2 + 5 + 2 * 4, "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"name\":\"shootdown_recv\""), "{json}");
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        // The op slice spans its full width on hart 0's track.
        assert!(
            json.contains(
                "\"name\":\"free\",\"cat\":\"operation\",\"ph\":\"X\",\"ts\":90,\"dur\":110"
            ),
            "{json}"
        );
    }

    #[test]
    fn span_round_trip_verifies_against_counters() {
        let spans = spans_with_shootdown();
        assert_eq!(
            verify_span_export(&spans, &matching_metrics()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn span_round_trip_catches_doctored_counters() {
        let spans = spans_with_shootdown();
        let mut reg = MetricsRegistry::new();
        reg.set("hart.1.shootdown_cycles", 71); // off by one
        reg.set("hart.1.shootdowns", 1);
        let violations = verify_span_export(&spans, &reg.snapshot());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("71"), "{violations:?}");
    }

    #[test]
    fn span_round_trip_rejects_dropped_streams() {
        let mut spans = spans_with_shootdown();
        spans.dropped = 3;
        let violations = verify_span_export(&spans, &matching_metrics());
        assert!(violations[0].contains("dropped"), "{violations:?}");
    }

    fn walk_event(seq: u64, op: AccessOp, tlb: TlbOutcome, steps: Vec<WalkStep>) -> WalkEvent {
        let step_cycles: u64 = steps.iter().map(|s| s.cycles).sum();
        WalkEvent {
            seq,
            hart: 0,
            world: World::Enclave,
            op,
            privilege: PrivLevel::Supervisor,
            va: 0x1000,
            paddr: Some(0x8000_0000),
            tlb,
            pwc_level: None,
            pmptw: None,
            pipeline_cycles: 1,
            cycles: 1 + step_cycles,
            fault: None,
            steps,
        }
    }

    fn sample_events() -> Vec<WalkEvent> {
        let step = |kind, level, cycles| WalkStep {
            kind,
            level,
            addr: 0x8000_0000,
            cycles,
        };
        vec![
            walk_event(
                0,
                AccessOp::Read,
                TlbOutcome::Miss,
                vec![
                    step(StepKind::Pt, Some(2), 14),
                    step(StepKind::Pt, Some(1), 14),
                    step(StepKind::Pt, Some(0), 14),
                    step(StepKind::Data, None, 14),
                ],
            ),
            walk_event(
                1,
                AccessOp::Read,
                TlbOutcome::L1Hit,
                vec![step(StepKind::Data, None, 2)],
            ),
        ]
    }

    #[test]
    fn collapsed_stacks_fold_by_world_class_step() {
        let stacks = collapsed_stacks(&sample_events());
        assert_eq!(stacks["enclave;read_walk;pt_L2"], 14);
        assert_eq!(stacks["enclave;read_walk;data"], 14);
        assert_eq!(stacks["enclave;read_tlb_hit;data"], 2);
        assert_eq!(stacks["enclave;read_walk;pipeline"], 1);
        let rendered = render_collapsed(&stacks);
        assert!(
            rendered.contains("enclave;read_walk;pt_L0 14\n"),
            "{rendered}"
        );
        let total: u64 = stacks.values().sum();
        assert_eq!(total, 57 + 3, "every event cycle lands in some stack");
    }

    #[test]
    fn collapsed_round_trip_verifies_against_latency_counters() {
        let events = sample_events();
        let mut reg = MetricsRegistry::new();
        reg.set("machine.latency.read_walk.cycles", 57);
        reg.set("machine.latency.read_tlb_hit.cycles", 3);
        assert_eq!(
            verify_collapsed(&events, &reg.snapshot()),
            Vec::<String>::new()
        );

        reg.set("machine.latency.read_walk.cycles", 58);
        let violations = verify_collapsed(&events, &reg.snapshot());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("read_walk"), "{violations:?}");
    }

    #[test]
    fn collapsed_verify_flags_unbalanced_events() {
        let mut events = sample_events();
        events[0].cycles += 5;
        let mut reg = MetricsRegistry::new();
        reg.set("machine.latency.read_walk.cycles", 62);
        reg.set("machine.latency.read_tlb_hit.cycles", 3);
        let violations = verify_collapsed(&events, &reg.snapshot());
        assert!(
            violations.iter().any(|v| v.contains("step-sum")),
            "{violations:?}"
        );
    }
}
