//! The perf-trajectory regression gate.
//!
//! `hpmp-analyze gate --baseline BENCH_seed.json --threshold 5% current.json`
//! compares a fresh bench report against a committed baseline and fails
//! (nonzero exit) when any watched metric regressed by more than the
//! threshold:
//!
//! * per-experiment total cycles — the headline trajectory;
//! * per-experiment walk-reference totals (`*.refs` counters) — the paper's
//!   core claim is a reference-count reduction, so a change here is a
//!   correctness smell even when cycles still pass;
//! * per-class p99 latency — tail regressions hide inside stable means.
//!
//! Improvements and experiments new in the current run never fail the
//! gate; experiments *missing* from the current run do (a shrinking
//! trajectory silently loses coverage).

use hpmp_trace::BenchReport;
use std::fmt::Write as _;

/// One metric's comparison against the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Experiment the metric belongs to.
    pub experiment: String,
    /// Metric label (`cycles`, a `*.refs*` counter, or `<base>.p99`).
    pub metric: String,
    /// Baseline value.
    pub baseline: u64,
    /// Current value.
    pub current: u64,
}

impl Finding {
    /// Percent change relative to the baseline (`None` when baseline is 0
    /// and current is not — reported as an unbounded regression).
    pub fn pct(&self) -> Option<f64> {
        (self.baseline != 0)
            .then(|| 100.0 * (self.current as f64 - self.baseline as f64) / self.baseline as f64)
    }

    /// Whether the change exceeds `threshold_pct` in the bad direction.
    pub fn is_regression(&self, threshold_pct: f64) -> bool {
        if self.current <= self.baseline {
            return false;
        }
        match self.pct() {
            Some(p) => p > threshold_pct,
            // Baseline 0, current nonzero: infinite relative growth.
            None => true,
        }
    }
}

/// The gate's verdict over a whole report pair.
#[derive(Clone, Debug, Default)]
pub struct GateOutcome {
    /// Findings exceeding the threshold (the gate fails when non-empty).
    pub regressions: Vec<Finding>,
    /// Findings that moved in the good direction past the threshold
    /// (informational; a candidate for re-baselining).
    pub improvements: Vec<Finding>,
    /// Experiments present in the baseline but absent from the current run.
    pub missing: Vec<String>,
    /// Number of metric comparisons performed.
    pub checked: u64,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Render a human-readable verdict.
    pub fn render(&self, threshold_pct: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf gate: {} comparisons at {threshold_pct}% threshold",
            self.checked
        );
        for m in &self.missing {
            let _ = writeln!(out, "  MISSING experiment \"{m}\" (present in baseline)");
        }
        for f in &self.regressions {
            let pct = f
                .pct()
                .map(|p| format!("{p:+.2}%"))
                .unwrap_or_else(|| "new nonzero".to_string());
            let _ = writeln!(
                out,
                "  REGRESSION [{}] {}: {} -> {} ({pct})",
                f.experiment, f.metric, f.baseline, f.current
            );
        }
        for f in &self.improvements {
            let pct = f.pct().map(|p| format!("{p:+.2}%")).unwrap_or_default();
            let _ = writeln!(
                out,
                "  improvement [{}] {}: {} -> {} ({pct})",
                f.experiment, f.metric, f.baseline, f.current
            );
        }
        let _ = writeln!(
            out,
            "  verdict: {}",
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Is this counter part of the walk-reference family the gate watches?
fn is_refs_counter(name: &str) -> bool {
    name.ends_with(".refs") || name.contains(".refs.")
}

/// Compare `current` against `baseline` at `threshold_pct`.
pub fn gate(current: &BenchReport, baseline: &BenchReport, threshold_pct: f64) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    for base_exp in &baseline.experiments {
        let Some(cur_exp) = current.experiment(&base_exp.name) else {
            outcome.missing.push(base_exp.name.clone());
            continue;
        };
        let mut check = |metric: String, baseline: u64, current: u64| {
            outcome.checked += 1;
            let f = Finding {
                experiment: base_exp.name.clone(),
                metric,
                baseline,
                current,
            };
            if f.is_regression(threshold_pct) {
                outcome.regressions.push(f);
            } else if baseline > current
                && baseline != 0
                && 100.0 * (baseline - current) as f64 / baseline as f64 > threshold_pct
            {
                outcome.improvements.push(f);
            }
        };

        check("cycles".to_string(), base_exp.cycles, cur_exp.cycles);
        for (name, value) in base_exp.counters.iter() {
            if is_refs_counter(name) {
                check(name.to_string(), value, cur_exp.counters.value(name));
            }
        }
        for (base, p) in &base_exp.percentiles {
            let cur_p99 = cur_exp.percentiles.get(base).map(|c| c.p99).unwrap_or(0);
            check(format!("{base}.p99"), p.p99, cur_p99);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_trace::{AccessClass, ExperimentRecord, LatencyHistograms, MetricsRegistry, Snapshot};

    fn snapshot(cycles: u64, refs: u64, walk_latency: u64) -> Snapshot {
        let mut hists = LatencyHistograms::new();
        for _ in 0..10 {
            hists.record(AccessClass::ReadWalk, walk_latency);
        }
        let mut reg = MetricsRegistry::new();
        reg.set("machine.cycles", cycles);
        reg.set("machine.refs", refs);
        reg.set("machine.refs.pt_reads", refs / 2);
        hists.export(&mut reg, "machine.latency");
        reg.snapshot()
    }

    fn report(cycles: u64, refs: u64, walk_latency: u64) -> BenchReport {
        let mut r = BenchReport::new("repro");
        r.push(ExperimentRecord::from_snapshot(
            "fig2",
            cycles,
            snapshot(cycles, refs, walk_latency),
        ));
        r
    }

    #[test]
    fn identical_reports_pass() {
        let outcome = gate(&report(1000, 60, 30), &report(1000, 60, 30), 5.0);
        assert!(outcome.passed(), "{outcome:?}");
        assert!(outcome.checked >= 4, "cycles + refs + refs.pt + p99");
    }

    #[test]
    fn small_noise_within_threshold_passes() {
        let outcome = gate(&report(1040, 60, 30), &report(1000, 60, 30), 5.0);
        assert!(outcome.passed(), "{outcome:?}");
    }

    #[test]
    fn cycle_regression_fails() {
        // The acceptance criterion: a doctored baseline whose cycles are >5%
        // lower than the current run must fail the gate.
        let outcome = gate(&report(1100, 60, 30), &report(1000, 60, 30), 5.0);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions[0].metric, "cycles");
        assert!(outcome.render(5.0).contains("FAIL"));
    }

    #[test]
    fn refs_regression_fails_even_with_stable_cycles() {
        let outcome = gate(&report(1000, 80, 30), &report(1000, 60, 30), 5.0);
        assert!(!outcome.passed());
        assert!(outcome
            .regressions
            .iter()
            .any(|f| f.metric == "machine.refs"));
    }

    #[test]
    fn tail_latency_regression_fails() {
        let outcome = gate(&report(1000, 60, 200), &report(1000, 60, 30), 5.0);
        assert!(!outcome.passed());
        assert!(outcome
            .regressions
            .iter()
            .any(|f| f.metric == "machine.latency.read_walk.p99"));
    }

    #[test]
    fn improvements_do_not_fail() {
        let outcome = gate(&report(800, 40, 10), &report(1000, 60, 30), 5.0);
        assert!(outcome.passed(), "{outcome:?}");
        assert!(!outcome.improvements.is_empty());
    }

    #[test]
    fn missing_experiment_fails() {
        let current = report(1000, 60, 30);
        let mut baseline = report(1000, 60, 30);
        baseline.push(ExperimentRecord::from_snapshot("fig13", 5, Snapshot::new()));
        let outcome = gate(&current, &baseline, 5.0);
        assert!(!outcome.passed());
        assert_eq!(outcome.missing, vec!["fig13".to_string()]);
    }

    #[test]
    fn new_experiments_in_current_are_ignored() {
        let mut current = report(1000, 60, 30);
        current.push(ExperimentRecord::from_snapshot("extra", 5, Snapshot::new()));
        assert!(gate(&current, &report(1000, 60, 30), 5.0).passed());
    }

    #[test]
    fn zero_baseline_to_nonzero_is_regression() {
        let f = Finding {
            experiment: "e".into(),
            metric: "m".into(),
            baseline: 0,
            current: 5,
        };
        assert!(f.is_regression(5.0));
    }
}
