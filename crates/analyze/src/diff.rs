//! A/B differential reports over versioned artifacts.
//!
//! `hpmp-analyze diff a.json b.json` compares two runs — e.g. `hpmp` vs
//! `pmp-table`, or TLB inlining on vs off — counter by counter, and
//! reports histogram percentile shifts (p50/p90/p99) recomputed from the
//! merged-safe bucket counters. Both versioned metrics snapshots
//! (`--metrics-out`) and bench reports (`--bench-out`) are accepted; the
//! document's `kind` tag selects the interpretation.

use hpmp_trace::{
    histograms_in_snapshot, BenchReport, Percentiles, ReadError, Snapshot, BENCH_REPORT_KIND,
};
use std::fmt::Write as _;

/// Any versioned document `diff` can consume.
pub enum Artifact {
    /// A `--metrics-out` snapshot.
    Metrics(Snapshot),
    /// A `--bench-out` perf-trajectory report.
    Bench(BenchReport),
}

/// Parse a document by its `kind` tag.
pub fn load_artifact(text: &str) -> Result<Artifact, ReadError> {
    let doc = hpmp_trace::json::parse_json(text).map_err(|e| ReadError::Schema {
        message: format!("artifact is not valid JSON ({e})"),
    })?;
    match doc.get("kind").and_then(|k| k.as_str()) {
        Some(BENCH_REPORT_KIND) => Ok(Artifact::Bench(BenchReport::from_json(text)?)),
        Some(Snapshot::JSON_KIND) => Ok(Artifact::Metrics(Snapshot::from_json(text)?)),
        Some(other) => Err(ReadError::Schema {
            message: format!(
                "unknown artifact kind \"{other}\" (expected \"{}\" or \"{}\")",
                Snapshot::JSON_KIND,
                BENCH_REPORT_KIND
            ),
        }),
        None => Err(ReadError::Schema {
            message: "artifact has no \"kind\" field — is this a versioned \
                      --metrics-out / --bench-out document?"
                .to_string(),
        }),
    }
}

/// One counter's change between two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterDiff {
    /// Dotted counter name.
    pub name: String,
    /// Value in the first (baseline) run.
    pub a: u64,
    /// Value in the second run.
    pub b: u64,
}

impl CounterDiff {
    /// Signed change `b - a`.
    pub fn delta(&self) -> i128 {
        self.b as i128 - self.a as i128
    }

    /// Percent change relative to `a` (`None` when `a` is 0).
    pub fn pct(&self) -> Option<f64> {
        (self.a != 0).then(|| 100.0 * self.delta() as f64 / self.a as f64)
    }
}

/// One histogram class's percentile shift between two runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PercentileShift {
    /// Histogram base name (e.g. `machine.latency.read_walk`).
    pub base: String,
    /// Percentiles in the first run (`None` when the class is empty there).
    pub a: Option<Percentiles>,
    /// Percentiles in the second run.
    pub b: Option<Percentiles>,
}

/// All changed counters between two snapshots (union of keys; unchanged
/// counters are skipped).
pub fn diff_snapshots(a: &Snapshot, b: &Snapshot) -> Vec<CounterDiff> {
    let mut names: Vec<&str> = a.iter().map(|(k, _)| k).collect();
    names.extend(b.iter().map(|(k, _)| k));
    names.sort_unstable();
    names.dedup();
    names
        .into_iter()
        .filter_map(|name| {
            let (va, vb) = (a.value(name), b.value(name));
            (va != vb).then(|| CounterDiff {
                name: name.to_string(),
                a: va,
                b: vb,
            })
        })
        .collect()
}

/// Percentile shifts for every histogram either snapshot carries.
pub fn percentile_shifts(a: &Snapshot, b: &Snapshot) -> Vec<PercentileShift> {
    let ha = histograms_in_snapshot(a);
    let hb = histograms_in_snapshot(b);
    let mut bases: Vec<&String> = ha.keys().chain(hb.keys()).collect();
    bases.sort_unstable();
    bases.dedup();
    bases
        .into_iter()
        .map(|base| PercentileShift {
            base: base.clone(),
            a: ha.get(base).and_then(Percentiles::of),
            b: hb.get(base).and_then(Percentiles::of),
        })
        .collect()
}

fn render_counter_table(out: &mut String, diffs: &[CounterDiff], limit: usize) {
    let _ = writeln!(
        out,
        "  {:<44} {:>14} {:>14} {:>12} {:>9}",
        "counter", "a", "b", "delta", "pct"
    );
    for d in diffs.iter().take(limit) {
        let pct = match d.pct() {
            Some(p) => format!("{p:+.1}%"),
            None => "new".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<44} {:>14} {:>14} {:>+12} {:>9}",
            d.name,
            d.a,
            d.b,
            d.delta(),
            pct
        );
    }
    if diffs.len() > limit {
        let _ = writeln!(
            out,
            "  ... and {} more changed counters",
            diffs.len() - limit
        );
    }
}

fn render_shift_table(out: &mut String, shifts: &[PercentileShift]) {
    let changed: Vec<&PercentileShift> = shifts.iter().filter(|s| s.a != s.b).collect();
    if changed.is_empty() {
        return;
    }
    let _ = writeln!(out, "  latency percentile shifts (cycles):");
    for s in changed {
        let fmt = |p: Option<Percentiles>| match p {
            Some(p) => format!("p50={} p90={} p99={}", p.p50, p.p90, p.p99),
            None => "(empty)".to_string(),
        };
        let _ = writeln!(out, "    {:<40} {}  ->  {}", s.base, fmt(s.a), fmt(s.b));
    }
}

/// Render a full differential report between two artifacts of the same
/// kind.
pub fn render_diff(
    label_a: &str,
    label_b: &str,
    a: &Artifact,
    b: &Artifact,
) -> Result<String, String> {
    let mut out = String::new();
    match (a, b) {
        (Artifact::Metrics(sa), Artifact::Metrics(sb)) => {
            let _ = writeln!(out, "metrics diff: {label_a} -> {label_b}");
            let diffs = diff_snapshots(sa, sb);
            if diffs.is_empty() {
                let _ = writeln!(out, "  no counter changed");
            } else {
                render_counter_table(&mut out, &diffs, 200);
            }
            render_shift_table(&mut out, &percentile_shifts(sa, sb));
        }
        (Artifact::Bench(ra), Artifact::Bench(rb)) => {
            let _ = writeln!(out, "bench diff: {label_a} -> {label_b}");
            for eb in &rb.experiments {
                let Some(ea) = ra.experiment(&eb.name) else {
                    let _ = writeln!(out, "\n[{}] only in {label_b}", eb.name);
                    continue;
                };
                let cycles = CounterDiff {
                    name: "cycles".to_string(),
                    a: ea.cycles,
                    b: eb.cycles,
                };
                let pct = cycles
                    .pct()
                    .map(|p| format!("{p:+.2}%"))
                    .unwrap_or_else(|| "n/a".to_string());
                let _ = writeln!(
                    out,
                    "\n[{}] cycles: {} -> {} ({pct})",
                    eb.name, ea.cycles, eb.cycles
                );
                let diffs = diff_snapshots(&ea.counters, &eb.counters);
                if !diffs.is_empty() {
                    render_counter_table(&mut out, &diffs, 40);
                }
                render_shift_table(&mut out, &percentile_shifts(&ea.counters, &eb.counters));
            }
            for ea in &ra.experiments {
                if rb.experiment(&ea.name).is_none() {
                    let _ = writeln!(out, "\n[{}] only in {label_a}", ea.name);
                }
            }
        }
        _ => {
            return Err("cannot diff a metrics snapshot against a bench report — \
                 pass two artifacts of the same kind"
                .to_string())
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_trace::{AccessClass, ExperimentRecord, LatencyHistograms, MetricsRegistry};

    fn snap(cycles: u64, walk_latency: u64) -> Snapshot {
        let mut hists = LatencyHistograms::new();
        for _ in 0..10 {
            hists.record(AccessClass::ReadWalk, walk_latency);
        }
        let mut reg = MetricsRegistry::new();
        reg.set("machine.cycles", cycles);
        reg.set("machine.walks", 10);
        hists.export(&mut reg, "machine.latency");
        reg.snapshot()
    }

    #[test]
    fn diff_reports_changed_counters_only() {
        let diffs = diff_snapshots(&snap(100, 30), &snap(150, 30));
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].name, "machine.cycles");
        assert_eq!(diffs[0].delta(), 50);
        assert_eq!(diffs[0].pct(), Some(50.0));
    }

    #[test]
    fn percentile_shifts_detect_latency_change() {
        let shifts = percentile_shifts(&snap(100, 30), &snap(100, 120));
        let walk = shifts
            .iter()
            .find(|s| s.base == "machine.latency.read_walk")
            .unwrap();
        assert_eq!(walk.a.unwrap().p50, 32, "30 cycles -> bucket [16,32)");
        assert_eq!(walk.b.unwrap().p50, 128, "120 cycles -> bucket [64,128)");
    }

    #[test]
    fn load_artifact_sniffs_kind() {
        let m = snap(1, 2).to_json_versioned();
        assert!(matches!(load_artifact(&m), Ok(Artifact::Metrics(_))));
        let mut r = BenchReport::new("repro");
        r.push(ExperimentRecord::from_snapshot("fig2", 1, snap(1, 2)));
        assert!(matches!(
            load_artifact(&r.to_json()),
            Ok(Artifact::Bench(_))
        ));
        assert!(load_artifact("{\"kind\":\"nope\",\"schema\":1}").is_err());
        assert!(load_artifact("{}").is_err());
    }

    #[test]
    fn mixed_kinds_refuse_to_diff() {
        let m = load_artifact(&snap(1, 2).to_json_versioned()).unwrap();
        let mut r = BenchReport::new("repro");
        r.push(ExperimentRecord::from_snapshot("fig2", 1, snap(1, 2)));
        let b = load_artifact(&r.to_json()).unwrap();
        assert!(render_diff("a", "b", &m, &b).is_err());
    }

    #[test]
    fn bench_diff_renders_per_experiment() {
        let mut ra = BenchReport::new("repro");
        ra.push(ExperimentRecord::from_snapshot("fig2", 100, snap(100, 30)));
        let mut rb = BenchReport::new("repro");
        rb.push(ExperimentRecord::from_snapshot("fig2", 150, snap(150, 120)));
        rb.push(ExperimentRecord::from_snapshot("fig13", 7, snap(7, 30)));
        let text = render_diff(
            "a.json",
            "b.json",
            &Artifact::Bench(ra),
            &Artifact::Bench(rb),
        )
        .unwrap();
        assert!(
            text.contains("[fig2] cycles: 100 -> 150 (+50.00%)"),
            "{text}"
        );
        assert!(text.contains("[fig13] only in b.json"), "{text}");
        assert!(text.contains("percentile shifts"), "{text}");
    }
}
