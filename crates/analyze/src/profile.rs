//! Cycle-attribution profiles over walk-event traces.
//!
//! A profile answers, mechanically, the questions the paper's figures are
//! built on: where do cycles go (per world, per access class, per step
//! kind, per table level), is every cycle accounted for (the step-sum
//! invariant), and do the walk-reference counts match the paper's
//! arithmetic — 6 vs 12 references on the native Sv39 miss path (§3), and
//! 12 vs 36 references in the 3-D (G-stage) dimension of the virtualized
//! walk (§6).
//!
//! # Attributing pmpte references
//!
//! [`WalkEvent`] deliberately does not carry the isolation scheme — the
//! trace format records what the hardware *did*, not how it was configured.
//! Both simulated machines push the pmpte guard steps of a reference
//! *immediately before* the guarded step, so a run of `pmpt_root` /
//! `pmpt_leaf` steps is attributed to the next non-pmpte step. That
//! adjacency rule recovers the per-purpose pmpte split
//! (`pmpte_for_pt` / `pmpte_for_npt` / `pmpte_for_gpt` / `pmpte_for_data`)
//! from event data alone, and with it the scheme *shape* of each event:
//! segment-only, full permission table, or the paper's hybrid.

use hpmp_trace::{SpanKind, SpanStream, StepKind, TlbOutcome, WalkEvent};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// What the isolation layer's reference pattern looks like in one event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum IsolationShape {
    /// No pmpte references at all: pure segment checks (PMP).
    Segment,
    /// pmpte references guard page-table pages: a full permission table
    /// (PMPT).
    Table,
    /// pmpte references guard data (and possibly guest-PT) pages but never
    /// host/nested page-table pages: the paper's hybrid (HPMP / HPMP-GPT).
    Hybrid,
}

impl IsolationShape {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            IsolationShape::Segment => "segment",
            IsolationShape::Table => "table",
            IsolationShape::Hybrid => "hybrid",
        }
    }
}

/// Per-purpose reference counts recovered from one event by pmpte
/// adjacency attribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventRefs {
    /// Host page-table references.
    pub pt: u64,
    /// Guest page-table references (first stage).
    pub guest_pt: u64,
    /// Nested / G-stage page-table references.
    pub nested_pt: u64,
    /// Data references.
    pub data: u64,
    /// pmpte references guarding host page-table pages.
    pub pmpte_for_pt: u64,
    /// pmpte references guarding guest page-table pages.
    pub pmpte_for_gpt: u64,
    /// pmpte references guarding nested page-table pages.
    pub pmpte_for_npt: u64,
    /// pmpte references guarding the data page.
    pub pmpte_for_data: u64,
    /// pmpte references at the end of an aborted walk, with no guarded step
    /// following (the access faulted mid-check).
    pub pmpte_aborted: u64,
}

impl EventRefs {
    /// Every memory reference in the event (excluding the synthetic TLB-L2
    /// probe step).
    pub fn total(&self) -> u64 {
        self.pt + self.guest_pt + self.nested_pt + self.data + self.pmpte_total()
    }

    /// All pmpte references regardless of purpose.
    pub fn pmpte_total(&self) -> u64 {
        self.pmpte_for_pt
            + self.pmpte_for_gpt
            + self.pmpte_for_npt
            + self.pmpte_for_data
            + self.pmpte_aborted
    }

    /// References in the extra ("3-D") dimension of a virtualized walk:
    /// the G-stage page-table references plus the pmpte references guarding
    /// them. The paper's §6 claim is that HPMP cuts this from 36 to 12 for
    /// Sv39x4.
    pub fn three_d(&self) -> u64 {
        self.nested_pt + self.pmpte_for_npt
    }

    /// Whether the event went through nested (two-stage) translation.
    pub fn is_virtualized(&self) -> bool {
        self.nested_pt > 0 || self.guest_pt > 0
    }

    /// Attribute every step of an event: pmpte runs belong to the next
    /// non-pmpte step.
    pub fn of(event: &WalkEvent) -> EventRefs {
        let mut refs = EventRefs::default();
        let mut pending_pmpte = 0u64;
        for step in &event.steps {
            match step.kind {
                StepKind::PmptRoot | StepKind::PmptLeaf => pending_pmpte += 1,
                StepKind::TlbL2 => {}
                StepKind::Pt => {
                    refs.pt += 1;
                    refs.pmpte_for_pt += pending_pmpte;
                    pending_pmpte = 0;
                }
                StepKind::GuestPt => {
                    refs.guest_pt += 1;
                    refs.pmpte_for_gpt += pending_pmpte;
                    pending_pmpte = 0;
                }
                StepKind::NestedPt => {
                    refs.nested_pt += 1;
                    refs.pmpte_for_npt += pending_pmpte;
                    pending_pmpte = 0;
                }
                StepKind::Data => {
                    refs.data += 1;
                    refs.pmpte_for_data += pending_pmpte;
                    pending_pmpte = 0;
                }
            }
        }
        refs.pmpte_aborted = pending_pmpte;
        refs
    }

    /// The isolation shape this reference pattern implies.
    pub fn shape(&self) -> IsolationShape {
        if self.pmpte_for_pt > 0 || self.pmpte_for_npt > 0 {
            IsolationShape::Table
        } else if self.pmpte_total() > 0 {
            IsolationShape::Hybrid
        } else {
            IsolationShape::Segment
        }
    }
}

/// Count and cycles of one breakdown cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cell {
    /// Number of steps in the cell.
    pub count: u64,
    /// Cycles attributed to the cell.
    pub cycles: u64,
}

impl Cell {
    fn add(&mut self, cycles: u64) {
        self.count += 1;
        self.cycles += cycles;
    }
}

/// The representative cold walk of one `(virtualized?, shape)` group: the
/// event with the most references, which on a freshly flushed machine is
/// the full ISA-level walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColdWalk {
    /// Sequence number of the representative event.
    pub seq: u64,
    /// Its recovered per-purpose reference counts.
    pub refs: EventRefs,
    /// Number of host (or guest, for virtualized events) PT levels walked —
    /// identifies Sv39 (3) vs Sv48 (4) vs Sv57 (5).
    pub pt_levels: u64,
}

/// A complete profile of one trace.
#[derive(Clone, Debug, Default)]
pub struct WalkProfile {
    /// Number of events profiled.
    pub events: u64,
    /// Sum of event cycle totals.
    pub total_cycles: u64,
    /// Cycles charged as fixed pipeline overhead.
    pub pipeline_cycles: u64,
    /// Sequence numbers of events violating the step-sum invariant.
    pub unbalanced: Vec<u64>,
    /// Events and cycles per hart. Single-hart traces collapse to one
    /// entry for hart 0.
    pub harts: BTreeMap<u16, Cell>,
    /// Cycles and counts by `world × access class × step kind` (labels).
    pub breakdown: BTreeMap<(&'static str, &'static str, &'static str), Cell>,
    /// Per-level split of leveled steps: `(world, step kind) → level → cell`.
    pub levels: BTreeMap<(&'static str, &'static str), BTreeMap<u8, Cell>>,
    /// pmpte cycles by attributed purpose (`pt`, `guest_pt`, `nested_pt`,
    /// `data`, `aborted`), per world.
    pub pmpte_by_purpose: BTreeMap<(&'static str, &'static str), Cell>,
    /// Representative cold native walk per shape (TLB-miss events without
    /// nested steps).
    pub native_cold: BTreeMap<IsolationShape, ColdWalk>,
    /// Representative cold virtualized walk per shape (TLB-miss events with
    /// nested steps).
    pub virt_cold: BTreeMap<IsolationShape, ColdWalk>,
}

impl WalkProfile {
    /// Profile a slice of events.
    pub fn from_events(events: &[WalkEvent]) -> WalkProfile {
        let mut p = WalkProfile::default();
        for event in events {
            p.add(event);
        }
        p
    }

    fn add(&mut self, event: &WalkEvent) {
        self.events += 1;
        self.total_cycles += event.cycles;
        self.pipeline_cycles += event.pipeline_cycles;
        if !event.is_balanced() {
            self.unbalanced.push(event.seq);
        }
        self.harts.entry(event.hart).or_default().add(event.cycles);

        let world = event.world.label();
        let class = hpmp_trace::AccessClass::classify(event.op, event.tlb.is_hit()).label();
        let mut pending_pmpte: Vec<u64> = Vec::new();
        for step in &event.steps {
            self.breakdown
                .entry((world, class, step.kind.label()))
                .or_default()
                .add(step.cycles);
            if let Some(level) = step.level {
                self.levels
                    .entry((world, step.kind.label()))
                    .or_default()
                    .entry(level)
                    .or_default()
                    .add(step.cycles);
            }
            if step.kind.is_pmpte() {
                pending_pmpte.push(step.cycles);
                continue;
            }
            let purpose = match step.kind {
                StepKind::Pt => Some("pt"),
                StepKind::GuestPt => Some("guest_pt"),
                StepKind::NestedPt => Some("nested_pt"),
                StepKind::Data => Some("data"),
                _ => None,
            };
            if let Some(purpose) = purpose {
                for cycles in pending_pmpte.drain(..) {
                    self.pmpte_by_purpose
                        .entry((world, purpose))
                        .or_default()
                        .add(cycles);
                }
            }
        }
        for cycles in pending_pmpte {
            self.pmpte_by_purpose
                .entry((world, "aborted"))
                .or_default()
                .add(cycles);
        }

        // Cold-walk representatives for the reference-count claims.
        if event.tlb != TlbOutcome::Miss || event.fault.is_some() {
            return;
        }
        let refs = EventRefs::of(event);
        let (group, pt_levels) = if refs.is_virtualized() {
            (&mut self.virt_cold, refs.guest_pt)
        } else {
            (&mut self.native_cold, refs.pt)
        };
        let candidate = ColdWalk {
            seq: event.seq,
            refs,
            pt_levels,
        };
        group
            .entry(refs.shape())
            .and_modify(|best| {
                if refs.total() > best.refs.total() {
                    *best = candidate.clone();
                }
            })
            .or_insert(candidate);
    }

    /// Whether every event satisfied the step-sum invariant.
    pub fn is_balanced(&self) -> bool {
        self.unbalanced.is_empty()
    }

    /// The paper-claim table: `(claim label, measured, expected)` rows for
    /// whatever shapes the trace contains. Expected values are stated for
    /// Sv39 / Sv39x4, the modes the paper's headline numbers use; walks of
    /// other depths are reported without an expectation.
    pub fn claims(&self) -> Vec<(String, u64, Option<u64>)> {
        let mut rows = Vec::new();
        for (&shape, cold) in &self.native_cold {
            let expected = match (shape, cold.pt_levels) {
                (IsolationShape::Segment, 3) => Some(4),
                (IsolationShape::Table, 3) => Some(12),
                (IsolationShape::Hybrid, 3) => Some(6),
                _ => None,
            };
            rows.push((
                format!(
                    "native {}-level miss walk, {} shape: total references",
                    cold.pt_levels,
                    shape.label()
                ),
                cold.refs.total(),
                expected,
            ));
        }
        for (&shape, cold) in &self.virt_cold {
            let expected_3d = match (shape, cold.pt_levels) {
                (IsolationShape::Segment, 3) => Some(12),
                (IsolationShape::Table, 3) => Some(36),
                (IsolationShape::Hybrid, 3) => Some(12),
                _ => None,
            };
            rows.push((
                format!(
                    "virtualized {}-level miss walk, {} shape: 3-D references",
                    cold.pt_levels,
                    shape.label()
                ),
                cold.refs.three_d(),
                expected_3d,
            ));
            let expected_total = match (shape, cold.pt_levels) {
                (IsolationShape::Segment, 3) => Some(16),
                (IsolationShape::Table, 3) => Some(48),
                (IsolationShape::Hybrid, 3) => match cold.refs.pmpte_for_gpt {
                    0 => Some(18), // HPMP-GPT: guest PT pages segment-checked
                    _ => Some(24), // HPMP: guest PT pages still table-checked
                },
                _ => None,
            };
            rows.push((
                format!(
                    "virtualized {}-level miss walk, {} shape: total references",
                    cold.pt_levels,
                    shape.label()
                ),
                cold.refs.total(),
                expected_total,
            ));
        }
        rows
    }

    /// Whether every claim row with an expectation matched it.
    pub fn claims_hold(&self) -> bool {
        self.claims()
            .iter()
            .all(|(_, measured, expected)| expected.is_none_or(|e| e == *measured))
    }

    /// Render the full profile as a text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "walk profile: {} events, {} cycles",
            self.events, self.total_cycles
        );
        let _ = writeln!(
            out,
            "  pipeline overhead: {} cycles ({:.1}%)",
            self.pipeline_cycles,
            pct(self.pipeline_cycles, self.total_cycles)
        );
        if self.is_balanced() {
            let _ = writeln!(out, "  step-sum invariant: OK (every cycle attributed)");
        } else {
            let _ = writeln!(
                out,
                "  step-sum invariant: VIOLATED in {} events (first seqs: {:?})",
                self.unbalanced.len(),
                &self.unbalanced[..self.unbalanced.len().min(8)]
            );
        }

        // Per-hart attribution, shown only for traces that are actually
        // multi-hart so single-hart reports keep their historical shape.
        if self.harts.len() > 1 || self.harts.keys().next().is_some_and(|&h| h != 0) {
            let _ = writeln!(out, "\ncycles by hart:");
            for (&hart, cell) in &self.harts {
                let _ = writeln!(
                    out,
                    "  hart {:<4} {:>10} events {:>12} cycles {:>6.1}%",
                    hart,
                    cell.count,
                    cell.cycles,
                    pct(cell.cycles, self.total_cycles)
                );
            }
        }

        let _ = writeln!(out, "\ncycles by world x access class x step kind:");
        let _ = writeln!(
            out,
            "  {:<8} {:<14} {:<10} {:>10} {:>12} {:>7}",
            "world", "class", "step", "count", "cycles", "share"
        );
        for (&(world, class, step), cell) in &self.breakdown {
            let _ = writeln!(
                out,
                "  {:<8} {:<14} {:<10} {:>10} {:>12} {:>6.1}%",
                world,
                class,
                step,
                cell.count,
                cell.cycles,
                pct(cell.cycles, self.total_cycles)
            );
        }

        if !self.levels.is_empty() {
            let _ = writeln!(out, "\nper-level split (leaf = level 0):");
            for (&(world, step), levels) in &self.levels {
                for (&level, cell) in levels {
                    let _ = writeln!(
                        out,
                        "  {:<8} {:<10} L{:<2} {:>10} {:>12}",
                        world, step, level, cell.count, cell.cycles
                    );
                }
            }
        }

        if !self.pmpte_by_purpose.is_empty() {
            let _ = writeln!(out, "\npmpte references by guarded step:");
            for (&(world, purpose), cell) in &self.pmpte_by_purpose {
                let _ = writeln!(
                    out,
                    "  {:<8} guarding {:<10} {:>10} {:>12}",
                    world, purpose, cell.count, cell.cycles
                );
            }
        }

        let claims = self.claims();
        if !claims.is_empty() {
            let _ = writeln!(
                out,
                "\npaper reference-count claims (from event data alone):"
            );
            for (label, measured, expected) in &claims {
                match expected {
                    Some(e) => {
                        let verdict = if measured == e { "OK" } else { "MISMATCH" };
                        let _ = writeln!(out, "  {label}: {measured} (paper: {e}) {verdict}");
                    }
                    None => {
                        let _ = writeln!(out, "  {label}: {measured}");
                    }
                }
            }
        }
        out
    }
}

/// Monitor-operation cycle attribution over a span stream: where monitor
/// time went per [`SpanKind`], and how much of it was segment compaction —
/// the degradation-ladder stall the aging scenario is built to surface.
///
/// Compact spans are children of the operation span whose allocation
/// triggered the pass, so their cycles are *contained in* the root
/// operation totals; [`SpanProfile::compact_share`] reports that
/// containment as a percentage rather than double-counting it.
#[derive(Clone, Debug, Default)]
pub struct SpanProfile {
    /// Spans profiled (retained in the stream).
    pub spans: u64,
    /// Spans the producer dropped at its capacity bound.
    pub dropped: u64,
    /// Count and cycles per span kind, in [`SpanKind::ALL`] order.
    pub by_kind: BTreeMap<&'static str, Cell>,
    /// Cycles inside root monitor-operation spans.
    pub op_cycles: u64,
    /// Cycles inside compaction spans (a subset of `op_cycles`).
    pub compact_cycles: u64,
    /// Root operations that triggered at least one compaction pass.
    pub compacted_ops: u64,
}

impl SpanProfile {
    /// Profile a parsed span stream.
    pub fn from_stream(stream: &SpanStream) -> SpanProfile {
        let mut p = SpanProfile {
            spans: stream.spans.len() as u64,
            dropped: stream.dropped,
            ..SpanProfile::default()
        };
        let mut compact_parents = BTreeSet::new();
        for span in &stream.spans {
            p.by_kind
                .entry(span.kind.label())
                .or_default()
                .add(span.cycles());
            if span.kind.is_operation() {
                p.op_cycles += span.cycles();
            }
            if span.kind == SpanKind::Compact {
                p.compact_cycles += span.cycles();
                if let Some(parent) = span.parent {
                    compact_parents.insert(parent);
                }
            }
        }
        p.compacted_ops = compact_parents.len() as u64;
        p
    }

    /// Share of monitor-operation cycles spent compacting, as a
    /// percentage of `op_cycles`.
    pub fn compact_share(&self) -> f64 {
        pct(self.compact_cycles, self.op_cycles)
    }

    /// Render the span attribution as a text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "span profile: {} span(s), {} dropped at capacity",
            self.spans, self.dropped
        );
        let _ = writeln!(out, "\ncycles by span kind:");
        let _ = writeln!(
            out,
            "  {:<16} {:>10} {:>12} {:>7}",
            "kind", "count", "cycles", "share"
        );
        // Fixed kind order, skipping kinds the stream never saw.
        for kind in SpanKind::ALL {
            let Some(cell) = self.by_kind.get(kind.label()) else {
                continue;
            };
            let _ = writeln!(
                out,
                "  {:<16} {:>10} {:>12} {:>6.1}%",
                kind.label(),
                cell.count,
                cell.cycles,
                pct(cell.cycles, self.op_cycles)
            );
        }
        let _ = writeln!(
            out,
            "\ndegradation attribution: {} compaction pass(es) inside {} op(s), \
             {} of {} op cycles ({:.1}%) spent compacting",
            self.by_kind
                .get(SpanKind::Compact.label())
                .map_or(0, |c| c.count),
            self.compacted_ops,
            self.compact_cycles,
            self.op_cycles,
            self.compact_share()
        );
        out
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmp_trace::{AccessOp, PrivLevel, WalkStep, World};

    fn step(kind: StepKind, level: Option<u8>, cycles: u64) -> WalkStep {
        WalkStep {
            kind,
            level,
            addr: 0x8000_0000,
            cycles,
        }
    }

    fn event(seq: u64, world: World, steps: Vec<WalkStep>) -> WalkEvent {
        let step_cycles: u64 = steps.iter().map(|s| s.cycles).sum();
        WalkEvent {
            seq,
            hart: 0,
            world,
            op: AccessOp::Read,
            privilege: PrivLevel::Supervisor,
            va: 0x10_0000,
            paddr: Some(0x8000_0000),
            tlb: TlbOutcome::Miss,
            pwc_level: None,
            pmptw: None,
            pipeline_cycles: 1,
            cycles: 1 + step_cycles,
            fault: None,
            steps,
        }
    }

    /// A cold native PMPT Sv39 walk: (2 pmpte + pt) x3 + 2 pmpte + data.
    fn pmpt_native_walk(seq: u64) -> WalkEvent {
        let mut steps = Vec::new();
        for level in (0..3u8).rev() {
            steps.push(step(StepKind::PmptRoot, None, 5));
            steps.push(step(StepKind::PmptLeaf, None, 5));
            steps.push(step(StepKind::Pt, Some(level), 14));
        }
        steps.push(step(StepKind::PmptRoot, None, 5));
        steps.push(step(StepKind::PmptLeaf, None, 5));
        steps.push(step(StepKind::Data, None, 14));
        event(seq, World::Host, steps)
    }

    /// A cold native HPMP Sv39 walk: pt x3 + 2 pmpte + data.
    fn hpmp_native_walk(seq: u64) -> WalkEvent {
        let mut steps = Vec::new();
        for level in (0..3u8).rev() {
            steps.push(step(StepKind::Pt, Some(level), 14));
        }
        steps.push(step(StepKind::PmptRoot, None, 5));
        steps.push(step(StepKind::PmptLeaf, None, 5));
        steps.push(step(StepKind::Data, None, 14));
        event(seq, World::Enclave, steps)
    }

    /// A cold virtualized Sv39x4 walk under `pmpte_npt` pmpte refs per NPT
    /// step and `pmpte_gpt` per guest-PT step.
    fn virt_walk(seq: u64, pmpte_npt: u64, pmpte_gpt: u64, pmpte_data: u64) -> WalkEvent {
        let mut steps = Vec::new();
        // 3 guest levels, each needing a 3-step nested walk for its PTE,
        // then the final nested walk for the data GPA: 12 NestedPt total.
        for glevel in (0..3u8).rev() {
            for nlevel in (0..3u8).rev() {
                for _ in 0..pmpte_npt {
                    steps.push(step(StepKind::PmptLeaf, None, 5));
                }
                steps.push(step(StepKind::NestedPt, Some(nlevel), 14));
            }
            for _ in 0..pmpte_gpt {
                steps.push(step(StepKind::PmptLeaf, None, 5));
            }
            steps.push(step(StepKind::GuestPt, Some(glevel), 14));
        }
        for nlevel in (0..3u8).rev() {
            for _ in 0..pmpte_npt {
                steps.push(step(StepKind::PmptLeaf, None, 5));
            }
            steps.push(step(StepKind::NestedPt, Some(nlevel), 14));
        }
        for _ in 0..pmpte_data {
            steps.push(step(StepKind::PmptLeaf, None, 5));
        }
        steps.push(step(StepKind::Data, None, 14));
        event(seq, World::Guest, steps)
    }

    #[test]
    fn adjacency_attribution_recovers_purpose_split() {
        let refs = EventRefs::of(&pmpt_native_walk(0));
        assert_eq!(refs.pt, 3);
        assert_eq!(refs.pmpte_for_pt, 6);
        assert_eq!(refs.pmpte_for_data, 2);
        assert_eq!(refs.data, 1);
        assert_eq!(refs.total(), 12);
        assert_eq!(refs.shape(), IsolationShape::Table);

        let refs = EventRefs::of(&hpmp_native_walk(1));
        assert_eq!(refs.pmpte_for_pt, 0);
        assert_eq!(refs.pmpte_for_data, 2);
        assert_eq!(refs.total(), 6);
        assert_eq!(refs.shape(), IsolationShape::Hybrid);
    }

    #[test]
    fn native_claims_6_vs_12() {
        let events = vec![pmpt_native_walk(0), hpmp_native_walk(1)];
        let p = WalkProfile::from_events(&events);
        assert!(p.is_balanced());
        let table = &p.native_cold[&IsolationShape::Table];
        let hybrid = &p.native_cold[&IsolationShape::Hybrid];
        assert_eq!(table.refs.total(), 12);
        assert_eq!(hybrid.refs.total(), 6);
        assert!(p.claims_hold(), "claims: {:?}", p.claims());
    }

    #[test]
    fn virt_claims_12_vs_36() {
        // PMPT: 2 pmpte per NPT ref (36 3-D), 2 per GPT ref... the machine
        // emits 2 pmpte per guarded ref; gpt guard is 2 each for 3 refs = 6.
        let pmpt = virt_walk(0, 2, 2, 2);
        let refs = EventRefs::of(&pmpt);
        assert_eq!(refs.nested_pt, 12);
        assert_eq!(refs.pmpte_for_npt, 24);
        assert_eq!(refs.three_d(), 36);
        assert_eq!(refs.total(), 48);

        let hpmp = virt_walk(1, 0, 2, 2);
        let refs = EventRefs::of(&hpmp);
        assert_eq!(refs.three_d(), 12);
        assert_eq!(refs.total(), 24);

        let p = WalkProfile::from_events(&[pmpt, hpmp]);
        assert!(p.claims_hold(), "claims: {:?}", p.claims());
        let rendered = p.render();
        assert!(rendered.contains("3-D references"), "{rendered}");
    }

    #[test]
    fn per_hart_section_appears_only_for_multihart_traces() {
        let single = WalkProfile::from_events(&[hpmp_native_walk(0)]);
        assert!(!single.render().contains("cycles by hart"));
        assert_eq!(single.harts[&0].count, 1);

        let mut remote = hpmp_native_walk(1);
        remote.hart = 3;
        let multi = WalkProfile::from_events(&[hpmp_native_walk(0), remote]);
        let rendered = multi.render();
        assert!(rendered.contains("cycles by hart"), "{rendered}");
        assert!(rendered.contains("hart 3"), "{rendered}");
        assert_eq!(multi.harts[&3].cycles, multi.harts[&0].cycles);
    }

    #[test]
    fn unbalanced_events_are_flagged() {
        let mut e = hpmp_native_walk(0);
        e.cycles += 1;
        let p = WalkProfile::from_events(&[e]);
        assert!(!p.is_balanced());
        assert_eq!(p.unbalanced, vec![0]);
        assert!(p.render().contains("VIOLATED"));
    }

    #[test]
    fn breakdown_sums_step_cycles() {
        let p = WalkProfile::from_events(&[hpmp_native_walk(0)]);
        let cell = p.breakdown[&("enclave", "read_walk", "pt")];
        assert_eq!(cell.count, 3);
        assert_eq!(cell.cycles, 42);
        let levels = &p.levels[&("enclave", "pt")];
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[&0].count, 1);
    }

    #[test]
    fn span_profile_attributes_compaction_inside_ops() {
        use hpmp_trace::{SpanEvent, SpanStream};
        let span = |id, parent, kind, begin, end| SpanEvent {
            id,
            parent,
            kind,
            hart: 0,
            domain: Some(1),
            begin,
            end,
        };
        let stream = SpanStream {
            dropped: 2,
            spans: vec![
                // An alloc that compacted for 300 of its 500 cycles.
                span(1, None, SpanKind::Alloc, 0, 500),
                span(2, Some(1), SpanKind::Compact, 50, 350),
                // A plain switch, plus its shootdown child.
                span(3, None, SpanKind::Switch, 500, 600),
                span(4, Some(3), SpanKind::ShootdownRecv, 520, 580),
            ],
        };
        let p = SpanProfile::from_stream(&stream);
        assert_eq!(p.spans, 4);
        assert_eq!(p.dropped, 2);
        assert_eq!(p.op_cycles, 600);
        assert_eq!(p.compact_cycles, 300);
        assert_eq!(p.compacted_ops, 1);
        assert_eq!(p.compact_share(), 50.0);
        let rendered = p.render();
        assert!(rendered.contains("degradation attribution"), "{rendered}");
        assert!(rendered.contains("(50.0%)"), "{rendered}");
    }

    #[test]
    fn empty_span_stream_profiles_to_zeroes() {
        let p = SpanProfile::from_stream(&hpmp_trace::SpanStream::default());
        assert_eq!(p.op_cycles, 0);
        assert_eq!(p.compact_share(), 0.0);
        assert!(p.render().contains("0 span(s)"));
    }

    #[test]
    fn trailing_pmpte_counts_as_aborted() {
        let e = event(
            0,
            World::Host,
            vec![
                step(StepKind::Pt, Some(2), 14),
                step(StepKind::PmptRoot, None, 5),
                step(StepKind::PmptLeaf, None, 5),
            ],
        );
        let refs = EventRefs::of(&e);
        assert_eq!(refs.pmpte_aborted, 2);
        assert_eq!(refs.total(), 3);
    }
}
